"""Zipfian multi-tenant load generation against the network front end.

``python -m repro serve-load`` drives a real :class:`NetServer` over TCP
with the traffic shape preference-aware serving actually faces: a huge
user universe (defaults to 10^6 simulated users) whose request frequency
is zipf-distributed — a few users are hot, the tail is effectively cold —
spread across tenants, with a fraction of requests being *preference
churn* (adds/removes) rather than queries.

Per-user preferences are materialized lazily: the first request that
lands on a user registers their base preference (one wire write), so the
server's preference store grows with the set of users the zipf draw
actually touched — the realistic shape, since a 10^6-user universe never
has all users active.

Every worker is a well-behaved :class:`PreferenceClient`: jittered
retries under one process-wide :class:`~repro.resilience.RetryBudget`,
per-request deadlines, server ``retry_after`` hints honored.  The report
(committed as ``results/BENCH_serve_load.json``) records client-observed
p50/p95/p99 latency, throughput, shed-rate and per-tenant traffic — the
numbers the admission-control story stands on.
"""

from __future__ import annotations

import json
import os
import threading
import time

from ...errors import Overloaded, ReproError, ResilienceError
from ...resilience.retry import RetryBudget, RetryPolicy
from ...serve.executor import percentile
from .client import PreferenceClient
from .server import NetServer, serve_in_thread


def zipf_schedule(requests: int, users: int, s: float, seed: int) -> list[int]:
    """The seeded request → user-id schedule (zipf-distributed ranks).

    Draws zipf ranks with numpy's generator and folds the unbounded tail
    back into ``[0, users)``, so rank 1 — the hottest user — dominates and
    the tail is a long thin spread, no matter how large *users* is.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    ranks = rng.zipf(s, size=requests)
    return [int((rank - 1) % users) for rank in ranks]


def run_serve_load(
    *,
    users: int = 1_000_000,
    tenants: int = 4,
    requests: int = 800,
    clients: int = 8,
    churn: float = 0.15,
    scale: float = 0.001,
    seed: int = 42,
    zipf_s: float = 1.2,
    workers: int = 4,
    queue_limit: int = 16,
    tenant_quota: int | None = 16,
    deadline_s: float = 15.0,
    cache: bool = True,
    cache_bytes: int = 64 * 1024 * 1024,
) -> dict:
    """Run the closed-loop zipfian load and return the report dictionary."""
    from ...core.preference import Preference
    from ...engine.expressions import eq
    from ...workloads.imdb import generate_imdb
    from ..server import PreferenceServer

    server = PreferenceServer(generate_imdb(scale=scale, seed=seed))
    net = NetServer(
        server,
        workers=workers,
        queue_limit=queue_limit,
        tenant_quota=tenant_quota,
        cache=cache,
        cache_bytes=cache_bytes,
    )
    handle = serve_in_thread(net)

    schedule = zipf_schedule(requests, users, zipf_s, seed)
    budget = RetryBudget(capacity=20.0, refill=0.2)
    genres = ("Comedy", "Drama", "Action", "Thriller")
    base = Preference("base", "GENRES", eq("genre", "Drama"), 0.8, 0.9)

    lock = threading.Lock()
    latencies_ms: list[float] = []
    outcomes = {"completed": 0, "shed": 0, "typed_failed": 0, "untyped_failed": 0}
    per_tenant: dict[str, int] = {}
    churn_ops = 0
    # Users whose base preference is already registered, per tenant —
    # checked under the lock so one hot user is not registered twice.
    seen: set[tuple[str, str]] = set()

    def worker(worker_id: int) -> None:
        nonlocal churn_ops
        tenant = f"tenant{worker_id % tenants}"
        client = PreferenceClient(
            "127.0.0.1",
            handle.port,
            tenant=tenant,
            deadline_s=deadline_s,
            retry=RetryPolicy(attempts=4, base_delay=0.01, jitter=0.5, seed=worker_id),
            budget=budget,
        )
        import random

        rng = random.Random(seed * 1_000_003 + worker_id)
        try:
            for index in range(worker_id, len(schedule), clients):
                user = f"user{schedule[index]}"
                with lock:
                    fresh = (tenant, user) not in seen
                    if fresh:
                        seen.add((tenant, user))
                    per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
                started = time.perf_counter()
                try:
                    if fresh:
                        client.add_preference(user, base)
                    if rng.random() < churn:
                        # Preference churn: rotate one pool preference.
                        pref = Preference(
                            f"c_{rng.randrange(4)}",
                            "GENRES",
                            eq("genre", genres[rng.randrange(4)]),
                            0.7,
                            0.8,
                        )
                        try:
                            if rng.random() < 0.6:
                                client.add_preference(user, pref)
                            else:
                                client.remove_preference(user, pref.name)
                        except ReproError as err:
                            if "duplicate" not in str(err) and "already" not in str(err):
                                raise
                        with lock:
                            churn_ops += 1
                    else:
                        client.query(user)
                    verdict = "completed"
                except Overloaded:
                    verdict = "shed"
                except ResilienceError:
                    verdict = "typed_failed"
                except Exception:  # noqa: BLE001 - counted, fails the gate
                    verdict = "untyped_failed"
                elapsed_ms = (time.perf_counter() - started) * 1e3
                with lock:
                    outcomes[verdict] += 1
                    if verdict == "completed":
                        latencies_ms.append(elapsed_ms)
        finally:
            client.close()

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - started
    stats = net.executor.stats.snapshot()
    cache_stats = net.service.stats_snapshot()
    handle.stop()

    total = sum(outcomes.values())
    report = {
        "benchmark": "serve_load",
        "workload": (
            f"zipf(s={zipf_s}) over {users} simulated users, {tenants} tenants, "
            f"{churn:.0%} preference churn, default preferential query"
        ),
        "seed": seed,
        "scale": scale,
        "users": users,
        "tenants": tenants,
        "requests": total,
        "clients": clients,
        "workers": workers,
        "queue_limit": queue_limit,
        "tenant_quota": tenant_quota,
        "completed": outcomes["completed"],
        "shed": outcomes["shed"],
        "typed_failed": outcomes["typed_failed"],
        "untyped_failed": outcomes["untyped_failed"],
        "shed_rate": round(outcomes["shed"] / total, 4) if total else 0.0,
        "churn_ops": churn_ops,
        "distinct_users_touched": len(seen),
        "retry_budget": {"spent": budget.spent, "denied": budget.denied},
        "elapsed_s": round(elapsed_s, 3),
        "throughput_rps": round(total / elapsed_s, 1) if elapsed_s else 0.0,
        "client_p50_ms": round(percentile(latencies_ms, 0.50), 3),
        "client_p95_ms": round(percentile(latencies_ms, 0.95), 3),
        "client_p99_ms": round(percentile(latencies_ms, 0.99), 3),
        "server": stats,
        "cache": cache_stats,
        "per_tenant": dict(sorted(per_tenant.items())),
    }
    return report


def describe(report: dict) -> str:
    cache = report.get("cache")
    if cache:
        cache_line = (
            f"\n  cache hit-rate={cache['hit_rate']:.2%} "
            f"(hits={cache['hits']} misses={cache['misses']} "
            f"invalidations={cache['invalidations']} "
            f"entries={cache['entries']}, {cache['bytes']} bytes)"
        )
    else:
        cache_line = "\n  cache disabled"
    return (
        f"serve-load: {report['requests']} requests / {report['clients']} clients "
        f"over {report['users']} zipf users in {report['elapsed_s']}s "
        f"({report['throughput_rps']} rps)\n"
        f"  completed={report['completed']} shed={report['shed']} "
        f"(rate {report['shed_rate']:.2%}) typed_failed={report['typed_failed']} "
        f"untyped_failed={report['untyped_failed']}\n"
        f"  client p50={report['client_p50_ms']}ms "
        f"p95={report['client_p95_ms']}ms p99={report['client_p99_ms']}ms; "
        f"server p95={report['server']['p95_ms']}ms\n"
        f"  churn={report['churn_ops']} ops, "
        f"{report['distinct_users_touched']} distinct users touched, "
        f"retries spent={report['retry_budget']['spent']} "
        f"denied={report['retry_budget']['denied']}" + cache_line
    )


def write_report(report: dict, path: str) -> None:
    """Write the load report as pretty-printed JSON (bench artifact shape)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
