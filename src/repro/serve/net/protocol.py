"""Length-prefixed JSON wire protocol for the network serving layer.

One frame is ``<4-byte big-endian length><canonical JSON body>``; the body
is UTF-8 text produced by :func:`repro.serve.codec.canonical_json`, so a
frame's bytes are deterministic for a given payload — what lets the chaos
suite digest results end-to-end and lets tests assert on exact frames.

Request shape (client → server)::

    {"id": n, "op": "query" | "add_preference" | "remove_preference" |
                    "clear_preferences" | "insert" | "ping" | "health" |
                    "ready" | "stats",
     "tenant": "...",          # optional; namespaces users and quotas
     "deadline_ms": 1500.0,    # optional; remaining client budget
     ...op-specific fields}

Response shape (server → client)::

    {"id": n, "ok": true,  "result": {...}}
    {"id": n, "ok": false, "error": {"type": "Overloaded", "message": "...",
                                     "reason": "queue-full",
                                     "retry_after": 0.05, ...}}

The error codec is the part that keeps failures *typed across the network
boundary*: :func:`error_to_dict` serializes a :class:`~repro.errors.ReproError`
with its structured fields and :func:`error_from_dict` rebuilds the same
exception class client-side, so ``except Overloaded`` works identically
against an in-process server and a remote one.  An exception that is not a
``ReproError`` is marked ``"typed": false`` — the chaos suite counts any
such escape as a server bug.

Framing failures (truncated length word, torn body, oversized frame,
non-JSON bytes) raise :exc:`~repro.errors.NetworkFault` — transport
problems, retryable on a fresh connection — never a silent partial read.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from typing import Any

from ... import errors
from ...errors import NetworkFault, ReproError
from ..codec import canonical_json

#: Frames larger than this are refused — a length word this big is far more
#: likely a desynchronized stream (reading JSON bytes as a length) than a
#: legitimate payload.
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One wire frame: big-endian length prefix + canonical JSON body."""
    body = canonical_json(payload).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise NetworkFault("net.write", f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes, site: str = "net.read") -> dict:
    """Parse one frame body; a torn or garbled body is a typed NetworkFault."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as err:
        raise NetworkFault(site, f"torn or garbled frame: {err}") from err
    if not isinstance(payload, dict):
        raise NetworkFault(site, f"frame body is {type(payload).__name__}, not an object")
    return payload


def _recv_exact(sock: socket.socket, count: int, site: str) -> bytes:
    """Read exactly *count* bytes or raise a typed NetworkFault.

    EOF mid-frame is the wire artifact of a dropped connection or a torn
    write on the far side; a socket timeout is a stalled peer.  Both become
    :exc:`~repro.errors.NetworkFault` so callers retry instead of hanging
    or consuming a half frame.
    """
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as err:
            raise NetworkFault(site, "read stalled past the socket timeout") from err
        except OSError as err:
            raise NetworkFault(site, f"connection failed mid-read: {err}") from err
        if not chunk:
            raise NetworkFault(
                site, f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, site: str = "net.read") -> "dict | None":
    """Read one frame from a blocking socket; ``None`` on clean EOF.

    Clean EOF is only an EOF *between* frames (zero bytes of the length
    word read) — anything later is a torn frame and raises.
    """
    try:
        first = sock.recv(_HEADER.size)
    except socket.timeout as err:
        raise NetworkFault(site, "read stalled past the socket timeout") from err
    except OSError as err:
        raise NetworkFault(site, f"connection failed mid-read: {err}") from err
    if not first:
        return None
    header = first + (
        _recv_exact(sock, _HEADER.size - len(first), site) if len(first) < _HEADER.size else b""
    )
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise NetworkFault(site, f"frame length {length} exceeds MAX_FRAME (desync?)")
    return decode_body(_recv_exact(sock, length, site), site)


def write_frame(sock: socket.socket, payload: dict, site: str = "net.write") -> None:
    """Send one frame over a blocking socket; failures are typed."""
    try:
        sock.sendall(encode_frame(payload))
    except socket.timeout as err:
        raise NetworkFault(site, "write stalled past the socket timeout") from err
    except OSError as err:
        raise NetworkFault(site, f"connection failed mid-write: {err}") from err


# ---------------------------------------------------------------------------
# Result digests
# ---------------------------------------------------------------------------


def wire_triples(result) -> list:
    """A query result's presented triples in JSON-clean, digestable form.

    Scores round to 9 decimals (the chaos suite's tolerance for
    cross-strategy float association differences); rows become lists so
    the value survives a JSON round trip byte-identically.
    """
    triples = []
    for row, score, conf in result.presented().triples():
        triples.append(
            [list(row), None if score is None else round(score, 9), round(conf, 9)]
        )
    return triples


def triples_digest(triples: list) -> str:
    """Order-independent sha256 over *triples* (wire form or tuples).

    Normalizes tuples to lists first, so the digest a server computes
    before serialization equals the digest a client computes after JSON
    decoding iff the triples arrived intact — the end-to-end integrity
    check torn frames must not survive.
    """
    normalized = sorted(
        [list(row), score, conf] for row, score, conf in triples
    )
    return hashlib.sha256(canonical_json(normalized).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Typed errors across the wire
# ---------------------------------------------------------------------------

#: Structured constructor fields preserved per error type, beyond message.
_STRUCTURED_FIELDS = {
    "Overloaded": ("reason", "limit", "session", "retry_after"),
    "QueryTimeout": ("timeout", "elapsed"),
    "ResourceExhausted": ("kind", "limit", "used"),
    "TransientFault": ("site",),
    "NetworkFault": ("site",),
    "CircuitOpen": ("strategy",),
}


def error_to_dict(err: BaseException) -> dict:
    """Serialize an exception for an error response.

    ``typed`` records whether the server failed with a :class:`ReproError`
    — an untyped escape is a bug the chaos suite hunts, so the distinction
    must survive the wire.
    """
    data: dict[str, Any] = {
        "type": type(err).__name__,
        "message": str(err),
        "typed": isinstance(err, ReproError),
    }
    for field in _STRUCTURED_FIELDS.get(data["type"], ()):
        value = getattr(err, field, None)
        if value is not None:
            data[field] = value
    return data


def error_from_dict(data: dict) -> ReproError:
    """Rebuild the typed exception an error response carries.

    Unknown or untyped error types come back as plain :class:`ReproError`
    with the server's message — still typed at the API boundary, but
    flagged ``server-internal`` so harnesses can treat them as failures.
    """
    name = data.get("type", "ReproError")
    message = data.get("message", "unknown server error")
    if not data.get("typed", True):
        return ReproError(f"server-internal ({name}): {message}")
    if name == "Overloaded":
        return errors.Overloaded(
            data.get("reason", "unknown"),
            limit=data.get("limit"),
            session=data.get("session"),
            retry_after=data.get("retry_after"),
        )
    if name == "QueryTimeout":
        return errors.QueryTimeout(data.get("timeout", 0.0), data.get("elapsed"))
    if name == "ResourceExhausted":
        return errors.ResourceExhausted(
            data.get("kind", "rows"), data.get("limit", 0), data.get("used", 0)
        )
    if name in ("TransientFault", "NetworkFault"):
        cls = getattr(errors, name)
        return cls(data.get("site", "net.read"), message)
    if name == "CircuitOpen":
        return errors.CircuitOpen(data.get("strategy", "unknown"))
    cls = getattr(errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        try:
            return cls(message)
        except TypeError:
            pass  # constructor wants structured args we did not carry
    return ReproError(f"{name}: {message}")
