"""The asyncio TCP front end over a :class:`~repro.serve.server.PreferenceServer`.

``NetServer`` puts a real network boundary around the serving layer and
wires the robustness machinery that makes it survivable:

* **Multi-tenant admission** — every data-plane request names a tenant
  (default ``"public"``); user ids are namespaced per tenant
  (``tenant::user``), so one tenant's preferences are invisible to
  another, and each tenant has an in-flight quota on top of the
  executor's queue/session limits.  Every shed is a typed
  :exc:`~repro.errors.Overloaded` carrying a ``retry_after`` hint derived
  from observed service times.
* **Deadline propagation** — a request's ``deadline_ms`` (the client's
  *remaining* budget) becomes a :class:`~repro.resilience.QueryGuard`
  installed before admission, so the deadline set client-side is the one
  the executor's operator-boundary checks enforce; an already-expired
  deadline is refused before queuing work nobody is waiting for.
* **Graceful drain** — SIGTERM (or :meth:`NetServer.drain`) stops
  admitting, answers new connections and data requests with
  ``Overloaded("shutting-down")``, lets in-flight work finish, fsyncs the
  WAL tail (:meth:`~repro.serve.wal.PreferenceWAL.sync_to_disk`) and only
  then exits — an acknowledged write can never be lost to a deploy.
* **Health/readiness** — ``health`` answers even while draining or
  poisoned (liveness), ``ready`` flips false the moment the server drains
  or fail-stops (load-balancer rotation).
* **Network chaos hooks** — the ``net.accept`` / ``net.read`` /
  ``net.write`` / ``net.close`` fault sites let a seeded
  :class:`~repro.resilience.FaultPlan` drop connections, stall reads,
  and tear outbound frames (a truncated frame then an abrupt reset), so
  the chaos suite (:mod:`repro.serve.net.chaos`) can prove torn frames
  and dropped connections never corrupt a completed query.
* **Observability** — each connection is one ``serve.net`` span
  (frames/bytes in and out, errors, sheds) written to any obs sink.

The event loop only frames, admits and dispatches; queries and writes run
on the :class:`~repro.serve.executor.ServeExecutor` worker pool and are
awaited through :func:`asyncio.wrap_future`, so a slow query never stalls
another connection's reads.
"""

from __future__ import annotations

import asyncio
import itertools
import signal
import threading
import time

from ...cache.result_cache import ResultCache
from ...cache.service import DEFAULT_SQL, CachedQueryService
from ...errors import NetworkFault, Overloaded, QueryTimeout, ReproError, TransientFault
from ...obs.tracer import Span
from ...resilience.faults import NULL_FAULTS
from ...resilience.guard import QueryGuard, use_guard
from ..executor import ServeExecutor
from .protocol import MAX_FRAME, _HEADER, decode_body, encode_frame, error_to_dict

_RUNNING = "running"
_DRAINING = "draining"
_STOPPED = "stopped"

#: Ops that mutate or query state: refused while draining, tenant-metered.
DATA_OPS = frozenset(
    {"query", "add_preference", "remove_preference", "clear_preferences", "insert"}
)
#: Control-plane ops: always answered, never quota-metered — health checks
#: must keep working exactly when the data plane is refusing.
CONTROL_OPS = frozenset({"ping", "health", "ready", "stats"})

# DEFAULT_SQL (the preferential query template used when a ``query``
# request names no ``sql``) now lives beside the query path it feeds, in
# :mod:`repro.cache.service`; re-exported here for compatibility.
__all__ = ["NetServer", "NetServerHandle", "serve_in_thread", "namespaced", "DEFAULT_SQL"]


def namespaced(tenant: str, user: str) -> str:
    """The store key for *user* inside *tenant*'s namespace."""
    return f"{tenant}::{user}"


class _DeferredSleep:
    """Collects latency-fault sleeps so they can be awaited, not blocked on.

    A :class:`FaultPlan` calls its ``sleep`` synchronously; on the event
    loop that would stall every connection.  The server installs this
    recorder as the plan's sleeper and awaits the collected delay after
    each site visit instead.
    """

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending = 0.0

    def __call__(self, seconds: float) -> None:
        self.pending += seconds

    def take(self) -> float:
        delay, self.pending = self.pending, 0.0
        return delay


class NetServer:
    """Asyncio TCP front end: framing, admission, dispatch, drain.

    :param server: the owned :class:`~repro.serve.server.PreferenceServer`.
    :param executor: the admission-controlled worker pool (one is built
        from *workers*/*queue_limit*/*session_limit* when not given).
    :param tenant_quota: default per-tenant in-flight cap (``None``: no
        tenant metering); *quotas* overrides it per tenant name.
    :param cache: result caching for the query path.  ``True`` (default)
        builds a :class:`~repro.cache.result_cache.ResultCache` bounded by
        *cache_bytes*; ``False``/``None`` serves every query uncached; an
        explicit :class:`ResultCache` instance is used as given.  Replies
        are byte-identical either way (the key is a pure content digest);
        the cache only changes who computes them.
    :param cache_bytes: LRU memory budget when the server builds its own
        cache.
    :param fault_factory: chaos hook — called with the connection index,
        returns the :class:`~repro.resilience.FaultPlan` governing that
        connection's ``net.*`` sites (``None``: no injection).
    :param trace_sink: obs sink receiving one ``serve.net`` span per
        connection.
    :param test_ops: allow the ``ping`` op's ``delay_ms`` field (a
        deterministic in-flight sleep the drain tests hold the server open
        with); never enable in production.
    """

    def __init__(
        self,
        server,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        executor: ServeExecutor | None = None,
        workers: int = 4,
        queue_limit: int = 32,
        session_limit: int | None = None,
        tenant_quota: int | None = 8,
        quotas: dict[str, int] | None = None,
        default_strategy: str = "gbu",
        default_sql: str = DEFAULT_SQL,
        cache: "ResultCache | bool | None" = True,
        cache_bytes: int = 64 * 1024 * 1024,
        fault_factory=None,
        trace_sink=None,
        test_ops: bool = False,
    ) -> None:
        self.server = server
        self.host = host
        self.port = port
        self.executor = executor if executor is not None else ServeExecutor(
            workers=workers,
            queue_limit=queue_limit,
            session_limit=session_limit,
            name="serve-net",
        )
        self.tenant_quota = tenant_quota
        self.quotas = dict(quotas or {})
        self.default_strategy = default_strategy
        self.default_sql = default_sql
        if cache is True:
            cache = ResultCache(max_bytes=cache_bytes)
        elif cache is False:
            cache = None
        self.cache = cache
        #: The single implementation of the query path (cache-aware); the
        #: conformance tests drive the same object without sockets.
        self.service = CachedQueryService(
            server,
            cache,
            default_sql=default_sql,
            default_strategy=default_strategy,
        )
        self.fault_factory = fault_factory
        self.trace_sink = trace_sink
        self.test_ops = test_ops
        self._state = _RUNNING
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        #: Requests read off a socket whose response has not been flushed
        #: yet.  Touched only on the event-loop thread; drain waits for it
        #: to hit zero so an in-flight response is never cut off between
        #: the executor finishing it and the handler writing it.
        self._active_requests = 0
        self._conn_counter = itertools.count()
        self._tenant_lock = threading.Lock()
        self._tenant_inflight: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the bound port."""
        self._stopped = asyncio.Event()
        self._asyncio_server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    async def run_forever(self, install_signals: bool = True) -> None:
        """Start, serve until SIGTERM/SIGINT triggers a drain, then return."""
        await self.start()
        await self.serve_until_stopped(install_signals)

    async def serve_until_stopped(self, install_signals: bool = True) -> None:
        """Serve (already started) until a signal or :meth:`drain` stops us."""
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain())
                )
        await self.wait_stopped()

    @property
    def draining(self) -> bool:
        return self._state != _RUNNING

    async def drain(self, timeout: float | None = None) -> bool:
        """The graceful-shutdown contract, in order.

        (1) stop admitting — data requests and fresh connections now shed
        with ``Overloaded("shutting-down")``; (2) wait for every admitted
        request to finish (the executor drain); (3) stop listening and
        close idle connections; (4) fsync the WAL tail and close the
        durable state.  Returns False when *timeout* elapsed before the
        in-flight work finished (state still stops accepting; durability
        is still flushed).
        """
        if self._state != _RUNNING:
            await self.wait_stopped()
            return True
        self._state = _DRAINING
        loop = asyncio.get_running_loop()
        finished = await loop.run_in_executor(None, self.executor.drain, timeout)
        while self._active_requests:
            await asyncio.sleep(0.005)
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self.executor.shutdown(wait=False)
        if self.server.wal is not None:
            self.server.wal.sync_to_disk()
        self.server.close()
        self._state = _STOPPED
        if self._stopped is not None:
            self._stopped.set()
        return finished

    def _abort_now(self) -> None:
        """Simulated kill (chaos only): stop serving without drain or close.

        Nothing is flushed or closed — exactly what a SIGKILL leaves
        behind.  Durability must come from the WAL discipline alone.
        """
        if self._asyncio_server is not None:
            self._asyncio_server.close()
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._state = _STOPPED
        if self._stopped is not None:
            self._stopped.set()

    # -- fault-site plumbing -----------------------------------------------------

    def _plan_for_connection(self, index: int):
        if self.fault_factory is None:
            return NULL_FAULTS, None
        plan = self.fault_factory(index)
        if plan is None:
            return NULL_FAULTS, None
        # Latency faults must await, not block the loop: reroute the plan's
        # sleeper into a recorder drained by _site() below.
        recorder = _DeferredSleep()
        plan._sleep = recorder
        return plan, recorder

    async def _site(self, plan, recorder, site: str) -> None:
        """Visit one net.* fault site; awaits latency, raises transient."""
        plan.at(site)
        if recorder is not None:
            delay = recorder.take()
            if delay:
                await asyncio.sleep(delay)

    # -- the connection handler --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        index = next(self._conn_counter)
        plan, recorder = self._plan_for_connection(index)
        peer = writer.get_extra_info("peername")
        span = Span("serve.net", label=f"conn-{index}")
        span.set("peer", str(peer))
        self._writers.add(writer)
        aborted = False
        try:
            try:
                await self._site(plan, recorder, "net.accept")
            except TransientFault as err:
                span.set("aborted", err.site)
                aborted = True
                return
            if self.draining:
                # Refuse the connection with a *typed* error, not a slammed
                # door: the client learns why and goes elsewhere.
                shed = Overloaded("shutting-down")
                self.executor.stats.count_shed()
                span.add("sheds")
                frame = encode_frame(
                    {"id": 0, "ok": False, "error": error_to_dict(shed)}
                )
                writer.write(frame)
                await writer.drain()
                return
            while True:
                request = await self._read_request(reader, plan, recorder, span)
                if request is None:
                    break
                self._active_requests += 1
                try:
                    if plan.corrupts("net.read"):
                        # Torn inbound frame: the request is lost mid-read;
                        # the only honest outcome is a dropped connection.
                        span.set("aborted", "net.read")
                        aborted = True
                        return
                    response = await self._respond(request, span)
                    frame = encode_frame(response)
                    try:
                        await self._site(plan, recorder, "net.write")
                    except TransientFault as err:
                        span.set("aborted", err.site)
                        aborted = True
                        return
                    if plan.corrupts("net.write"):
                        # Torn outbound frame: a seeded prefix of the frame
                        # goes out, then the connection resets — the client's
                        # framing layer must refuse the partial bytes.
                        cut = 1 + plan.pick(max(1, len(frame) - 1))
                        writer.write(frame[:cut])
                        await writer.drain()
                        span.set("aborted", "net.write")
                        aborted = True
                        return
                    writer.write(frame)
                    await writer.drain()
                    span.add("frames_out")
                    span.add("bytes_out", len(frame))
                finally:
                    self._active_requests -= 1
        except (NetworkFault, TransientFault) as err:
            # NetworkFault: torn/garbled inbound frame.  Bare TransientFault:
            # the net.read site dropped this connection mid-request.
            span.add("errors")
            span.set("aborted", err.site)
            aborted = True
        except (ConnectionError, asyncio.IncompleteReadError):
            span.add("errors")
            aborted = True
        finally:
            if not aborted:
                try:
                    await self._site(plan, recorder, "net.close")
                except TransientFault:
                    span.set("aborted", "net.close")
                    aborted = True
            self._writers.discard(writer)
            transport = writer.transport
            if aborted and transport is not None:
                transport.abort()
            else:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover - peer reset
                    pass
            span.finish()
            if self.trace_sink is not None:
                self.trace_sink.write(
                    span, meta={"connection": index, "server": "serve-net"}
                )

    async def _read_request(self, reader, plan, recorder, span) -> "dict | None":
        try:
            header = await reader.readexactly(_HEADER.size)
        except asyncio.IncompleteReadError as err:
            if not err.partial:
                return None  # clean EOF between frames: the client hung up
            raise NetworkFault("net.read", "torn length word") from err
        # The site sits between header and body: a transient here drops the
        # connection mid-request, a latency fault stalls the frame.
        await self._site(plan, recorder, "net.read")
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise NetworkFault("net.read", f"frame length {length} exceeds MAX_FRAME")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as err:
            raise NetworkFault("net.read", "connection closed mid-frame") from err
        span.add("frames_in")
        span.add("bytes_in", _HEADER.size + length)
        return decode_body(body)

    # -- dispatch ----------------------------------------------------------------

    async def _respond(self, request: dict, span: Span) -> dict:
        rid = request.get("id", 0)
        try:
            result = await self._dispatch(request, span)
            return {"id": rid, "ok": True, "result": result}
        except Overloaded as err:
            span.add("sheds")
            span.add("errors")
            return {"id": rid, "ok": False, "error": error_to_dict(err)}
        except ReproError as err:
            span.add("errors")
            return {"id": rid, "ok": False, "error": error_to_dict(err)}
        except Exception as err:  # noqa: BLE001 - marked untyped on the wire
            span.add("errors")
            return {"id": rid, "ok": False, "error": error_to_dict(err)}

    async def _dispatch(self, request: dict, span: Span):
        op = request.get("op")
        tenant = str(request.get("tenant", "public"))
        span.set("tenant", tenant)
        if op in CONTROL_OPS:
            return await self._control(op, request, tenant)
        if op not in DATA_OPS:
            raise ReproError(f"unknown op {op!r}")
        if self.draining:
            self.executor.stats.count_shed()
            raise Overloaded("shutting-down")
        guard = self._guard_from(request)
        if op == "query":
            return await self._admitted(tenant, self._query_fn(request, tenant), guard)
        return await self._admitted(tenant, self._write_fn(op, request, tenant), guard)

    def _guard_from(self, request: dict) -> QueryGuard | None:
        """The client's remaining budget, as the guard the executor enforces."""
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return None
        if deadline_ms <= 0:
            # Nobody is waiting for this answer anymore; refusing beats
            # queueing dead work in front of live requests.
            raise QueryTimeout(max(0.0, deadline_ms) / 1e3, 0.0)
        return QueryGuard(timeout=deadline_ms / 1e3)

    async def _admitted(self, tenant: str, fn, guard: QueryGuard | None):
        """Tenant quota → executor admission → worker execution, awaited."""
        quota = self.quotas.get(tenant, self.tenant_quota)
        with self._tenant_lock:
            inflight = self._tenant_inflight.get(tenant, 0)
            if quota is not None and inflight >= quota:
                self.executor.stats.count_shed()
                raise Overloaded(
                    "tenant-quota",
                    limit=quota,
                    session=tenant,
                    retry_after=self.executor.stats.retry_after_hint(
                        inflight, self.executor.workers
                    ),
                )
            self._tenant_inflight[tenant] = inflight + 1
        try:
            # The guard is installed *around submission*: the executor copies
            # the submitting context, so the client's deadline governs the
            # worker thread exactly as an in-process caller's would.
            if guard is not None:
                with use_guard(guard):
                    future = self.executor.submit(fn, session=f"tenant:{tenant}")
            else:
                future = self.executor.submit(fn, session=f"tenant:{tenant}")
            return await asyncio.wrap_future(future)
        finally:
            with self._tenant_lock:
                remaining = self._tenant_inflight.get(tenant, 1) - 1
                if remaining > 0:
                    self._tenant_inflight[tenant] = remaining
                else:
                    self._tenant_inflight.pop(tenant, None)

    # -- data-plane ops ----------------------------------------------------------

    def _query_fn(self, request: dict, tenant: str):
        user = request.get("user")
        if not user:
            raise ReproError("query needs a user")
        key = namespaced(tenant, str(user))
        sql = request.get("sql")
        strategy = request.get("strategy", self.default_strategy)
        want_oracle = bool(request.get("oracle"))

        def run_query() -> dict:
            # The shared cache-aware path (repro.cache.service): snapshot,
            # compile, digest-keyed lookup with single-flight, compute on
            # miss — byte-identical to the cache-off computation.
            return self.service.query(
                key, sql=sql, strategy=strategy, want_oracle=want_oracle
            )

        return run_query

    def _write_fn(self, op: str, request: dict, tenant: str):
        from ..codec import preference_from_dict

        user = request.get("user")
        if op != "insert" and not user:
            raise ReproError(f"{op} needs a user")
        key = namespaced(tenant, str(user)) if user else None

        def run_write() -> dict:
            if op == "add_preference":
                self.server.add_preference(key, preference_from_dict(request["pref"]))
                outcome: dict = {"added": True}
            elif op == "remove_preference":
                outcome = {"removed": self.server.remove_preference(key, request["name"])}
            elif op == "clear_preferences":
                outcome = {"dropped": self.server.clear_preferences(key)}
            else:  # insert
                self.server.insert(request["table"], request["values"])
                outcome = {"inserted": True}
            # The acknowledged LSN is the durability receipt: the chaos
            # suite kills the server and verifies every acked LSN survived.
            outcome["lsn"] = self.server.wal.lsn if self.server.wal is not None else 0
            return outcome

        return run_write

    # -- control-plane ops -------------------------------------------------------

    async def _control(self, op: str, request: dict, tenant: str):
        if op == "ping":
            delay_ms = request.get("delay_ms")
            if delay_ms and self.test_ops:
                if self.draining:
                    self.executor.stats.count_shed()
                    raise Overloaded("shutting-down")
                # Runs on the worker pool: a deterministic stand-in for a
                # slow in-flight query the drain tests hold the server with.
                # It honors the request's deadline_ms like a real query.
                return await self._admitted(
                    tenant, lambda: _slow_pong(delay_ms / 1e3), self._guard_from(request)
                )
            return {"pong": True}
        if op == "health":
            poisoned = getattr(self.server, "_poisoned", None)
            return {
                "status": "poisoned" if poisoned else "ok",
                "draining": self.draining,
                "lsn": self.server.wal.lsn if self.server.wal is not None else 0,
                "pending": self.executor.pending(),
            }
        if op == "ready":
            poisoned = getattr(self.server, "_poisoned", None)
            if poisoned:
                return {"ready": False, "reason": "poisoned"}
            if self.draining:
                return {"ready": False, "reason": "draining"}
            return {"ready": True, "reason": "ok"}
        # stats
        with self._tenant_lock:
            tenants = dict(self._tenant_inflight)
        snapshot = self.executor.stats.snapshot()
        snapshot["tenants"] = tenants
        snapshot["draining"] = self.draining
        snapshot["cache"] = self.service.stats_snapshot()
        return snapshot


def _slow_pong(seconds: float) -> dict:
    """Sleep cooperatively: the ambient guard (the propagated client
    deadline) is checked along the way, exactly as query operators do."""
    from ...resilience.guard import current_guard

    deadline = time.monotonic() + seconds
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return {"pong": True, "slept_s": seconds}
        guard = current_guard()
        if guard.enabled:
            guard.check()
        time.sleep(min(0.01, remaining))


# ---------------------------------------------------------------------------
# Threaded embedding (tests, chaos, the load generator)
# ---------------------------------------------------------------------------


class NetServerHandle:
    """A NetServer running on its own event-loop thread.

    ``stop()`` drains gracefully; ``abort()`` is the chaos kill — the loop
    stops with nothing flushed or closed, like a SIGKILL, so recovery must
    come from the WAL discipline alone.
    """

    def __init__(self, server: NetServer, thread: threading.Thread, loop) -> None:
        self.server = server
        self.thread = thread
        self.loop = loop

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def stop(self, timeout: float | None = 30.0) -> bool:
        future = asyncio.run_coroutine_threadsafe(self.server.drain(timeout), self.loop)
        finished = future.result(None if timeout is None else timeout + 10.0)
        self.thread.join(timeout=10.0)
        return finished

    def abort(self) -> None:
        self.loop.call_soon_threadsafe(self.server._abort_now)
        self.thread.join(timeout=10.0)
        # The executor threads are daemonic; shut them down without drain so
        # an aborted handle does not leak busy workers into the next test.
        self.server.executor.shutdown(wait=False)


def serve_in_thread(server: NetServer) -> NetServerHandle:
    """Start *server* on a dedicated event-loop thread; returns its handle."""
    started = threading.Event()
    failure: list[BaseException] = []
    holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop

        async def main() -> None:
            try:
                await server.start()
            except BaseException as err:  # pragma: no cover - bind failure
                failure.append(err)
                raise
            finally:
                started.set()
            await server.wait_stopped()

        try:
            loop.run_until_complete(main())
        except BaseException:  # pragma: no cover - surfaced via failure[]
            pass
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="serve-net-loop", daemon=True)
    thread.start()
    if not started.wait(timeout=30.0):  # pragma: no cover - wedged startup
        raise ReproError("NetServer event loop failed to start in 30s")
    if failure:
        thread.join(timeout=5.0)
        raise ReproError(f"NetServer failed to start: {failure[0]!r}")
    return NetServerHandle(server, thread, holder["loop"])
