"""A writer-preference readers/writer lock for the serving layer.

Snapshots and catalog reads take the shared side; DDL/DML and snapshot
creation take the exclusive side.  Writer preference keeps a steady stream
of readers from starving preference updates under load: once a writer is
waiting, new readers queue behind it.

The lock is deliberately *not* reentrant — the code it guards is structured
so that a locked public method only ever calls unlocked internals
(re-acquiring from the same thread would deadlock, which the stress suite
would catch immediately — and which the concurrency sanitizer reports as
SAN102 *before* the hang).  This module depends only on
:mod:`repro.analysis_static.sanitizer` (itself dependency-free) so
:mod:`repro.engine` and :mod:`repro.query` can import it without cycles.

Every acquire/release feeds the ambient sanitizer when one is installed
(``REPRO_SANITIZE=1``); the default is a no-op behind one attribute check,
mirroring the tracer's zero-overhead discipline.
"""

from __future__ import annotations

from contextlib import contextmanager
from threading import Condition

from ..analysis_static.sanitizer import current_sanitizer


class RWLock:
    """Shared/exclusive lock with writer preference.

    Use the context-manager helpers::

        with lock.read_locked():
            ...  # any number of concurrent readers
        with lock.write_locked():
            ...  # exactly one writer, no readers
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writers_waiting", "name")

    def __init__(self, name: str = "rwlock") -> None:
        self._cond = Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        #: Role label used by sanitizer diagnostics ("db.rwlock", ...).
        self.name = name

    # -- shared side -----------------------------------------------------------

    def acquire_read(self) -> None:
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            sanitizer.lock_acquiring(self, "read", self.name)
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        if sanitizer.enabled:
            sanitizer.lock_acquired(self, "read")

    def release_read(self) -> None:
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            sanitizer.lock_released(self, "read")
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive side ----------------------------------------------------------

    def acquire_write(self) -> None:
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            sanitizer.lock_acquiring(self, "write", self.name)
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        if sanitizer.enabled:
            sanitizer.lock_acquired(self, "write")

    def release_write(self) -> None:
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            sanitizer.lock_released(self, "write")
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    # -- context managers --------------------------------------------------------

    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RWLock(readers={self._readers}, writer={self._writer}, "
            f"waiting={self._writers_waiting})"
        )
