"""The preference server: one durable, concurrently served state.

A :class:`PreferenceServer` owns the *live* pair (database, preference
store) and is the single write path to both.  It stitches the three serving
pillars together:

* **Snapshot isolation** — :meth:`snapshot` captures an immutable
  :class:`ServerSnapshot` (a :meth:`Database.snapshot` plus the matching
  :meth:`PreferenceStore.snapshot`) under the server mutex, so a reader
  never sees a database from one instant paired with preferences from
  another.  Readers then run entire workloads against the snapshot while
  writers keep mutating the live state.
* **Durability** — every mutation is applied and then appended to the
  :class:`~repro.serve.wal.PreferenceWAL` before the call returns (the
  append is the commit point: a crash loses only writes that were never
  acknowledged).  :meth:`checkpoint` flushes the full state through the
  format-2 persistence layer (:func:`repro.engine.persist.save_database`
  plus a checksummed ``preferences.json``) and resets the log.
* **Recovery** — :meth:`open` loads the newest checkpoint, replays the
  surviving WAL prefix (tolerantly: a record whose effect is already in
  the checkpoint is skipped, so replay is idempotent), and truncates any
  torn tail.

:func:`state_digest` condenses the whole logical state — schemas, rows,
preferences — to one sha256, which is how the crash-recovery fixtures
assert "recovered state == replaying the surviving prefix" byte-for-byte.

Directory layout (``server.directory``)::

    CURRENT             name of the live checkpoint directory (pointer file)
    checkpoint-NNNNNNNN/
        schema.json     format-2 database checkpoint manifest
        *.jsonl         table data files
        preferences.json  checksummed preference checkpoint
    preferences.wal     mutations since the checkpoint

Checkpoints are **versioned**: each :meth:`checkpoint` writes a brand-new
``checkpoint-<epoch>`` directory and then atomically flips the ``CURRENT``
pointer at it.  No durable file is ever overwritten in place, so a crash at
*any* instant leaves either the old complete checkpoint (pointer unmoved,
WAL intact → replay redoes the gap) or the new one — never a manifest
describing half-written table files.  Superseded checkpoint directories are
garbage-collected only after the pointer flip is durable.  (The pre-PR-8
single ``checkpoint/`` layout is still readable.)

A server opened without a directory is *ephemeral*: same write path and
snapshot semantics, no durability — what the pure-concurrency stress tests
use.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from dataclasses import dataclass
from threading import Lock

from ..engine.database import Database
from ..engine.persist import SCHEMA_FILE, _atomic_write, load_database, save_database
from ..errors import (
    CatalogError,
    DataCorruption,
    PreferenceError,
    ReproError,
    ResilienceError,
    WALPoisoned,
)
from ..query.store import PreferenceStore
from ..resilience.vfs import current_vfs
from .codec import canonical_json, preference_from_dict, preference_to_dict
from .wal import WAL_FILE, PreferenceWAL, WalReplay

PREFS_FILE = "preferences.json"
#: Pre-PR-8 fixed checkpoint directory; still readable, never written.
CHECKPOINT_DIR = "checkpoint"
#: Pointer file naming the live versioned checkpoint directory.
CURRENT_FILE = "CURRENT"

_CHECKPOINT_NAME = re.compile(r"^checkpoint-(\d{8})$")


def _current_checkpoint(directory: str, vfs) -> tuple[str | None, int]:
    """Resolve the live checkpoint of *directory*: ``(path-or-None, epoch)``.

    Reads the ``CURRENT`` pointer (new layout), falling back to the legacy
    fixed ``checkpoint/`` directory.  A pointer that names a missing or
    malformed checkpoint is corruption — the pointer flip is ordered after
    the checkpoint files become durable, so no crash can produce it.
    """
    pointer_path = os.path.join(directory, CURRENT_FILE)
    if vfs.exists(pointer_path):
        with vfs.open(pointer_path, encoding="utf-8") as handle:
            name = handle.read().strip()
        match = _CHECKPOINT_NAME.match(name)
        if match is None or os.path.sep in name:
            raise DataCorruption(
                f"CURRENT names an invalid checkpoint {name!r}", path=pointer_path
            )
        target = os.path.join(directory, name)
        if not vfs.exists(os.path.join(target, SCHEMA_FILE)):
            raise DataCorruption(
                f"CURRENT points at checkpoint {name!r} which has no manifest",
                path=pointer_path,
            )
        return target, int(match.group(1))
    legacy = os.path.join(directory, CHECKPOINT_DIR)
    if vfs.exists(os.path.join(legacy, SCHEMA_FILE)):
        return legacy, 0
    return None, 0


@dataclass(frozen=True)
class ServerSnapshot:
    """An immutable, mutually consistent (database, preferences) pair.

    ``db_version``/``store_version`` identify the instant it was taken;
    ``lsn`` is the last WAL record reflected in it (0 for ephemeral
    servers).  Sessions built from the snapshot see exactly this state no
    matter what writers do afterwards.
    """

    db: Database
    store: PreferenceStore
    db_version: int
    store_version: int
    lsn: int

    def session_for(self, user: str, strategy: str = "gbu", **kwargs):
        """A session over the snapshot with *user*'s preferences registered."""
        return self.store.session_for(user, strategy=strategy, **kwargs)

    def digest(self) -> str:
        """sha256 of the snapshot's full logical state (see :func:`state_digest`).

        The snapshot is immutable, so the digest is computed once and cached
        on the instance — repeat calls on the serve path are O(1).
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = state_digest(self.db, self.store)
            object.__setattr__(self, "_digest", cached)
        return cached


def table_digest(table) -> str:
    """sha256 of one table's logical content (schema + row multiset).

    Rows are sorted canonically, so insertion order does not matter.  On a
    **frozen** table the digest is memoized on the instance: a frozen table
    can never change again (the copy-on-write discipline forks a fresh
    object before any post-snapshot write), so every later snapshot sharing
    the object reuses the digest instead of re-canonicalizing the rows.
    """
    cached = getattr(table, "_content_digest", None)
    if cached is not None:
        return cached
    payload = canonical_json(
        {
            "columns": [[c.name, c.dtype.value] for c in table.schema.columns],
            "primary_key": list(table.schema.primary_key),
            "rows": sorted((list(row) for row in table.rows), key=canonical_json),
        }
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    if table.frozen:
        table._content_digest = digest
    return digest


def table_digests(db: Database) -> dict[str, str]:
    """Per-table content digests of *db*, memoized on ``db.version``.

    Every database mutation bumps ``db.version``, so the memo is exactly as
    fresh as the data; unchanged tables additionally reuse their per-table
    memo (see :func:`table_digest`), making re-digestion after a write
    linear in the *touched* tables only.
    """
    memo = getattr(db, "_digest_memo", None)
    if memo is not None and memo[0] == db.version:
        return memo[1]
    digests = {
        table.name: table_digest(table)
        for table in sorted(db.catalog.tables(), key=lambda t: t.name)
    }
    db._digest_memo = (db.version, digests)
    return digests


def state_digest(db: Database, store: PreferenceStore) -> str:
    """One sha256 over the complete logical state of (*db*, *store*).

    Built by composing every table's content digest (:func:`table_digest`)
    with every user's profile digest
    (:meth:`~repro.query.store.PreferenceStore.profile_digest`) — both
    order-insensitive and memoized — so two states digest equal iff they
    are logically identical, and repeat digestion is no longer linear in
    database size.  Used by the recovery fixtures to compare a
    crash-recovered server against an oracle that replayed the same WAL
    prefix in memory.
    """
    # A user whose last preference was removed is logically indistinguishable
    # from an unknown user, and recovery does not recreate empty entries —
    # the digest must not hinge on that bookkeeping.
    prefs = {
        user: store.profile_digest(user)
        for user in store.users()
        if store.preferences_of(user)
    }
    payload = canonical_json(
        {"v": 2, "tables": table_digests(db), "preferences": prefs}
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class PreferenceServer:
    """Single-writer-path façade over a live database and preference store.

    All mutations funnel through here (under one mutex, so WAL order equals
    apply order); reads go through :meth:`snapshot`.  Construct directly
    for an ephemeral server, or use :meth:`open` for a durable one.
    """

    def __init__(
        self,
        db: Database | None = None,
        store: PreferenceStore | None = None,
        *,
        directory: str | None = None,
        wal: PreferenceWAL | None = None,
        auto_checkpoint: int | None = None,
    ):
        self.db = db if db is not None else Database()
        self.store = store if store is not None else PreferenceStore(self.db)
        self.directory = directory
        self.wal = wal
        #: Checkpoint automatically after this many WAL appends (None: manual).
        self.auto_checkpoint = auto_checkpoint
        self._appends_since_checkpoint = 0
        #: Epoch of the live checkpoint (0: none yet / legacy layout).
        self._epoch = 0
        #: Set when a WAL append failed after the in-memory mutation was
        #: applied: memory is then ahead of what recovery can reconstruct,
        #: so the server fail-stops (writes *and* snapshots refuse).
        self._poisoned: str | None = None
        # Serializes writers against each other and against snapshot capture,
        # so a snapshot can never pair a database from one instant with
        # preferences from another.
        self._mutex = Lock()
        #: Commit hooks: ``listener(op, payload)`` called after each mutation
        #: is applied and logged, still under the mutex — in commit order.
        self._listeners: list = []

    def add_listener(self, listener) -> None:
        """Register ``listener(op, payload)`` to observe committed mutations.

        Called under the server mutex immediately after the mutation is
        applied in memory and appended to the WAL, so listeners observe
        mutations in exactly commit (= WAL) order.  The payload carries live
        objects (``pref.add`` passes the preference itself, not its
        serialization); listeners must be fast and must not call back into
        the server's write path.  This is the change feed the cache layer's
        invalidation and the incremental score maintainer
        (:mod:`repro.cache`) hang off.
        """
        self._listeners.append(listener)

    def _notify(self, op: str, payload: dict) -> None:
        for listener in self._listeners:
            listener(op, payload)

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        initial: Database | None = None,
        sync: bool = True,
        auto_checkpoint: int | None = None,
    ) -> tuple["PreferenceServer", WalReplay]:
        """Open (or create) the durable server state under *directory*.

        Recovery order: load the checkpoint (or adopt *initial* / an empty
        database when none exists yet), replay the WAL's surviving prefix on
        top, truncate any torn tail.  Returns the server and the
        :class:`~repro.serve.wal.WalReplay` describing what recovery found.
        A brand-new directory gets an immediate baseline checkpoint so a
        later recovery always has a base to replay onto.
        """
        vfs = current_vfs()
        vfs.makedirs(directory)
        checkpoint_dir, epoch = _current_checkpoint(directory, vfs)
        if checkpoint_dir is not None:
            db = load_database(checkpoint_dir)
        else:
            db = initial if initial is not None else Database()
        if db.is_snapshot:
            raise ReproError("cannot serve from a snapshot database")
        store = PreferenceStore(db)
        # New layout keeps the preference checkpoint inside the versioned
        # checkpoint directory; the legacy layout kept it at the top level.
        prefs_candidates = [os.path.join(directory, PREFS_FILE)]
        if checkpoint_dir is not None:
            prefs_candidates.insert(0, os.path.join(checkpoint_dir, PREFS_FILE))
        for prefs_path in prefs_candidates:
            if vfs.exists(prefs_path):
                _load_preferences(prefs_path, store)
                break
        wal, replay = PreferenceWAL.open(
            os.path.join(directory, WAL_FILE), sync=sync
        )
        server = cls(
            db,
            store,
            directory=directory,
            wal=wal,
            auto_checkpoint=auto_checkpoint,
        )
        server._epoch = epoch
        for record in replay.records:
            server._apply_replay(record.op, record.payload)
        if checkpoint_dir is None:
            server.checkpoint()
        return server, replay

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> ServerSnapshot:
        """Capture an immutable, consistent view of the entire server state.

        Refuses (:exc:`~repro.errors.WALPoisoned`) on a poisoned server: the
        in-memory state then contains a mutation that was never acknowledged
        as durable, so handing it out would let readers observe data a
        recovery cannot reproduce.
        """
        with self._mutex:
            self._check_healthy()
            db_snap = self.db.snapshot()
            store_snap = self.store.snapshot(db_snap)
            return ServerSnapshot(
                db=db_snap,
                store=store_snap,
                db_version=db_snap.version,
                store_version=store_snap.version,
                lsn=self.wal.lsn if self.wal is not None else 0,
            )

    # -- the write path ----------------------------------------------------------

    def add_preference(self, user: str, preference) -> None:
        """Store a preference for *user*, durably (WAL append = commit)."""
        # Serialize before applying: a non-loggable preference (callable
        # scoring, predicate context) must be rejected before it reaches
        # either the store or the log.
        payload = (
            {"user": user, "pref": preference_to_dict(preference)}
            if self.wal is not None
            else None
        )
        with self._mutex:
            self._check_healthy()
            self.store.add(user, preference)
            self._log("pref.add", payload)
            self._notify("pref.add", {"user": user, "preference": preference})

    def remove_preference(self, user: str, name: str) -> bool:
        with self._mutex:
            self._check_healthy()
            removed = self.store.remove(user, name)
            if removed:
                self._log("pref.remove", {"user": user, "name": name})
                self._notify("pref.remove", {"user": user, "name": name})
            return removed

    def clear_preferences(self, user: str) -> int:
        with self._mutex:
            self._check_healthy()
            dropped = self.store.clear(user)
            if dropped:
                self._log("pref.clear", {"user": user})
                self._notify("pref.clear", {"user": user, "dropped": dropped})
            return dropped

    def insert(self, table: str, values) -> None:
        """Insert one row through the copy-on-write write path, durably."""
        with self._mutex:
            self._check_healthy()
            self.db.insert(table, values)
            self._log("row.insert", {"table": table, "values": list(values)})
            self._notify("row.insert", {"table": table, "values": list(values)})

    def _check_healthy(self) -> None:
        if self._poisoned is not None:
            path = self.wal.path if self.wal is not None else None
            raise WALPoisoned(path, self._poisoned)

    def _log(self, op: str, payload: dict | None) -> None:
        if self.wal is None:
            return
        try:
            self.wal.append(op, payload if payload is not None else {})
        except (ResilienceError, OSError) as err:
            # The in-memory mutation is already applied but was never made
            # durable: fail-stop the whole server, not just the log, so no
            # snapshot or later write can observe the divergent state.
            self._poisoned = str(err)
            raise
        self._appends_since_checkpoint += 1
        if (
            self.auto_checkpoint is not None
            and self._appends_since_checkpoint >= self.auto_checkpoint
        ):
            self._checkpoint_locked()

    # -- recovery ----------------------------------------------------------------

    def _apply_replay(self, op: str, payload: dict) -> None:
        """Apply one recovered WAL record, idempotently.

        A crash between "checkpoint written" and "WAL reset" leaves records
        whose effects the checkpoint already holds; redo must therefore
        tolerate already-applied mutations (the duplicate-name / missing-name
        cases below) rather than fail recovery on them.
        """
        if op == "pref.add":
            try:
                self.store.add(payload["user"], preference_from_dict(payload["pref"]))
            except PreferenceError:
                pass  # already present: record predates the checkpoint
        elif op == "pref.remove":
            self.store.remove(payload["user"], payload["name"])
        elif op == "pref.clear":
            self.store.clear(payload["user"])
        elif op == "row.insert":
            self._replay_row_insert(payload)
        else:
            raise DataCorruption(f"write-ahead log carries unknown operation {op!r}")

    def _replay_row_insert(self, payload: dict) -> None:
        """Redo one logged row insert, tolerating *only* checkpoint overlap.

        The sole benign failure is a duplicate primary key whose resident
        row is byte-identical to the logged one — the record predates the
        checkpoint.  Everything else (unknown table, schema violation,
        conflicting content under the same key) means the log disagrees
        with the checkpoint it is being replayed onto, which no crash can
        produce: that is corruption, not redo, and silently dropping the
        row would lose acknowledged data.
        """
        table_name = payload.get("table")
        values = payload.get("values")
        try:
            self.db.insert(table_name, values)
            return
        except CatalogError as err:
            if "duplicate primary key" not in str(err):
                raise DataCorruption(
                    f"replayed row.insert does not fit the checkpoint: {err}"
                ) from err
        except ReproError as err:
            raise DataCorruption(
                f"replayed row.insert violates the schema: {err}"
            ) from err
        # Duplicate key: benign only if it is the *same* row.
        table = self.db.table(table_name)
        row = table._coerce(values)
        existing = table.get(table.primary_key_of(row))
        if existing != row:
            raise DataCorruption(
                f"replayed row.insert conflicts with checkpointed row "
                f"{existing!r} in table {table.name} (logged {row!r})"
            )

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush the full state to a fresh checkpoint and reset the WAL.

        Write order is the crash contract: (1) a brand-new versioned
        checkpoint directory (every file atomically written and fsync'd, no
        durable file overwritten), (2) the ``CURRENT`` pointer flip, (3) the
        WAL reset, (4) garbage collection of superseded checkpoints.  A
        crash before (2) leaves the old checkpoint + full WAL; between (2)
        and (3) the new checkpoint + full WAL, which the idempotent redo in
        :meth:`_apply_replay` absorbs; after (3) the new checkpoint + empty
        WAL.  Every cut is a recoverable state.
        """
        if self.directory is None:
            raise ReproError("ephemeral server has nowhere to checkpoint")
        with self._mutex:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        epoch = self._epoch + 1
        name = f"checkpoint-{epoch:08d}"
        target = os.path.join(self.directory, name)
        save_database(self.db, target)
        _save_preferences(os.path.join(target, PREFS_FILE), self.store)
        # The commit point: recovery reads this checkpoint from now on.
        _atomic_write(os.path.join(self.directory, CURRENT_FILE), name + "\n")
        self._epoch = epoch
        if self.wal is not None:
            self.wal.reset()
        self._appends_since_checkpoint = 0
        self._collect_stale_checkpoints(keep=name)

    def _collect_stale_checkpoints(self, keep: str) -> None:
        """Best-effort removal of checkpoints the pointer no longer names.

        Runs only after the pointer flip is durable, so a crash mid-removal
        merely leaves an unreferenced directory for the next pass.
        """
        try:
            entries = os.listdir(self.directory)
        except OSError:  # pragma: no cover - directory vanished under us
            return
        for entry in entries:
            if entry == keep:
                continue
            if _CHECKPOINT_NAME.match(entry) or entry == CHECKPOINT_DIR:
                shutil.rmtree(os.path.join(self.directory, entry), ignore_errors=True)
        # The legacy layout also kept the preference checkpoint at top level.
        legacy_prefs = os.path.join(self.directory, PREFS_FILE)
        if os.path.exists(legacy_prefs):
            try:
                os.remove(legacy_prefs)  # noqa: LN305 - GC of a superseded file
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- introspection -----------------------------------------------------------

    def state_digest(self) -> str:
        """sha256 of the live logical state (consistent: captured via snapshot)."""
        return self.snapshot().digest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.directory if self.directory is not None else "ephemeral"
        return f"PreferenceServer({where}, lsn={self.wal.lsn if self.wal else 0})"


# ---------------------------------------------------------------------------
# Preference checkpoint file
# ---------------------------------------------------------------------------


def _save_preferences(path: str, store: PreferenceStore) -> None:
    users = {
        user: [preference_to_dict(stored) for stored in store.preferences_of(user)]
        for user in store.users()
    }
    body = canonical_json(users)
    document = {
        "format": 1,
        "checksum": "sha256:" + hashlib.sha256(body.encode("utf-8")).hexdigest(),
        "users": users,
    }
    _atomic_write(path, json.dumps(document, indent=2, sort_keys=True))


def _load_preferences(path: str, store: PreferenceStore) -> None:
    with current_vfs().open(path, encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except ValueError as err:
            raise DataCorruption(
                f"preference checkpoint is not valid JSON: {err}", path=path
            ) from err
    users = document.get("users")
    if not isinstance(users, dict):
        raise DataCorruption("preference checkpoint lacks a users mapping", path=path)
    expected = document.get("checksum")
    actual = "sha256:" + hashlib.sha256(
        canonical_json(users).encode("utf-8")
    ).hexdigest()
    if expected is not None and expected != actual:
        raise DataCorruption(
            f"preference checkpoint checksum mismatch (expected {expected})",
            path=path,
        )
    for user, stored_list in users.items():
        store.add_all(user, [preference_from_dict(data) for data in stored_list])
