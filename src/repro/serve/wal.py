"""Append-only, fsync'd, checksummed write-ahead log for preference state.

Layered on the format-2 persistence discipline of :mod:`repro.engine.persist`
(atomic checkpoint files, content checksums, typed
:exc:`~repro.errors.DataCorruption`), the WAL makes *mutations between
checkpoints* durable: every preference or table write is appended and
fsync'd before it is applied to the in-memory state, ARIES-style, so a
crash at any instant loses at most the one record that was mid-write.

Record format — one line per record::

    <sha256[:16] of the JSON text> <canonical JSON>\\n

with the JSON carrying ``{"lsn": n, "op": "...", ...payload}``.  Canonical
JSON (sorted keys, compact) makes the checksum deterministic.  LSNs are
assigned contiguously, so recovery can verify nothing vanished mid-log.

Recovery discipline (:func:`scan_wal`):

* A damaged **final** record (missing newline, short line, checksum or JSON
  failure) is a **torn tail** — the expected artifact of a crash mid-append.
  It is dropped, reported in :attr:`WalReplay.torn_tail`, and
  :meth:`PreferenceWAL.open` physically truncates it so later appends start
  from a clean prefix.
* Anything wrong **before** the final record — a damaged middle line, an
  LSN gap or regression — cannot be produced by a crash and raises a typed
  :exc:`~repro.errors.DataCorruption` naming the exact file and line.

Failure discipline (fsyncgate semantics): when an append's write or fsync
fails, the on-disk tail is unknowable *and* the kernel may already have
dropped the dirty pages it failed to persist — so the log **fail-stops**.
The handle is closed and poisoned, the failed record is never acknowledged
(the LSN does not advance), and every later :meth:`PreferenceWAL.append`
or :meth:`~PreferenceWAL.reset` raises :exc:`~repro.errors.WALPoisoned`
instead of retrying on pages that may never reach disk.  Recovery is a
fresh :meth:`PreferenceWAL.open`, which re-scans the file and truncates
whatever the failed append left behind as a torn tail.

All file I/O goes through the ambient VFS (:mod:`repro.resilience.vfs`),
so the crash-torture harness can inject storage failures at every byte.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from threading import Lock

from ..analysis_static.sanitizer import current_sanitizer
from ..errors import DataCorruption, DurabilityError, PowerCut, WALPoisoned
from ..resilience.vfs import current_vfs
from .codec import canonical_json

WAL_FILE = "preferences.wal"

#: Operations a WAL may carry; the server owns their application semantics.
OPS = (
    "pref.add",
    "pref.remove",
    "pref.clear",
    "row.insert",
)


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation: ``lsn`` orders it, ``op`` names it."""

    lsn: int
    op: str
    payload: dict

    def encode(self) -> str:
        body = canonical_json({"lsn": self.lsn, "op": self.op, **self.payload})
        return f"{_checksum(body)} {body}\n"


@dataclass
class WalReplay:
    """Outcome of scanning a WAL file: the surviving records plus verdicts."""

    records: list[WalRecord] = field(default_factory=list)
    #: Byte offset at which a torn tail starts, ``None`` for a clean log.
    torn_at: int | None = None
    #: Human-readable description of the torn tail, when one was found.
    torn_tail: str | None = None

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0

    @property
    def clean(self) -> bool:
        return self.torn_at is None


def _parse_line(line: str):
    """``(record, problem)`` — exactly one of the two is ``None``."""
    separator = line.find(" ")
    if separator != 16:
        return None, "record has no 16-hex checksum prefix"
    checksum, body = line[:separator], line[separator + 1 :]
    if _checksum(body) != checksum:
        return None, f"checksum mismatch (expected {checksum})"
    try:
        data = json.loads(body)
    except ValueError as err:
        return None, f"record is not valid JSON ({err})"
    if not isinstance(data, dict) or "lsn" not in data or "op" not in data:
        return None, "record lacks lsn/op fields"
    lsn = data.pop("lsn")
    op = data.pop("op")
    if not isinstance(lsn, int) or not isinstance(op, str):
        return None, "record has malformed lsn/op fields"
    return WalRecord(lsn, op, data), None


def scan_wal(path: str) -> WalReplay:
    """Read every intact record of *path*, applying the recovery discipline.

    Returns the surviving prefix; only damage confined to the very end of
    the file is tolerated (and reported) as a torn tail.  A missing file is
    an empty, clean log — the state after a checkpoint reset.
    """
    replay = WalReplay()
    vfs = current_vfs()
    if not vfs.exists(path):
        return replay
    with vfs.open(path, "rb") as handle:
        raw = handle.read()
    offset = 0
    previous_lsn: int | None = None
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            # No terminating newline: the classic torn tail of a crashed append.
            replay.torn_at = offset
            replay.torn_tail = "unterminated final record (crash mid-append)"
            return replay
        line = raw[offset:newline].decode("utf-8", errors="replace")
        record, problem = _parse_line(line)
        if record is not None and previous_lsn is not None and record.lsn != previous_lsn + 1:
            record, problem = None, (
                f"LSN discontinuity: {previous_lsn} followed by {record.lsn}"
            )
            # A gap cannot come from truncation-at-an-offset; always fatal.
            raise DataCorruption(
                f"write-ahead log is corrupt: {problem}",
                path=path,
                line=len(replay.records) + 1,
            )
        if record is None:
            if newline == len(raw) - 1:
                # Damaged but final line: torn tail, drop it.
                replay.torn_at = offset
                replay.torn_tail = problem
                return replay
            raise DataCorruption(
                f"write-ahead log is corrupt mid-file: {problem}",
                path=path,
                line=len(replay.records) + 1,
            )
        replay.records.append(record)
        previous_lsn = record.lsn
        offset = newline + 1
    return replay


class PreferenceWAL:
    """The append side of the log: thread-safe, fsync'd, checksummed.

    ``sync=False`` trades the per-record fsync for speed (tests, benchmarks
    measuring everything else); production durability wants the default.
    """

    def __init__(self, path: str, *, sync: bool = True, start_lsn: int = 0):
        self.path = path
        self.sync = sync
        self._lock = Lock()
        self._lsn = start_lsn
        self._handle = None
        self._vfs = None
        #: Reason the log fail-stopped, or ``None`` while healthy.
        self._poisoned: str | None = None

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(cls, path: str, *, sync: bool = True) -> tuple["PreferenceWAL", WalReplay]:
        """Scan *path*, truncate any torn tail, and return an appendable WAL.

        The returned :class:`WalReplay` holds the surviving records for the
        caller to apply; the WAL continues LSN assignment after them.
        """
        replay = scan_wal(path)
        if replay.torn_at is not None:
            vfs = current_vfs()
            with vfs.open(path, "rb+") as handle:
                handle.truncate(replay.torn_at)
                vfs.fsync(handle)
        wal = cls(path, sync=sync, start_lsn=replay.last_lsn)
        return wal, replay

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._vfs = None

    # -- appending -------------------------------------------------------------

    @property
    def lsn(self) -> int:
        """The LSN of the most recently appended (or recovered) record."""
        return self._lsn

    @property
    def poisoned(self) -> str | None:
        """Why the log fail-stopped, or ``None`` while it accepts appends."""
        return self._poisoned

    def append(self, op: str, payload: dict) -> WalRecord:
        """Durably append one record; returns it once it is on disk.

        The record is flushed — and, with ``sync``, fsync'd — before this
        method returns, so callers may apply the mutation to in-memory
        state knowing recovery will replay it.  A failed write or fsync
        poisons the log (fail-stop): the record is *not* acknowledged, the
        LSN does not advance, and every later append raises
        :exc:`~repro.errors.WALPoisoned` until the log is reopened.
        """
        with self._lock:
            if self._poisoned is not None:
                raise WALPoisoned(self.path, self._poisoned)
            record = WalRecord(self._lsn + 1, op, dict(payload))
            sanitizer = current_sanitizer()
            if sanitizer.enabled:
                sanitizer.wal_append_begin(self, record.lsn)
            try:
                handle = self._ensure_handle()
                handle.write(record.encode())
                handle.flush()
                if sanitizer.enabled:
                    sanitizer.wal_flushed(self)
                if self.sync:
                    self._fsync(handle)
            except PowerCut:
                self._poison("simulated power failure mid-append")
                raise
            except OSError as err:
                # Never retry on the same handle: a failed fsync may have
                # dropped the very pages a retry would claim to persist.
                self._poison(str(err))
                raise DurabilityError("append", self.path, str(err)) from err
            self._lsn = record.lsn
            if sanitizer.enabled:
                sanitizer.wal_append_end(self, record.lsn, self.sync)
            return record

    def sync_to_disk(self) -> None:
        """Flush and fsync whatever is buffered (no-op when closed/poisoned).

        ``sync=True`` logs are durable after every append already; this is
        the graceful-drain hook for ``sync=False`` logs — the network front
        end calls it before exit so every acknowledged append is on disk
        even when per-record fsync was traded away.  A failure here poisons
        the log exactly like a failed append: the pages may be gone.
        """
        with self._lock:
            if self._handle is None or self._poisoned is not None:
                return
            try:
                self._handle.flush()
                self._fsync(self._handle)
            except PowerCut:
                self._poison("simulated power failure during drain sync")
                raise
            except OSError as err:
                self._poison(str(err))
                raise DurabilityError("fsync", self.path, str(err)) from err

    def _poison(self, reason: str) -> None:
        """Fail-stop: close the tainted handle and refuse all later appends."""
        self._poisoned = reason
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close after I/O error
                pass
            self._handle = None
            self._vfs = None

    def _fsync(self, handle) -> None:
        """The durability point of one sync-mode append (sanitizer-visible)."""
        (self._vfs or current_vfs()).fsync(handle)
        sanitizer = current_sanitizer()
        if sanitizer.enabled:
            sanitizer.wal_synced(self)

    def _ensure_handle(self):
        if self._handle is None:
            self._vfs = current_vfs()
            directory = os.path.dirname(os.path.abspath(self.path))
            self._vfs.makedirs(directory)
            self._handle = self._vfs.open(self.path, "a", encoding="utf-8")
        return self._handle

    # -- checkpoint support ------------------------------------------------------

    def reset(self) -> None:
        """Start a fresh, empty log (called after a successful checkpoint).

        The old file is atomically replaced by an empty one, so a crash
        during reset leaves either the full old log (checkpoint already
        durable → replay is idempotent) or the clean new one.
        """
        with self._lock:
            if self._poisoned is not None:
                raise WALPoisoned(self.path, self._poisoned)
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._vfs = None
            vfs = current_vfs()
            tmp_path = f"{self.path}.{os.getpid()}.reset.tmp"
            try:
                with vfs.open(tmp_path, "w", encoding="utf-8") as handle:
                    handle.flush()
                    vfs.fsync(handle)
                vfs.replace(tmp_path, self.path)
                # Make the rename itself durable before any later append is
                # acknowledged against the fresh log.
                vfs.fsync_dir(os.path.dirname(os.path.abspath(self.path)) or ".")
            except PowerCut:
                self._poison("simulated power failure mid-reset")
                raise
            except OSError as err:
                try:
                    vfs.remove(tmp_path)
                except OSError:
                    pass
                self._poison(str(err))
                raise DurabilityError("reset", self.path, str(err)) from err
            sanitizer = current_sanitizer()
            if sanitizer.enabled:
                sanitizer.wal_reset(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreferenceWAL({self.path!r}, lsn={self._lsn}, sync={self.sync})"
