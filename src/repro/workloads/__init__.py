"""Experiment workloads: synthetic data sets, queries and preference pools."""

from .dblp import DblpConfig, generate_dblp
from .imdb import ImdbConfig, generate_imdb
from .prefgen import (
    equality_preference,
    measured_selectivity,
    preference_pool,
    range_preference,
)
from .queries import (
    WorkloadQuery,
    all_queries,
    dblp_1,
    dblp_2,
    dblp_3,
    dblp_queries,
    imdb_1,
    imdb_2,
    imdb_3,
    imdb_queries,
)

__all__ = [
    "generate_imdb",
    "ImdbConfig",
    "generate_dblp",
    "DblpConfig",
    "WorkloadQuery",
    "all_queries",
    "imdb_queries",
    "dblp_queries",
    "imdb_1",
    "imdb_2",
    "imdb_3",
    "dblp_1",
    "dblp_2",
    "dblp_3",
    "equality_preference",
    "range_preference",
    "measured_selectivity",
    "preference_pool",
]
