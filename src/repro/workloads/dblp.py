"""Synthetic DBLP-shaped dataset generator (paper Fig. 8 / Table I).

The paper's second data set is a June 2011 DBLP extract decomposed into
PUBLICATIONS (2,659,337 rows), AUTHORS (977,494), PUB_AUTHORS (5,394,948),
CONFERENCES (956,888), JOURNALS (689,016) and CITATIONS.  As with IMDB we
reproduce the schema, size ratios and distribution shapes at a configurable
scale with a seeded generator.

Every publication is either a conference or a journal paper; CONFERENCES and
JOURNALS key on ``p_id`` (one venue row per publication, as in the paper's
decomposition of the DBLP XML).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.database import Database
from ..engine.types import DataType

#: Row counts at scale=1.0 (CITATIONS is not reported in the visible text;
#: we use ~3 citation edges per publication, in line with DBLP snapshots).
TABLE1_SIZES = {
    "PUBLICATIONS": 2_659_337,
    "AUTHORS": 977_494,
    "PUB_AUTHORS": 5_394_948,
    "CONFERENCES": 956_888,
    "JOURNALS": 689_016,
    "CITATIONS": 7_978_011,
}

CONFERENCE_NAMES = (
    "ICDE", "SIGMOD", "VLDB", "EDBT", "CIKM", "KDD", "WWW", "ICDM",
    "SIGIR", "PODS", "WSDM", "SOCC", "ICML", "NIPS", "AAAI", "IJCAI",
)

JOURNAL_NAMES = (
    "TODS", "VLDBJ", "TKDE", "Information Systems", "DAPD",
    "SIGMOD Record", "JACM", "CACM", "TOIS", "DKE",
)

LOCATIONS = (
    "San Jose", "Athens", "Paris", "Tokyo", "Istanbul", "Seoul",
    "Chicago", "Vancouver", "Shanghai", "Berlin", "Sydney", "Lisbon",
)

PUB_TYPES = ("conference", "journal")

MIN_YEAR = 1970
MAX_YEAR = 2011


@dataclass(frozen=True)
class DblpConfig:
    """Generation parameters for the synthetic DBLP database."""

    scale: float = 0.001
    seed: int = 1729
    build_indexes: bool = True
    analyze: bool = True

    def size(self, table: str) -> int:
        return max(2, int(TABLE1_SIZES[table] * self.scale))


def generate_dblp(config: DblpConfig | None = None, **overrides) -> Database:
    """Build and load a synthetic DBLP database."""
    if config is None:
        config = DblpConfig(**overrides)
    rng = np.random.default_rng(config.seed)
    db = Database()
    _create_schema(db)

    n_pubs = config.size("PUBLICATIONS")
    n_conf = min(config.size("CONFERENCES"), n_pubs)
    n_jour = min(config.size("JOURNALS"), n_pubs - n_conf)
    n_authors = config.size("AUTHORS")

    years = _years(rng, n_pubs)
    _load_publications(db, n_pubs, n_conf, n_jour)
    _load_conferences(db, rng, n_conf, years)
    _load_journals(db, rng, n_conf, n_jour, years)
    _load_authors(db, n_authors)
    _load_pub_authors(db, rng, n_pubs, n_authors, config.size("PUB_AUTHORS"))
    _load_citations(db, rng, n_pubs, config.size("CITATIONS"))

    if config.build_indexes:
        _build_indexes(db)
    if config.analyze:
        db.analyze()
    return db


def _create_schema(db: Database) -> None:
    """The bibliography schema of the paper's Fig. 8."""
    db.create_table(
        "PUBLICATIONS",
        [("p_id", DataType.INT), ("title", DataType.TEXT), ("pub_type", DataType.TEXT)],
        primary_key=["p_id"],
    )
    db.create_table(
        "PUB_AUTHORS",
        [("p_id", DataType.INT), ("a_id", DataType.INT)],
        primary_key=["p_id", "a_id"],
    )
    db.create_table(
        "AUTHORS",
        [("a_id", DataType.INT), ("name", DataType.TEXT)],
        primary_key=["a_id"],
    )
    db.create_table(
        "CONFERENCES",
        [
            ("p_id", DataType.INT),
            ("name", DataType.TEXT),
            ("year", DataType.INT),
            ("location", DataType.TEXT),
        ],
        primary_key=["p_id"],
    )
    db.create_table(
        "JOURNALS",
        [
            ("p_id", DataType.INT),
            ("name", DataType.TEXT),
            ("year", DataType.INT),
            ("volume", DataType.INT),
        ],
        primary_key=["p_id"],
    )
    db.create_table(
        "CITATIONS",
        [("p1_id", DataType.INT), ("p2_id", DataType.INT)],
        primary_key=["p1_id", "p2_id"],
    )


def _years(rng: np.random.Generator, size: int) -> np.ndarray:
    u = rng.power(4.0, size)  # publication volume grows over time
    return (MIN_YEAR + u * (MAX_YEAR - MIN_YEAR)).astype(int)


def _zipf_choice(rng: np.random.Generator, n_items: int, size: int, skew: float = 1.1):
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(n_items, size=size, p=weights)


def _load_publications(db: Database, n_pubs: int, n_conf: int, n_jour: int) -> None:
    rows = []
    for i in range(1, n_pubs + 1):
        if i <= n_conf:
            pub_type = "conference"
        elif i <= n_conf + n_jour:
            pub_type = "journal"
        else:
            pub_type = "other"
        rows.append((i, f"Publication {i}", pub_type))
    db.insert_many("PUBLICATIONS", rows)


def _load_conferences(db: Database, rng: np.random.Generator, n_conf: int, years) -> None:
    venue = _zipf_choice(rng, len(CONFERENCE_NAMES), n_conf, skew=0.9)
    location = rng.integers(0, len(LOCATIONS), size=n_conf)
    rows = [
        (i + 1, CONFERENCE_NAMES[int(venue[i])], int(years[i]), LOCATIONS[int(location[i])])
        for i in range(n_conf)
    ]
    db.insert_many("CONFERENCES", rows)


def _load_journals(
    db: Database, rng: np.random.Generator, n_conf: int, n_jour: int, years
) -> None:
    venue = _zipf_choice(rng, len(JOURNAL_NAMES), n_jour, skew=0.9)
    rows = [
        (
            n_conf + i + 1,
            JOURNAL_NAMES[int(venue[i])],
            int(years[n_conf + i]),
            int(years[n_conf + i]) - MIN_YEAR + 1,
        )
        for i in range(n_jour)
    ]
    db.insert_many("JOURNALS", rows)


def _load_authors(db: Database, n: int) -> None:
    rows = [(i, f"Author {i}") for i in range(1, n + 1)]
    db.insert_many("AUTHORS", rows)


def _load_pub_authors(
    db: Database, rng: np.random.Generator, n_pubs: int, n_authors: int, target: int
) -> None:
    pub_ids = rng.integers(1, n_pubs + 1, size=int(target * 1.25))
    author_ids = _zipf_choice(rng, n_authors, len(pub_ids), skew=1.05) + 1
    seen: set[tuple[int, int]] = set()
    rows = []
    for p, a in zip(pub_ids, author_ids):
        key = (int(p), int(a))
        if key in seen:
            continue
        seen.add(key)
        rows.append(key)
        if len(rows) >= target:
            break
    db.insert_many("PUB_AUTHORS", rows)


def _load_citations(db: Database, rng: np.random.Generator, n_pubs: int, target: int) -> None:
    citing = rng.integers(1, n_pubs + 1, size=int(target * 1.25))
    cited = _zipf_choice(rng, n_pubs, len(citing), skew=1.2) + 1
    seen: set[tuple[int, int]] = set()
    rows = []
    for p1, p2 in zip(citing, cited):
        if p1 == p2:
            continue
        key = (int(p1), int(p2))
        if key in seen:
            continue
        seen.add(key)
        rows.append(key)
        if len(rows) >= target:
            break
    db.insert_many("CITATIONS", rows)


def _build_indexes(db: Database) -> None:
    db.create_index("PUB_AUTHORS", "p_id")
    db.create_index("PUB_AUTHORS", "a_id")
    db.create_index("CONFERENCES", "name")
    db.create_index("CONFERENCES", "year", kind="btree")
    db.create_index("JOURNALS", "name")
    db.create_index("JOURNALS", "year", kind="btree")
    db.create_index("CITATIONS", "p1_id")
    db.create_index("CITATIONS", "p2_id")
    db.create_index("PUBLICATIONS", "pub_type")
