"""Synthetic IMDB-shaped dataset generator (paper Fig. 1 / Table I).

The paper evaluates on a March 2010 IMDB snapshot (Table I: MOVIES 1,573,041
rows, DIRECTORS 191,686, GENRES 997,550, CAST 13,145,520, RATINGS 318,374).
We cannot ship that data, so this generator produces a database with the
same schema, the same *size ratios* and comparable value distributions —
zipf-skewed categorical attributes, recency-skewed years, normal durations —
at a configurable scale.  ``scale=1.0`` reproduces the Table I row counts;
the default used in tests and benchmarks is far smaller.

Determinism: everything is driven by a seeded ``numpy`` generator, so a
given (scale, seed) pair always produces the same database.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.database import Database
from ..engine.types import DataType

#: Row counts at scale=1.0, from Table I (ACTORS/AWARDS are not reported in
#: the visible text; their ratios are chosen to match the schema's role:
#: roughly one distinct actor per 8 cast entries, awards for ~3% of movies).
TABLE1_SIZES = {
    "MOVIES": 1_573_041,
    "DIRECTORS": 191_686,
    "GENRES": 997_550,
    "CAST": 13_145_520,
    "RATINGS": 318_374,
    "ACTORS": 1_643_190,
    "AWARDS": 47_191,
}

GENRE_NAMES = (
    "Drama", "Comedy", "Documentary", "Action", "Romance", "Thriller",
    "Horror", "Crime", "Adventure", "Family", "Animation", "Sci-Fi",
    "Fantasy", "Mystery", "Biography", "Music", "War", "History",
    "Western", "Sport",
)

ROLE_NAMES = ("lead", "supporting", "cameo", "voice", "extra")

AWARD_NAMES = (
    "Academy Award", "Golden Globe", "BAFTA", "Palme d'Or", "Golden Lion",
    "Golden Bear", "Screen Actors Guild", "Critics Choice",
)

MIN_YEAR = 1920
MAX_YEAR = 2011


@dataclass(frozen=True)
class ImdbConfig:
    """Generation parameters for the synthetic IMDB database."""

    scale: float = 0.001
    seed: int = 42
    build_indexes: bool = True
    analyze: bool = True

    def size(self, table: str) -> int:
        return max(2, int(TABLE1_SIZES[table] * self.scale))


def generate_imdb(config: ImdbConfig | None = None, **overrides) -> Database:
    """Build and load a synthetic IMDB database.

    Keyword overrides are applied on top of the default config, e.g.
    ``generate_imdb(scale=0.01, seed=7)``.
    """
    if config is None:
        config = ImdbConfig(**overrides)
    rng = np.random.default_rng(config.seed)
    db = Database()
    _create_schema(db)

    n_movies = config.size("MOVIES")
    n_directors = config.size("DIRECTORS")
    n_actors = config.size("ACTORS")

    _load_directors(db, rng, n_directors)
    _load_movies(db, rng, n_movies, n_directors)
    _load_genres(db, rng, n_movies, config.size("GENRES"))
    _load_actors(db, rng, n_actors)
    _load_cast(db, rng, n_movies, n_actors, config.size("CAST"))
    _load_ratings(db, rng, n_movies, config.size("RATINGS"))
    _load_awards(db, rng, n_movies, config.size("AWARDS"))

    if config.build_indexes:
        _build_indexes(db)
    if config.analyze:
        db.analyze()
    return db


def _create_schema(db: Database) -> None:
    """The movie schema of the paper's Fig. 1."""
    db.create_table(
        "MOVIES",
        [
            ("m_id", DataType.INT),
            ("title", DataType.TEXT),
            ("year", DataType.INT),
            ("duration", DataType.INT),
            ("d_id", DataType.INT),
        ],
        primary_key=["m_id"],
    )
    db.create_table(
        "DIRECTORS",
        [("d_id", DataType.INT), ("director", DataType.TEXT)],
        primary_key=["d_id"],
    )
    db.create_table(
        "GENRES",
        [("m_id", DataType.INT), ("genre", DataType.TEXT)],
        primary_key=["m_id", "genre"],
    )
    db.create_table(
        "ACTORS",
        [("a_id", DataType.INT), ("actor", DataType.TEXT)],
        primary_key=["a_id"],
    )
    db.create_table(
        "CAST",
        [("m_id", DataType.INT), ("a_id", DataType.INT), ("role", DataType.TEXT)],
        primary_key=["m_id", "a_id"],
    )
    db.create_table(
        "RATINGS",
        [("m_id", DataType.INT), ("rating", DataType.FLOAT), ("votes", DataType.INT)],
        primary_key=["m_id"],
    )
    db.create_table(
        "AWARDS",
        [("m_id", DataType.INT), ("award", DataType.TEXT), ("year", DataType.INT)],
        primary_key=["m_id", "award"],
    )


def _zipf_choice(rng: np.random.Generator, n_items: int, size: int, skew: float = 1.1):
    """Zipf-skewed indexes in [0, n_items) (vectorized, truncated)."""
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(n_items, size=size, p=weights)


def _years(rng: np.random.Generator, size: int) -> np.ndarray:
    """Production years skewed toward the present (as in the real IMDB)."""
    u = rng.power(3.0, size)  # density rises toward 1
    return (MIN_YEAR + u * (MAX_YEAR - MIN_YEAR)).astype(int)


def _load_directors(db: Database, rng: np.random.Generator, n: int) -> None:
    rows = [(i, f"Director {i}") for i in range(1, n + 1)]
    db.insert_many("DIRECTORS", rows)


def _load_movies(db: Database, rng: np.random.Generator, n: int, n_directors: int) -> None:
    years = _years(rng, n)
    durations = np.clip(rng.normal(105, 25, n), 40, 300).astype(int)
    directors = _zipf_choice(rng, n_directors, n) + 1
    rows = [
        (i + 1, f"Movie {i + 1}", int(years[i]), int(durations[i]), int(directors[i]))
        for i in range(n)
    ]
    db.insert_many("MOVIES", rows)


def _load_genres(db: Database, rng: np.random.Generator, n_movies: int, target: int) -> None:
    genre_ids = _zipf_choice(rng, len(GENRE_NAMES), int(target * 1.25), skew=1.0)
    movie_ids = rng.integers(1, n_movies + 1, size=len(genre_ids))
    seen: set[tuple[int, int]] = set()
    rows = []
    for m, g in zip(movie_ids, genre_ids):
        key = (int(m), int(g))
        if key in seen:
            continue
        seen.add(key)
        rows.append((int(m), GENRE_NAMES[int(g)]))
        if len(rows) >= target:
            break
    db.insert_many("GENRES", rows)


def _load_actors(db: Database, rng: np.random.Generator, n: int) -> None:
    rows = [(i, f"Actor {i}") for i in range(1, n + 1)]
    db.insert_many("ACTORS", rows)


def _load_cast(
    db: Database, rng: np.random.Generator, n_movies: int, n_actors: int, target: int
) -> None:
    movie_ids = rng.integers(1, n_movies + 1, size=int(target * 1.25))
    actor_ids = _zipf_choice(rng, n_actors, len(movie_ids), skew=1.05) + 1
    roles = rng.integers(0, len(ROLE_NAMES), size=len(movie_ids))
    seen: set[tuple[int, int]] = set()
    rows = []
    for m, a, r in zip(movie_ids, actor_ids, roles):
        key = (int(m), int(a))
        if key in seen:
            continue
        seen.add(key)
        rows.append((int(m), int(a), ROLE_NAMES[int(r)]))
        if len(rows) >= target:
            break
    db.insert_many("CAST", rows)


def _load_ratings(db: Database, rng: np.random.Generator, n_movies: int, target: int) -> None:
    target = min(target, n_movies)
    movie_ids = rng.choice(n_movies, size=target, replace=False) + 1
    ratings = np.clip(rng.normal(6.4, 1.6, target), 1.0, 10.0).round(1)
    votes = np.minimum(rng.zipf(1.6, target) * 10, 2_000_000)
    rows = [
        (int(m), float(r), int(v)) for m, r, v in zip(movie_ids, ratings, votes)
    ]
    db.insert_many("RATINGS", rows)


def _load_awards(db: Database, rng: np.random.Generator, n_movies: int, target: int) -> None:
    movie_ids = rng.integers(1, n_movies + 1, size=int(target * 1.25))
    awards = rng.integers(0, len(AWARD_NAMES), size=len(movie_ids))
    seen: set[tuple[int, int]] = set()
    rows = []
    for m, a in zip(movie_ids, awards):
        key = (int(m), int(a))
        if key in seen:
            continue
        seen.add(key)
        rows.append((int(m), AWARD_NAMES[int(a)], int(MIN_YEAR + (m % (MAX_YEAR - MIN_YEAR)))))
        if len(rows) >= target:
            break
    db.insert_many("AWARDS", rows)


def _build_indexes(db: Database) -> None:
    """Access paths a production deployment would have on this schema."""
    db.create_index("MOVIES", "d_id")
    db.create_index("MOVIES", "year", kind="btree")
    db.create_index("GENRES", "m_id")
    db.create_index("GENRES", "genre")
    db.create_index("CAST", "m_id")
    db.create_index("CAST", "a_id")
    db.create_index("RATINGS", "m_id")
    db.create_index("RATINGS", "votes", kind="btree")
    db.create_index("AWARDS", "m_id")
