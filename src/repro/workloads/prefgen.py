"""Preference generation with controlled selectivity.

The paper's sensitivity experiments vary one parameter at a time — number of
preferences (|λ|) or the selectivity of their conditional parts.  These
helpers manufacture preferences whose conditional parts match a requested
fraction of a relation's tuples, by inspecting the actual data.
"""

from __future__ import annotations

from collections import Counter

from ..core.preference import Preference
from ..core.scoring import ConstantScore, ScoringFunction
from ..engine.database import Database
from ..engine.expressions import Attr, Comparison, InList
from ..errors import PreferenceError


def equality_preference(
    db: Database,
    relation: str,
    attr: str,
    selectivity: float,
    score: float | ScoringFunction = 0.8,
    confidence: float = 0.9,
    name: str | None = None,
) -> Preference:
    """A preference whose conditional part matches ≈ *selectivity* of tuples.

    Builds an ``attr IN (v1, ..., vk)`` condition by greedily accumulating
    the most frequent values of *attr* until the requested fraction is
    reached (single-value conditions degenerate to equality).
    """
    values = _pick_values(db, relation, attr, selectivity)
    if len(values) == 1:
        condition = Comparison("=", Attr(attr), _literal(values[0]))
    else:
        condition = InList(Attr(attr), values)
    return Preference(
        name or f"sel({relation}.{attr}≈{selectivity:g})",
        relation,
        condition,
        score,
        confidence,
    )


def range_preference(
    db: Database,
    relation: str,
    attr: str,
    selectivity: float,
    score: float | ScoringFunction = 0.8,
    confidence: float = 0.9,
    name: str | None = None,
) -> Preference:
    """A ``attr >= q`` preference matching the top *selectivity* fraction."""
    table = db.table(relation)
    position = table.schema.index_of(attr)
    values = sorted(
        (row[position] for row in table.rows if row[position] is not None),
        reverse=True,
    )
    if not values:
        raise PreferenceError(f"{relation}.{attr} has no non-NULL values")
    cut = min(len(values) - 1, max(0, int(len(values) * selectivity) - 1))
    threshold = values[cut]
    return Preference(
        name or f"range({relation}.{attr}≈{selectivity:g})",
        relation,
        Comparison(">=", Attr(attr), _literal(threshold)),
        score,
        confidence,
    )


def measured_selectivity(db: Database, preference: Preference) -> float:
    """The *actual* fraction of the relation's tuples the preference affects.

    Only defined for single-relation preferences; used to verify that the
    generated conditional parts hit their targets.
    """
    if len(preference.relations) != 1:
        raise PreferenceError("measured_selectivity needs a single-relation preference")
    table = db.table(preference.relations[0])
    if not len(table):
        return 0.0
    check = preference.qualify(db.catalog).condition.compile(table.schema)
    matched = sum(1 for row in table.rows if check(row))
    return matched / len(table)


def preference_pool(
    db: Database,
    count: int,
    selectivity: float = 0.05,
    confidence: float = 0.8,
) -> list[Preference]:
    """*count* distinct preferences over the IMDB schema for the |λ| sweeps.

    Preferences cycle over (relation, attribute) pairs and successive
    frequency slices of each attribute, so no two preferences in the pool
    share a conditional part.
    """
    sources = [
        ("GENRES", "genre"),
        ("MOVIES", "year"),
        ("DIRECTORS", "d_id"),
        ("MOVIES", "duration"),
        ("RATINGS", "votes"),
        ("MOVIES", "d_id"),
    ]
    pool: list[Preference] = []
    offsets: Counter = Counter()
    index = 0
    while len(pool) < count:
        relation, attr = sources[index % len(sources)]
        slice_number = offsets[(relation, attr)]
        offsets[(relation, attr)] += 1
        values = _pick_values(db, relation, attr, selectivity, skip_slices=slice_number)
        condition = (
            Comparison("=", Attr(attr), _literal(values[0]))
            if len(values) == 1
            else InList(Attr(attr), values)
        )
        pool.append(
            Preference(
                f"pool#{len(pool) + 1}({relation}.{attr})",
                relation,
                condition,
                ConstantScore(min(1.0, 0.5 + 0.04 * len(pool))),
                confidence,
            )
        )
        index += 1
    return pool


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


def _pick_values(
    db: Database, relation: str, attr: str, selectivity: float, skip_slices: int = 0
) -> list:
    """Most frequent values of *attr* covering ≈ *selectivity* of the rows.

    ``skip_slices`` slides the selection window down the frequency ranking so
    repeated calls yield disjoint conditions of similar selectivity.
    """
    if not 0.0 < selectivity <= 1.0:
        raise PreferenceError(f"selectivity must be in (0, 1], got {selectivity}")
    table = db.table(relation)
    if not len(table):
        raise PreferenceError(f"relation {relation} is empty")
    position = table.schema.index_of(attr)
    counts = Counter(
        row[position] for row in table.rows if row[position] is not None
    )
    ranked = counts.most_common()
    total = len(table)
    start = 0
    for _ in range(skip_slices):
        start = _slice_end(ranked, start, selectivity, total)
        if start >= len(ranked):
            start = 0  # wrap around: better overlap than failure
            break
    target = selectivity * total
    if start < len(ranked) and ranked[start][1] > 1.5 * target:
        # The head value overshoots the target badly (skewed categorical
        # data): the single value with the closest frequency is a better fit
        # than a greedy prefix.
        best = min(ranked[start:], key=lambda vc: abs(vc[1] - target))
        return [best[0]]
    end = _slice_end(ranked, start, selectivity, total)
    values = [value for value, _ in ranked[start:end]]
    return values or [ranked[0][0]]


def _slice_end(ranked, start: int, selectivity: float, total: int) -> int:
    covered = 0
    end = start
    target = selectivity * total
    while end < len(ranked) and covered < target:
        covered += ranked[end][1]
        end += 1
    return max(end, start + 1)


def _literal(value):
    from ..engine.expressions import Literal

    return Literal(value)
