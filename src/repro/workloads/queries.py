"""The experiment workload: queries IMDB-1..3 and DBLP-1..3 (§VII, Table II).

The paper's experiments run six preferential queries over the two data sets,
characterized by: result size ``N``, number of joined relations ``|R|``,
number of preferences ``|λ|`` and the split ``P/NP`` of relations with vs
without preferences.  The exact SQL is not printed in the paper, so these
queries are reconstructions that hit the same parameter points and exercise
every preference flavour of Section III (atomic, generic, multi-attribute,
multi-relational, membership).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.preference import Preference
from ..core.scoring import around_score, rating_score, recency_score, weighted
from ..engine.database import Database
from ..engine.expressions import TRUE, InList, Attr, cmp, eq
from ..query.session import Session


@dataclass(frozen=True)
class WorkloadQuery:
    """One experiment query: SQL text plus the preferences it references."""

    name: str
    dataset: str  # 'imdb' | 'dblp'
    sql: str
    preferences: tuple[Preference, ...]
    description: str = ""

    @property
    def num_preferences(self) -> int:
        return len(self.preferences)

    def session(self, db: Database, **session_kwargs) -> Session:
        """A session over *db* with this query's preferences registered."""
        session = Session(db, **session_kwargs)
        session.register_all(self.preferences)
        return session


# ---------------------------------------------------------------------------
# IMDB queries
# ---------------------------------------------------------------------------


def imdb_1(k: int = 10, year: int = 2005) -> WorkloadQuery:
    """IMDB-1 — the paper's Q1 (Example 9): top-k recent movies, 3 preferences.

    |R| = 5 (MOVIES, GENRES, DIRECTORS, CAST, ACTORS), |λ| = 3, P/NP = 3/2.
    """
    preferences = (
        Preference("p1", "GENRES", eq("genre", "Comedy"), 0.8, 0.9),
        Preference("p2", "DIRECTORS", eq("d_id", 1), 0.9, 0.8),
        Preference("p3", "ACTORS", eq("a_id", 1), 1.0, 1.0),
    )
    sql = f"""
        SELECT title, director FROM MOVIES
          NATURAL JOIN GENRES
          NATURAL JOIN DIRECTORS
          NATURAL JOIN CAST
          NATURAL JOIN ACTORS
        WHERE year >= {year}
        PREFERRING p1, p2, p3
        TOP {k} BY score
    """
    return WorkloadQuery(
        "IMDB-1", "imdb", sql, preferences, "top-k with per-relation preferences"
    )


def imdb_2(k: int = 10) -> WorkloadQuery:
    """IMDB-2 — rating/recency flavour (preferences p4, p5 of Section III).

    |R| = 2 (MOVIES, RATINGS), |λ| = 2, P/NP = 2/0.
    """
    preferences = (
        Preference(
            "p4", "RATINGS", cmp("votes", ">", 50), rating_score("rating"), 0.8
        ),
        Preference(
            "p5",
            "MOVIES",
            TRUE,
            weighted([(0.5, recency_score("year", 2011)), (0.5, around_score("duration", 120))]),
            0.9,
        ),
    )
    sql = f"""
        SELECT title, rating FROM MOVIES
          NATURAL JOIN RATINGS
        PREFERRING p4, p5
        TOP {k} BY score
    """
    return WorkloadQuery(
        "IMDB-2", "imdb", sql, preferences, "multi-attribute scoring functions"
    )


def imdb_3(tau: float = 0.8, year: int = 1990) -> WorkloadQuery:
    """IMDB-3 — multi-relational + membership preferences, confidence filter.

    |R| = 3 (MOVIES, GENRES, AWARDS), |λ| = 4, P/NP = 3/0; the result keeps
    only tuples with accumulated confidence ≥ τ (the paper's Q2 flavour).
    """
    preferences = (
        Preference(
            "p6",
            ("MOVIES", "GENRES"),
            eq("genre", "Action"),
            recency_score("year", 2011),
            0.8,
        ),
        Preference.membership(("MOVIES", "AWARDS"), score=1.0, confidence=0.9, name="p7"),
        Preference("p8", "GENRES", eq("genre", "Comedy"), 0.8, 0.9),
        Preference("p9", "GENRES", eq("genre", "Horror"), 0.0, 0.7),
    )
    sql = f"""
        SELECT title, genre, award FROM MOVIES
          NATURAL JOIN GENRES
          JOIN AWARDS ON MOVIES.m_id = AWARDS.m_id
        WHERE MOVIES.year >= {year} AND conf >= {tau}
        PREFERRING p6, p7, p8, p9
        ORDER BY score
    """
    return WorkloadQuery(
        "IMDB-3", "imdb", sql, preferences, "membership preference + confidence filter"
    )


# ---------------------------------------------------------------------------
# DBLP queries
# ---------------------------------------------------------------------------


def dblp_1(k: int = 10, year: int = 2000) -> WorkloadQuery:
    """DBLP-1 — top-k recent conference papers by preferred venues/authors.

    |R| = 4 (PUBLICATIONS, CONFERENCES, PUB_AUTHORS, AUTHORS), |λ| = 3,
    P/NP = 2/2.
    """
    preferences = (
        Preference(
            "d1",
            "CONFERENCES",
            InList(Attr("name"), ["SIGMOD", "VLDB", "ICDE"]),
            0.9,
            0.9,
        ),
        Preference(
            "d2", "CONFERENCES", TRUE, recency_score("year", 2011), 0.7
        ),
        Preference("d3", "AUTHORS", eq("a_id", 1), 1.0, 1.0),
    )
    sql = f"""
        SELECT title, CONFERENCES.name FROM PUBLICATIONS
          NATURAL JOIN CONFERENCES
          NATURAL JOIN PUB_AUTHORS
          JOIN AUTHORS ON PUB_AUTHORS.a_id = AUTHORS.a_id
        WHERE year >= {year}
        PREFERRING d1, d2, d3
        TOP {k} BY score
    """
    return WorkloadQuery(
        "DBLP-1", "dblp", sql, preferences, "venue and author preferences"
    )


def dblp_2(k: int = 10) -> WorkloadQuery:
    """DBLP-2 — journal papers, 2 relations, 2 preferences (P/NP = 1/1)."""
    preferences = (
        Preference(
            "d4", "JOURNALS", InList(Attr("name"), ["TKDE", "VLDBJ", "TODS"]), 0.9, 0.8
        ),
        Preference("d5", "JOURNALS", TRUE, recency_score("year", 2011), 0.6),
    )
    sql = f"""
        SELECT title, name, year FROM PUBLICATIONS
          NATURAL JOIN JOURNALS
        PREFERRING d4, d5
        TOP {k} BY score
    """
    return WorkloadQuery("DBLP-2", "dblp", sql, preferences, "journal preferences")


def dblp_3(tau: float = 0.5) -> WorkloadQuery:
    """DBLP-3 — membership preference over the citation graph.

    |R| = 2 (PUBLICATIONS, CITATIONS), |λ| = 2: cited publications are
    preferred (membership) and conference papers get a boost; results with
    any matched preference are kept (σ_{conf>0} as in the paper's Q3).
    """
    preferences = (
        Preference.membership(
            ("PUBLICATIONS", "CITATIONS"), score=1.0, confidence=0.9, name="d6"
        ),
        Preference(
            "d7", "PUBLICATIONS", eq("pub_type", "conference"), 0.7, 0.6
        ),
    )
    sql = f"""
        SELECT title, pub_type FROM PUBLICATIONS
          JOIN CITATIONS ON PUBLICATIONS.p_id = CITATIONS.p2_id
        WHERE conf >= {tau}
        PREFERRING d6, d7
        ORDER BY score
    """
    return WorkloadQuery(
        "DBLP-3", "dblp", sql, preferences, "citation membership preference"
    )


def all_queries() -> list[WorkloadQuery]:
    """The six-query workload of Table II."""
    return [imdb_1(), imdb_2(), imdb_3(), dblp_1(), dblp_2(), dblp_3()]


def imdb_queries() -> list[WorkloadQuery]:
    return [imdb_1(), imdb_2(), imdb_3()]


def dblp_queries() -> list[WorkloadQuery]:
    return [dblp_1(), dblp_2(), dblp_3()]
