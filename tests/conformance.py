"""Reusable differential-conformance harness.

Every optimization this repository layers onto the reference evaluator —
fused batch scoring, the columnar executor, partition-parallel execution —
carries the same proof obligation: run the query both ways and show the
results are identical.  This module is that obligation, written once:

* :func:`exact_multiset` — the strict comparison: a ``Counter`` of raw
  ``(row, score, conf)`` triples, no rounding.  Use it when the two modes
  are supposed to perform bit-identical float operations (fused vs
  sequential folds, columnar vs reference).
* :func:`canonical_multiset` — the cross-strategy comparison: scores and
  confidences rounded to ``precision`` digits (the same canonicalization
  :meth:`PRelation.as_multiset` applies), for modes that combine pairs in a
  different but law-equivalent order.
* :func:`assert_identical` — assert baseline == candidate, with a
  row-level diff report on failure instead of two opaque Counters.
* :func:`run_both_modes` — run one callable twice with different keyword
  sets and assert the results agree.

Callables may return a :class:`~repro.pexec.engine.QueryResult` or a bare
:class:`~repro.core.prelation.PRelation`; :func:`result_relation` unwraps
either.
"""

from __future__ import annotations

from collections import Counter

from repro.core.prelation import PRelation


def result_relation(obj) -> PRelation:
    """The p-relation inside *obj*: a QueryResult or a PRelation itself."""
    relation = getattr(obj, "relation", obj)
    if not isinstance(relation, PRelation):
        raise TypeError(f"cannot extract a PRelation from {obj!r}")
    return relation


def exact_multiset(obj) -> Counter:
    """Multiset of raw ``(row, score, conf)`` triples — no rounding."""
    relation = result_relation(obj)
    return Counter(
        (row, pair.score, pair.conf)
        for row, pair in zip(relation.rows, relation.pairs)
    )


def canonical_multiset(obj, precision: int = 9) -> Counter:
    """Multiset with scores/confidences rounded to *precision* digits."""
    relation = result_relation(obj)
    return Counter(
        (
            row,
            None if pair.score is None else round(pair.score, precision),
            round(pair.conf, precision),
        )
        for row, pair in zip(relation.rows, relation.pairs)
    )


def diff_report(
    baseline: Counter,
    candidate: Counter,
    labels: tuple[str, str] = ("baseline", "candidate"),
    limit: int = 8,
) -> str:
    """Human-readable difference between two result multisets.

    Lists triples present in one side but not the other (with
    multiplicities), truncated to *limit* entries per side.
    """
    base_label, cand_label = labels
    missing = baseline - candidate  # in baseline, absent from candidate
    extra = candidate - baseline

    def _render(counter: Counter) -> list[str]:
        lines = []
        for triple, count in sorted(
            counter.items(), key=lambda item: repr(item[0])
        )[:limit]:
            row, score, conf = triple
            suffix = f" ×{count}" if count > 1 else ""
            lines.append(f"    {row!r} ⟨{score}, {conf}⟩{suffix}")
        hidden = len(counter) - min(len(counter), limit)
        if hidden > 0:
            lines.append(f"    ... and {hidden} more")
        return lines

    parts = [
        f"{base_label}: {sum(baseline.values())} rows, "
        f"{cand_label}: {sum(candidate.values())} rows"
    ]
    if missing:
        parts.append(f"  only in {base_label} ({sum(missing.values())}):")
        parts.extend(_render(missing))
    if extra:
        parts.append(f"  only in {cand_label} ({sum(extra.values())}):")
        parts.extend(_render(extra))
    if not missing and not extra:
        parts.append("  (multisets agree — diff requested on equal results)")
    return "\n".join(parts)


def assert_identical(
    baseline,
    candidate,
    *,
    exact: bool = True,
    precision: int = 9,
    context: str = "",
    labels: tuple[str, str] = ("baseline", "candidate"),
) -> None:
    """Assert two results carry the same multiset of scored rows.

    *exact* compares raw floats (byte identity); ``exact=False`` rounds to
    *precision* first (cross-strategy conformance).  On failure the
    assertion message carries a row-level diff, not two opaque Counters.
    """
    if exact:
        base = exact_multiset(baseline)
        cand = exact_multiset(candidate)
    else:
        base = canonical_multiset(baseline, precision)
        cand = canonical_multiset(candidate, precision)
    if base != cand:
        kind = "exact" if exact else f"canonical(precision={precision})"
        where = f" on {context}" if context else ""
        raise AssertionError(
            f"{labels[1]} diverged from {labels[0]} ({kind}){where}\n"
            + diff_report(base, cand, labels)
        )


def run_both_modes(
    run,
    base_kwargs: dict,
    cand_kwargs: dict,
    *,
    exact: bool = True,
    precision: int = 9,
    context: str = "",
    labels: tuple[str, str] | None = None,
):
    """Run ``run(**kwargs)`` in two modes and assert identical results.

    Returns ``(baseline, candidate)`` so callers can make further
    assertions (e.g. on ``stats.mode``).  *labels* defaults to a rendering
    of the two keyword sets.
    """
    if labels is None:
        labels = (_label(base_kwargs), _label(cand_kwargs))
    baseline = run(**base_kwargs)
    candidate = run(**cand_kwargs)
    assert_identical(
        baseline,
        candidate,
        exact=exact,
        precision=precision,
        context=context,
        labels=labels,
    )
    return baseline, candidate


def _label(kwargs: dict) -> str:
    if not kwargs:
        return "default"
    return ",".join(f"{key}={value}" for key, value in sorted(kwargs.items()))
