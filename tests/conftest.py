"""Shared fixtures: the paper's running movie example and small synthetic DBs."""

from __future__ import annotations

import pytest

from repro import Database, DataType, Preference, cmp, eq, recency_score
from repro.workloads import generate_dblp, generate_imdb

MOVIES_ROWS = [
    # (m_id, title, year, duration, d_id) — the paper's Fig. 3(a) movies.
    (1, "Gran Torino", 2008, 116, 1),
    (2, "Wall Street", 2010, 133, 3),
    (3, "Million Dollar Baby", 2004, 132, 1),
    (4, "Match Point", 2005, 124, 2),
    (5, "Scoop", 2006, 96, 2),
]

DIRECTORS_ROWS = [
    (1, "C. Eastwood"),
    (2, "W. Allen"),
    (3, "O. Stone"),
]

GENRES_ROWS = [
    (1, "Drama"),
    (2, "Drama"),
    (3, "Drama"),
    (4, "Comedy"),
    (4, "Drama"),
    (5, "Comedy"),
]

RATINGS_ROWS = [
    # (m_id, rating, votes)
    (1, 8.1, 120000),
    (2, 6.2, 40),
    (3, 8.1, 90000),
    (4, 7.6, 55000),
    (5, 6.7, 30),
]

AWARDS_ROWS = [
    (3, "Academy Award", 2005),
    (1, "Golden Globe", 2009),
]

ACTORS_ROWS = [
    (1, "S. Johansson"),
    (2, "C. Eastwood"),
    (3, "M. Caine"),
]

CAST_ROWS = [
    (4, 1, "lead"),
    (5, 1, "lead"),
    (1, 2, "lead"),
    (3, 2, "lead"),
    (5, 3, "supporting"),
]


def build_movie_db() -> Database:
    """The small movie database used throughout the paper's examples."""
    db = Database()
    db.create_table(
        "MOVIES",
        [
            ("m_id", DataType.INT),
            ("title", DataType.TEXT),
            ("year", DataType.INT),
            ("duration", DataType.INT),
            ("d_id", DataType.INT),
        ],
        primary_key=["m_id"],
    )
    db.create_table(
        "DIRECTORS",
        [("d_id", DataType.INT), ("director", DataType.TEXT)],
        primary_key=["d_id"],
    )
    db.create_table(
        "GENRES",
        [("m_id", DataType.INT), ("genre", DataType.TEXT)],
        primary_key=["m_id", "genre"],
    )
    db.create_table(
        "RATINGS",
        [("m_id", DataType.INT), ("rating", DataType.FLOAT), ("votes", DataType.INT)],
        primary_key=["m_id"],
    )
    db.create_table(
        "AWARDS",
        [("m_id", DataType.INT), ("award", DataType.TEXT), ("year", DataType.INT)],
        primary_key=["m_id", "award"],
    )
    db.create_table(
        "ACTORS",
        [("a_id", DataType.INT), ("actor", DataType.TEXT)],
        primary_key=["a_id"],
    )
    db.create_table(
        "CAST",
        [("m_id", DataType.INT), ("a_id", DataType.INT), ("role", DataType.TEXT)],
        primary_key=["m_id", "a_id"],
    )
    db.insert_many("MOVIES", MOVIES_ROWS)
    db.insert_many("DIRECTORS", DIRECTORS_ROWS)
    db.insert_many("GENRES", GENRES_ROWS)
    db.insert_many("RATINGS", RATINGS_ROWS)
    db.insert_many("AWARDS", AWARDS_ROWS)
    db.insert_many("ACTORS", ACTORS_ROWS)
    db.insert_many("CAST", CAST_ROWS)
    db.analyze()
    return db


def assert_plans_equivalent(db: Database, plan_a, plan_b) -> None:
    """Both plans produce the same p-relation (column order normalized)."""
    from repro.pexec.conform import conform
    from repro.pexec.reference import evaluate_reference

    a = evaluate_reference(plan_a, db.catalog)
    b = evaluate_reference(plan_b, db.catalog)
    b = conform(b, plan_a.schema(db.catalog))
    assert a.same_contents(b), "plans are not equivalent"


@pytest.fixture
def movie_db() -> Database:
    return build_movie_db()


@pytest.fixture
def movie_db_indexed() -> Database:
    db = build_movie_db()
    db.create_index("MOVIES", "d_id")
    db.create_index("MOVIES", "year", kind="btree")
    db.create_index("GENRES", "genre")
    db.create_index("GENRES", "m_id")
    return db


@pytest.fixture
def example_preferences() -> dict[str, Preference]:
    """The paper's Fig. 5 preference set (Alice & Bob)."""
    return {
        "p1": Preference("p1", "GENRES", eq("genre", "Comedy"), 0.8, 0.9),
        "p2": Preference("p2", "DIRECTORS", eq("d_id", 1), 0.9, 0.8),
        "p3": Preference("p3", "ACTORS", eq("a_id", 1), 1.0, 1.0),
        "p4": Preference(
            "p4",
            ("MOVIES", "DIRECTORS"),
            eq("director", "W. Allen"),
            recency_score("year", 2011),
            0.9,
        ),
        "p5": Preference("p5", "MOVIES", eq("m_id", 1), 1.0, 1.0),
    }


@pytest.fixture(scope="session")
def imdb_tiny() -> Database:
    """Synthetic IMDB at 1/2000 scale — shared across strategy tests."""
    return generate_imdb(scale=0.0005, seed=11)


@pytest.fixture(scope="session")
def dblp_tiny() -> Database:
    return generate_dblp(scale=0.0005, seed=13)


@pytest.fixture(autouse=True)
def sanitizer_clean():
    """Fail any test that leaves new concurrency-sanitizer findings behind.

    A no-op unless ``REPRO_SANITIZE=1`` installed a process-global sanitizer
    at import time (the CI sanitize job runs the stress and chaos suites
    this way).  Tests that deliberately provoke findings install their own
    scoped sanitizer via ``use_sanitizer()``, which shelves the global one,
    so they stay unaffected.
    """
    from repro.analysis_static.sanitizer import current_sanitizer

    sanitizer = current_sanitizer()
    if not sanitizer.enabled:
        yield
        return
    before = len(sanitizer.findings)
    yield
    fresh = sanitizer.findings[before:]
    assert not fresh, "concurrency sanitizer findings: " + "; ".join(
        str(diagnostic) for diagnostic in fresh
    )
