"""Unit + property tests for aggregate functions (Definition 3 laws)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    F_MAX,
    F_MIN,
    F_S,
    check_associative,
    check_commutative,
    check_identity,
    check_laws,
    get_aggregate,
)
from repro.core.scorepair import IDENTITY, ScorePair
from repro.errors import PreferenceError

ALL = (F_S, F_MAX, F_MIN)


def pairs_strategy():
    """Arbitrary pairs, including non-canonical bottoms ⟨⊥, c>0⟩.

    A matched preference whose scoring function abstains yields ⟨⊥, c⟩ —
    evidence without a score.  The Definition 3 laws (identity included)
    must hold for those pairs too; bottoms now combine into one bottom
    instead of collapsing to ⟨⊥, 0⟩ and dropping their confidence.
    """
    known = st.builds(
        ScorePair,
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    unknown = st.builds(
        ScorePair,
        st.none(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    return st.one_of(st.just(IDENTITY), known, unknown)


class TestWeightedSum:
    def test_example4_weighted_combination(self):
        # Two known pairs: score is the confidence-weighted combination,
        # confidence is the sum (can exceed 1, as the paper notes).
        out = F_S.combine(ScorePair(0.8, 1.0), ScorePair(0.3, 1.0))
        assert out.score == pytest.approx(0.55)
        assert out.conf == pytest.approx(2.0)

    def test_weights_matter(self):
        out = F_S.combine(ScorePair(1.0, 0.9), ScorePair(0.0, 0.1))
        assert out.score == pytest.approx(0.9)
        assert out.conf == pytest.approx(1.0)

    def test_bottom_is_ignored(self):
        known = ScorePair(0.7, 0.5)
        assert F_S.combine(known, ScorePair(None, 0.9)) == known
        assert F_S.combine(ScorePair(None, 0.9), known) == known

    def test_all_bottom_sums_confidence(self):
        # Evidence without scores accumulates; dropping it would break the
        # identity law for ⟨⊥, c>0⟩ inputs.
        out = F_S.combine(ScorePair(None, 0.5), ScorePair(None, 0.9))
        assert out.is_bottom
        assert out.conf == pytest.approx(1.4)

    def test_zero_confidence_pairs(self):
        # Zero-confidence knowns are dominated by positive-confidence pairs.
        strong = ScorePair(0.4, 0.8)
        assert F_S.combine(ScorePair(0.9, 0.0), strong) == strong
        # Among themselves, the larger score survives (associative tie rule).
        out = F_S.combine(ScorePair(0.9, 0.0), ScorePair(0.5, 0.0))
        assert out == ScorePair(0.9, 0.0)

    def test_combine_many(self):
        out = F_S.combine_many(
            [ScorePair(1.0, 0.5), ScorePair(0.0, 0.5), ScorePair(None, 0.9)]
        )
        assert out.score == pytest.approx(0.5)
        assert out.conf == pytest.approx(1.0)

    def test_combine_many_empty_is_identity(self):
        assert F_S.combine_many([]) == IDENTITY


class TestMaxConfidence:
    def test_example5_picks_max_confidence(self):
        a, b = ScorePair(0.2, 0.9), ScorePair(0.9, 0.3)
        assert F_MAX.combine(a, b) == a

    def test_tie_breaks_on_score(self):
        a, b = ScorePair(0.2, 0.5), ScorePair(0.9, 0.5)
        assert F_MAX.combine(a, b) == b
        assert F_MAX.combine(b, a) == b

    def test_bottom_loses(self):
        known = ScorePair(0.1, 0.1)
        assert F_MAX.combine(ScorePair(None, 0.9), known) == known


class TestMinConfidence:
    def test_picks_min_confidence(self):
        a, b = ScorePair(0.2, 0.9), ScorePair(0.9, 0.3)
        assert F_MIN.combine(a, b) == b

    def test_bottom_still_loses(self):
        known = ScorePair(0.1, 0.9)
        assert F_MIN.combine(ScorePair(None, 0.0), known) == known


class TestBottomHandling:
    """⟨⊥, c⟩ keeps its evidence among bottoms, loses it next to a score."""

    def test_two_bottoms_keep_their_confidence(self):
        assert F_S.combine(ScorePair(None, 0.5), ScorePair(None, 0.9)) == ScorePair(
            None, 1.4
        )
        assert F_MAX.combine(ScorePair(None, 0.5), ScorePair(None, 0.9)) == ScorePair(
            None, 0.9
        )

    def test_identity_law_holds_for_evidence_bearing_bottoms(self):
        # The regression the law-checked registry guards against: the old
        # F_S mapped F(⟨⊥,0⟩, ⟨⊥,c⟩) to ⟨⊥,0⟩, violating Definition 3.
        for fn in ALL:
            assert check_identity(fn, ScorePair(None, 0.7))

    def test_bottom_confidence_never_leaks_into_known(self):
        # Folding ⊥-confidence into a known pair would break associativity
        # of the weighted mean, so it is dropped instead.
        out = F_S.combine(ScorePair(None, 0.9), ScorePair(0.5, 0.2))
        assert out == ScorePair(0.5, 0.2)


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_aggregate("F_S") is F_S
        assert get_aggregate("max") is F_MAX
        assert get_aggregate("f_min") is F_MIN

    def test_unknown_rejected(self):
        with pytest.raises(PreferenceError):
            get_aggregate("median")

    def test_equality_by_type(self):
        from repro.core.aggregates import WeightedSum

        assert WeightedSum() == F_S
        assert hash(WeightedSum()) == hash(F_S)


class TestLawsExhaustive:
    """check_laws over a hand-picked pair pool, for every built-in F."""

    POOL = [
        IDENTITY,
        ScorePair(0.0, 0.0),
        ScorePair(1.0, 0.0),
        ScorePair(0.0, 1.0),
        ScorePair(1.0, 1.0),
        ScorePair(0.5, 0.25),
        ScorePair(0.25, 0.75),
    ]

    @pytest.mark.parametrize("fn", ALL, ids=lambda f: f.name)
    def test_laws(self, fn):
        assert check_laws(fn, self.POOL)


class TestLawsProperty:
    """Hypothesis: the Definition 3 laws on random pairs."""

    @settings(max_examples=200)
    @given(pairs_strategy())
    def test_identity(self, p):
        for fn in ALL:
            assert check_identity(fn, p)

    @settings(max_examples=200)
    @given(pairs_strategy(), pairs_strategy())
    def test_commutative(self, a, b):
        for fn in ALL:
            assert check_commutative(fn, a, b)

    @settings(max_examples=300)
    @given(pairs_strategy(), pairs_strategy(), pairs_strategy())
    def test_associative(self, a, b, c):
        for fn in ALL:
            assert check_associative(fn, a, b, c)

    @settings(max_examples=100)
    @given(st.lists(pairs_strategy(), max_size=6))
    def test_fold_order_independent(self, items):
        """combine_many is invariant under permutation (needed by Prop 4.3)."""
        import itertools

        for fn in ALL:
            reference = fn.combine_many(items)
            for permutation in itertools.islice(itertools.permutations(items), 6):
                assert fn.combine_many(permutation).approx_equal(reference, 1e-6)
