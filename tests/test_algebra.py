"""Unit tests for the extended relational algebra (Section IV-B)."""

import pytest

from repro.core import algebra
from repro.core.aggregates import F_MAX, F_S
from repro.core.prefer import prefer
from repro.core.preference import Preference
from repro.core.prelation import PRelation
from repro.core.scorepair import IDENTITY, ScorePair
from repro.engine.expressions import TRUE, Attr, Comparison, cmp, eq
from repro.errors import PlanError


@pytest.fixture
def movies(movie_db):
    return PRelation.from_table(movie_db.table("MOVIES"))


@pytest.fixture
def directors(movie_db):
    prel = PRelation.from_table(movie_db.table("DIRECTORS"))
    # Fig. 3(b)-style pairs: Eastwood ⟨0.8,1⟩, Allen ⟨0.9,0.9⟩, Stone default.
    prel.pairs[0] = ScorePair(0.8, 1.0)
    prel.pairs[1] = ScorePair(0.9, 0.9)
    return prel


class TestSelect:
    def test_filters_rows_keeps_pairs(self, directors):
        out = algebra.select(directors, eq("director", "W. Allen"))
        assert len(out) == 1
        assert out.pairs[0] == ScorePair(0.9, 0.9)

    def test_score_condition(self, directors):
        out = algebra.select(directors, cmp("conf", ">=", 0.95))
        assert [r[0] for r in out.rows] == [1]

    def test_score_condition_bottom_fails(self, directors):
        out = algebra.select(directors, cmp("score", ">=", 0.0))
        assert len(out) == 2  # the default-pair tuple (⊥) is excluded


class TestProject:
    def test_keeps_pairs(self, directors):
        out = algebra.project(directors, ["director"])
        assert out.schema.attribute_names == ("DIRECTORS.director",)
        assert out.pairs == directors.pairs

    def test_bag_semantics(self, movie_db):
        genres = PRelation.from_table(movie_db.table("GENRES"))
        out = algebra.project(genres, ["genre"])
        assert len(out) == len(genres)  # duplicates preserved


class TestJoin:
    def test_example7_join_combines_pairs(self, movies, directors):
        """Fig. 3(c): MOVIES ⋈ DIRECTORS combines pairs through F."""
        condition = Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id"))
        out = algebra.join(movies, directors, condition)
        assert len(out) == 5
        by_movie = {row[0]: pair for row, pair in out}
        # Movies have default pairs: the director pair passes through F_S.
        assert by_movie[1] == ScorePair(0.8, 1.0)   # Eastwood
        assert by_movie[4] == ScorePair(0.9, 0.9)   # Allen
        assert by_movie[2] == IDENTITY              # Stone (default)

    def test_join_combines_both_sides(self, movies, directors):
        scored = prefer(
            movies, Preference("p", "MOVIES", TRUE, 0.5, 1.0)
        )
        condition = Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id"))
        out = algebra.join(scored, directors, condition)
        by_movie = {row[0]: pair for row, pair in out}
        # Gran Torino: F_S(⟨0.5,1⟩, ⟨0.8,1⟩) = ⟨0.65, 2⟩.
        assert by_movie[1].score == pytest.approx(0.65)
        assert by_movie[1].conf == pytest.approx(2.0)

    def test_theta_join_residual(self, movies, directors):
        condition = (
            Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id"))
            & cmp("year", ">", 2005)
        )
        out = algebra.join(movies, directors, condition)
        assert {row[0] for row in out.rows} == {1, 2, 5}

    def test_product(self, movies, directors):
        out = algebra.product(movies, directors)
        assert len(out) == 15

    def test_join_with_max_aggregate(self, movies, directors):
        scored = prefer(movies, Preference("p", "MOVIES", TRUE, 0.5, 0.95))
        condition = Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id"))
        out = algebra.join(scored, directors, condition, F_MAX)
        by_movie = {row[0]: pair for row, pair in out}
        assert by_movie[1] == ScorePair(0.8, 1.0)      # director pair wins
        assert by_movie[4] == ScorePair(0.5, 0.95)     # movie pair wins

    def test_null_join_keys_dropped(self, movie_db, directors):
        movie_db.insert("MOVIES", (9, "No Director", 2000, 100, None))
        movies = PRelation.from_table(movie_db.table("MOVIES"))
        condition = Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id"))
        out = algebra.join(movies, directors, condition)
        assert all(row[0] != 9 for row in out.rows)


class TestSetOperations:
    def _rel(self, movie_db, rows_pairs):
        schema = movie_db.table("DIRECTORS").schema
        rows = [rp[0] for rp in rows_pairs]
        pairs = [rp[1] for rp in rows_pairs]
        return PRelation(schema, rows, pairs)

    def test_union_combines_common(self, movie_db):
        """Example 6: movies Alice and Bob could both see."""
        a = self._rel(movie_db, [((1, "A"), ScorePair(0.8, 1.0)), ((2, "B"), IDENTITY)])
        b = self._rel(movie_db, [((1, "A"), ScorePair(0.4, 1.0)), ((3, "C"), ScorePair(0.1, 0.5))])
        out = algebra.union(a, b)
        by_id = {row[0]: pair for row, pair in out}
        assert len(out) == 3
        assert by_id[1].score == pytest.approx(0.6)
        assert by_id[1].conf == pytest.approx(2.0)
        assert by_id[2] == IDENTITY
        assert by_id[3] == ScorePair(0.1, 0.5)

    def test_union_deduplicates_within_input(self, movie_db):
        a = self._rel(
            movie_db,
            [((1, "A"), ScorePair(0.8, 1.0)), ((1, "A"), ScorePair(0.4, 1.0))],
        )
        b = self._rel(movie_db, [])
        out = algebra.union(a, b)
        assert len(out) == 1
        assert out.pairs[0].score == pytest.approx(0.6)

    def test_intersection(self, movie_db):
        a = self._rel(movie_db, [((1, "A"), ScorePair(0.8, 1.0)), ((2, "B"), IDENTITY)])
        b = self._rel(movie_db, [((1, "A"), ScorePair(0.4, 1.0))])
        out = algebra.intersect(a, b)
        assert len(out) == 1
        assert out.pairs[0].score == pytest.approx(0.6)

    def test_difference_keeps_left_pairs(self, movie_db):
        a = self._rel(movie_db, [((1, "A"), ScorePair(0.8, 1.0)), ((2, "B"), ScorePair(0.2, 0.2))])
        b = self._rel(movie_db, [((1, "A"), ScorePair(0.4, 1.0))])
        out = algebra.difference(a, b)
        assert len(out) == 1
        assert out.rows[0][0] == 2
        assert out.pairs[0] == ScorePair(0.2, 0.2)

    def test_incompatible_schemas_rejected(self, movies, directors):
        with pytest.raises(PlanError):
            algebra.union(movies, directors)
        with pytest.raises(PlanError):
            algebra.intersect(movies, directors)
        with pytest.raises(PlanError):
            algebra.difference(movies, directors)
