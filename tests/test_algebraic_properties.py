"""Property-based verification of the paper's algebraic Properties 4.1–4.4.

Each property is checked semantically: both sides of the equation are
evaluated with the reference evaluator over the example movie database, with
hypothesis generating the preferences' conditional parts, scores and
confidences.  These are exactly the rewrites the optimizer relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import build_movie_db
from repro.core.preference import Preference
from repro.core.scoring import ConstantScore, recency_score
from repro.engine.expressions import TRUE, cmp, eq
from repro.pexec.reference import evaluate_reference
from repro.plan.builder import natural_join_condition
from repro.plan.nodes import Join, Prefer, Relation, Select

DB = build_movie_db()

YEARS = st.integers(min_value=2000, max_value=2012)
DURATIONS = st.integers(min_value=90, max_value=140)
SCORES = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
CONFS = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
OPS = st.sampled_from(["<", "<=", ">", ">=", "=", "!="])


@st.composite
def preferences(draw):
    op = draw(OPS)
    year = draw(YEARS)
    kind = draw(st.sampled_from(["const", "recency"]))
    scoring = (
        ConstantScore(draw(SCORES)) if kind == "const" else recency_score("year", 2011)
    )
    return Preference(
        "p", "MOVIES", cmp("MOVIES.year", op, year), scoring, draw(CONFS)
    )


@st.composite
def duration_preferences(draw):
    op = draw(OPS)
    duration = draw(DURATIONS)
    return Preference(
        "q", "MOVIES", cmp("MOVIES.duration", op, duration), draw(SCORES), draw(CONFS)
    )


class TestProperty41:
    """σ_φ λ_p(R) = λ_p σ_φ(R) for φ not touching score/conf."""

    @settings(max_examples=60, deadline=None)
    @given(preferences(), YEARS, OPS)
    def test_select_prefer_commute(self, p, year, op):
        condition = cmp("year", op, year)
        left = evaluate_reference(
            Select(Prefer(Relation("MOVIES"), p), condition), DB.catalog
        )
        right = evaluate_reference(
            Prefer(Select(Relation("MOVIES"), condition), p), DB.catalog
        )
        assert left.same_contents(right)


class TestProperty42:
    """σ_φ' λ_p(R) = σ_φ' λ_p'(R) with p' = (σ_{φ∧φ'}, S, C)."""

    @settings(max_examples=60, deadline=None)
    @given(preferences(), DURATIONS)
    def test_condition_folding(self, p, duration):
        outer = cmp("duration", ">=", duration)
        narrowed = Preference(
            p.name, p.relations, p.condition & outer, p.scoring, p.confidence
        )
        left = evaluate_reference(
            Select(Prefer(Relation("MOVIES"), p), outer), DB.catalog
        )
        right = evaluate_reference(
            Select(Prefer(Relation("MOVIES"), narrowed), outer), DB.catalog
        )
        assert left.same_contents(right)


class TestProperty43:
    """λ_p1(λ_p2(R)) = λ_p2(λ_p1(R)) — prefer is commutative."""

    @settings(max_examples=60, deadline=None)
    @given(preferences(), duration_preferences())
    def test_prefer_commutes(self, p1, p2):
        base = Relation("MOVIES")
        left = evaluate_reference(Prefer(Prefer(base, p1), p2), DB.catalog)
        right = evaluate_reference(Prefer(Prefer(base, p2), p1), DB.catalog)
        assert left.same_contents(right)

    @settings(max_examples=30, deadline=None)
    @given(preferences(), duration_preferences(), preferences())
    def test_three_prefers_any_order(self, p1, p2, p3):
        base = Relation("MOVIES")
        orders = [
            (p1, p2, p3),
            (p3, p2, p1),
            (p2, p1, p3),
        ]
        results = []
        for order in orders:
            plan = base
            for p in order:
                plan = Prefer(plan, p)
            results.append(evaluate_reference(plan, DB.catalog))
        assert results[0].same_contents(results[1])
        assert results[0].same_contents(results[2])


class TestProperty44:
    """λ_p(R_i ⋈ R_j) = λ_p(R_i) ⋈ R_j when p uses only R_i's attributes."""

    JOIN = natural_join_condition(DB.catalog, Relation("MOVIES"), Relation("DIRECTORS"))

    @settings(max_examples=60, deadline=None)
    @given(preferences())
    def test_push_through_join_left(self, p):
        join = Join(Relation("MOVIES"), Relation("DIRECTORS"), self.JOIN)
        above = evaluate_reference(Prefer(join, p), DB.catalog)
        pushed = evaluate_reference(
            Join(Prefer(Relation("MOVIES"), p), Relation("DIRECTORS"), self.JOIN),
            DB.catalog,
        )
        assert above.same_contents(pushed)

    @settings(max_examples=30, deadline=None)
    @given(SCORES, CONFS)
    def test_push_through_join_right(self, score, conf):
        p = Preference("d", "DIRECTORS", eq("DIRECTORS.d_id", 1), score, conf)
        join = Join(Relation("MOVIES"), Relation("DIRECTORS"), self.JOIN)
        above = evaluate_reference(Prefer(join, p), DB.catalog)
        pushed = evaluate_reference(
            Join(Relation("MOVIES"), Prefer(Relation("DIRECTORS"), p), self.JOIN),
            DB.catalog,
        )
        assert above.same_contents(pushed)

    @settings(max_examples=30, deadline=None)
    @given(preferences())
    def test_push_through_intersection_left(self, p):
        from repro.plan.nodes import Intersect

        recent = Select(Relation("MOVIES"), cmp("year", ">=", 2005))
        other = Select(Relation("MOVIES"), cmp("duration", "<=", 130))
        above = evaluate_reference(Prefer(Intersect(recent, other), p), DB.catalog)
        pushed = evaluate_reference(Intersect(Prefer(recent, p), other), DB.catalog)
        assert above.same_contents(pushed)

    @settings(max_examples=30, deadline=None)
    @given(preferences())
    def test_push_through_difference_left(self, p):
        from repro.plan.nodes import Difference

        recent = Select(Relation("MOVIES"), cmp("year", ">=", 2005))
        other = Select(Relation("MOVIES"), cmp("duration", ">", 130))
        above = evaluate_reference(Prefer(Difference(recent, other), p), DB.catalog)
        pushed = evaluate_reference(Difference(Prefer(recent, p), other), DB.catalog)
        assert above.same_contents(pushed)
