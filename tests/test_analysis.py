"""Unit tests for plan analysis (widening, stripping, qualification)."""

import pytest

from repro.engine.expressions import cmp, eq
from repro.errors import SchemaError
from repro.plan.analysis import (
    is_left_deep,
    join_attributes,
    plan_depth,
    preference_attributes,
    preferred_relations,
    primary_key_attributes,
    qualify_preferences,
    required_carry_attributes,
    strip_prefers,
    widen_projections,
)
from repro.plan.builder import scan
from repro.plan.nodes import Join, Prefer, Project, Relation, Select


@pytest.fixture
def plan(movie_db, example_preferences):
    return (
        scan("MOVIES")
        .natural_join(scan("DIRECTORS").prefer(example_preferences["p2"]), movie_db.catalog)
        .select(eq("year", 2008))
        .project(["title"])
        .build()
    )


class TestIntrospection:
    def test_preference_attributes(self, plan):
        assert preference_attributes(plan) == {"d_id"}

    def test_join_attributes(self, plan):
        assert join_attributes(plan) == {"movies.d_id", "directors.d_id"}

    def test_preferred_relations(self, plan):
        assert preferred_relations(plan) == {"DIRECTORS"}

    def test_primary_keys_cover_all_leaves(self, plan, movie_db):
        keys = primary_key_attributes(plan, movie_db.catalog)
        assert keys == {"movies.m_id", "directors.d_id"}

    def test_required_carry(self, plan, movie_db):
        carry = required_carry_attributes(plan, movie_db.catalog)
        assert {"movies.m_id", "directors.d_id", "d_id"} <= carry

    def test_plan_depth(self, plan):
        assert plan_depth(plan) == 5

    def test_left_deep_detection(self, movie_db):
        left = Join(Join(Relation("MOVIES"), Relation("DIRECTORS"), eq("m_id", 1)), Relation("GENRES"), eq("m_id", 1))
        right = Join(Relation("GENRES"), Join(Relation("MOVIES"), Relation("DIRECTORS"), eq("m_id", 1)), eq("m_id", 1))
        assert is_left_deep(left)
        assert not is_left_deep(right)


class TestStripPrefers:
    def test_removes_all_prefers(self, plan):
        stripped = strip_prefers(plan)
        assert not stripped.contains_prefer()

    def test_preserves_everything_else(self, plan):
        stripped = strip_prefers(plan)
        kinds = [n.kind for n in stripped.walk()]
        assert kinds == ["project", "select", "join", "relation", "relation"]

    def test_stacked_prefers(self, example_preferences):
        plan = Prefer(
            Prefer(Relation("GENRES"), example_preferences["p1"]),
            example_preferences["p2"],
        )
        assert strip_prefers(plan) == Relation("GENRES")


class TestWidening:
    def test_projection_widened_with_keys_and_pref_attrs(self, plan, movie_db):
        carry = required_carry_attributes(plan, movie_db.catalog)
        widened = widen_projections(plan, carry, movie_db.catalog)
        project = next(n for n in widened.walk() if isinstance(n, Project))
        kept = {a.lower() for a in project.attrs}
        assert "title" in kept
        assert any("m_id" in a for a in kept)
        assert any("d_id" in a for a in kept)

    def test_user_attrs_stay_first(self, plan, movie_db):
        carry = required_carry_attributes(plan, movie_db.catalog)
        widened = widen_projections(plan, carry, movie_db.catalog)
        project = next(n for n in widened.walk() if isinstance(n, Project))
        assert project.attrs[0] == "title"

    def test_idempotent(self, plan, movie_db):
        carry = required_carry_attributes(plan, movie_db.catalog)
        once = widen_projections(plan, carry, movie_db.catalog)
        twice = widen_projections(once, carry, movie_db.catalog)
        assert once == twice

    def test_plan_without_projection_unchanged(self, movie_db, example_preferences):
        plan = scan("GENRES").prefer(example_preferences["p1"]).build()
        carry = required_carry_attributes(plan, movie_db.catalog)
        assert widen_projections(plan, carry, movie_db.catalog) == plan


class TestQualifyPreferences:
    def test_prefer_nodes_qualified(self, movie_db, example_preferences):
        plan = scan("DIRECTORS").prefer(example_preferences["p2"]).build()
        qualified = qualify_preferences(plan, movie_db.catalog)
        preference = qualified.preferences()[0]
        assert preference.condition_attributes() == {"directors.d_id"}

    def test_preference_free_plan_unchanged(self, movie_db):
        plan = scan("MOVIES").select(eq("year", 2008)).build()
        assert qualify_preferences(plan, movie_db.catalog) == plan
