"""Fused batch scoring equals the sequential per-preference fold — exactly.

Three layers of evidence:

* Hypothesis property tests: random preference pools over random row
  multisets (duplicate keys included) produce *identical* score pairs and
  score relations under the fused pass and the sequential fold, for both
  F_S and F_max.
* Conformance: every workload query and every plan of the fixed generated
  corpus returns the same result multiset with ``batch_scoring=True`` and
  ``False`` on every physical strategy.
* Chaos: a full chaos run stays conformant with fused scoring disabled.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import F_MAX, F_S
from repro.core.prefer import prefer, prefer_seq
from repro.core.preference import Preference
from repro.core.prefgroup import PreferenceGroup
from repro.core.prelation import PRelation
from repro.core.scoring import ConstantScore
from repro.engine.expressions import TRUE, InList, cmp, col, eq
from repro.pexec.batchscore import (
    batch_scoring_enabled,
    prefer_group,
    use_batch_scoring,
)
from repro.pexec.engine import ExecutionEngine
from repro.pexec.scorerel import Intermediate, apply_prefer, apply_prefer_seq
from repro.plan.builder import scan
from repro.workloads.queries import all_queries

from tests.conformance import assert_identical
from tests.conftest import build_movie_db
from tests.test_strategy_conformance import PHYSICAL, generated_plan

MOVIE_DB = build_movie_db()
MOVIE_ENGINE = ExecutionEngine(MOVIE_DB)
GENRES_SCHEMA = scan("GENRES").build().schema(MOVIE_DB.catalog)

GENRES = st.sampled_from(["Drama", "Comedy", "Action", "Horror", None])
AGGREGATES = st.sampled_from([F_S, F_MAX])


@st.composite
def preferences(draw):
    """One random preference over GENRES: indexed, residual, or catch-all."""
    kind = draw(st.sampled_from(["eq", "in", "range", "true"]))
    if kind == "eq":
        condition = eq("GENRES.genre", draw(GENRES.filter(lambda g: g is not None)))
    elif kind == "in":
        values = draw(
            st.lists(
                GENRES.filter(lambda g: g is not None),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        condition = InList(col("GENRES.genre"), tuple(values))
    elif kind == "range":
        condition = cmp("GENRES.m_id", ">=", draw(st.integers(0, 5)))
    else:
        condition = TRUE
    score = draw(st.floats(0.0, 1.0, allow_nan=False, width=32))
    conf = draw(st.floats(0.0, 1.0, allow_nan=False, width=32))
    name = f"h{draw(st.integers(0, 10**6))}"
    return Preference(name, "GENRES", condition, ConstantScore(score), conf)


ROWS = st.lists(
    st.tuples(st.integers(1, 4), GENRES), min_size=0, max_size=12
)
POOLS = st.lists(preferences(), min_size=1, max_size=8)


@given(rows=ROWS, pool=POOLS, aggregate=AGGREGATES)
@settings(max_examples=60, deadline=None)
def test_fused_pairs_equal_sequential_fold(rows, pool, aggregate):
    relation = PRelation(GENRES_SCHEMA, rows)
    sequential = relation
    for preference in pool:  # noqa: LN201 — reference fold
        sequential = prefer(sequential, preference, aggregate)
    fused = prefer_group(relation, pool, aggregate)
    assert fused.pairs == sequential.pairs
    assert prefer_seq(relation, pool, aggregate).pairs == sequential.pairs


@given(rows=ROWS, pool=POOLS, aggregate=AGGREGATES)
@settings(max_examples=60, deadline=None)
def test_fused_score_relation_equals_sequential_fold(rows, pool, aggregate):
    # Key on m_id only: duplicate keys force the per-key replay path.
    inter = Intermediate(GENRES_SCHEMA, rows, ["GENRES.m_id"], {})
    sequential = inter
    for preference in pool:  # noqa: LN201 — reference fold
        sequential = apply_prefer(sequential, preference, aggregate)
    compiled = PreferenceGroup(pool, aggregate).compile(GENRES_SCHEMA)
    fused = compiled.score_rows(rows, inter.key_fn(), inter.scores)
    assert fused == sequential.scores
    assert apply_prefer_seq(inter, pool, aggregate).scores == sequential.scores


@pytest.mark.parametrize("seed", range(0, 50, 2))
def test_generated_plans_identical_fused_and_unfused(seed):
    plan = generated_plan(seed)
    for strategy in PHYSICAL:
        fused = MOVIE_ENGINE.run(plan, strategy, batch_scoring=True)
        unfused = MOVIE_ENGINE.run(plan, strategy, batch_scoring=False)
        assert_identical(
            unfused,
            fused,
            context=f"{strategy} seed {seed}",
            labels=("unfused", "fused"),
        )


@pytest.mark.parametrize("workload_query", all_queries(), ids=lambda q: q.name)
def test_workload_queries_identical_fused_and_unfused(
    workload_query, imdb_tiny, dblp_tiny
):
    db = imdb_tiny if workload_query.dataset == "imdb" else dblp_tiny
    session = workload_query.session(db)
    compiled = session.compile(workload_query.sql)
    for strategy in PHYSICAL:
        fused = session.execute(compiled, strategy=strategy, batch_scoring=True)
        unfused = session.execute(compiled, strategy=strategy, batch_scoring=False)
        assert_identical(
            unfused,
            fused,
            context=f"{strategy} on {workload_query.name}",
            labels=("unfused", "fused"),
        )


def test_chaos_conformant_with_fused_scoring_disabled():
    from repro.resilience.chaos import run_chaos

    with use_batch_scoring(False):
        report = run_chaos(seed=7, scale=0.0005, strategies=("gbu",))
    assert report.ok, report.describe()


def test_context_flag_round_trips():
    assert batch_scoring_enabled()  # fused is the default
    with use_batch_scoring(False):
        assert not batch_scoring_enabled()
        with use_batch_scoring(True):
            assert batch_scoring_enabled()
        assert not batch_scoring_enabled()
    assert batch_scoring_enabled()
