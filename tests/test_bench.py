"""Unit tests for the benchmark harness and reporting utilities."""

import os

import pytest

from repro.bench import (
    DEFAULT_STRATEGIES,
    bench_repeats,
    bench_scale,
    compare_strategies,
    format_table,
    matrix_table,
    measure,
    table2_properties,
    write_report,
)
from repro.bench.harness import Measurement
from repro.query.session import Session
from repro.workloads import imdb_2


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long header"], [[1, 2.5], ["xx", 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        text = format_table(["v"], [[123.456], [1.234], [0.00123], [0.0]])
        assert "123" in text and "1.23" in text and "0.0012" in text

    def test_write_report(self, tmp_path):
        path = write_report("unit", "hello", directory=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "hello\n"


class TestEnvKnobs:
    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(0.01) == 0.01

    def test_scale_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_repeats_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_REPEATS", "7")
        assert bench_repeats() == 7


class TestMeasure:
    def test_measure_sql(self, imdb_tiny):
        query = imdb_2(k=5)
        session = query.session(imdb_tiny)
        m = measure(session, query.sql, "gbu", repeats=2)
        assert m.strategy == "gbu"
        assert m.wall_ms > 0
        assert m.rows == 5
        assert len(m.runs) == 2

    def test_measure_plan(self, imdb_tiny):
        from repro.plan.builder import scan

        session = Session(imdb_tiny)
        m = measure(session, scan("DIRECTORS").build(), "ftp", repeats=1, label="dirs")
        assert m.query == "dirs"
        assert m.rows == len(imdb_tiny.table("DIRECTORS"))

    def test_compare_strategies(self, imdb_tiny):
        query = imdb_2(k=5)
        measurements = compare_strategies(imdb_tiny, query, repeats=1)
        assert [m.strategy for m in measurements] == list(DEFAULT_STRATEGIES)
        rows = {m.rows for m in measurements}
        assert len(rows) == 1  # all strategies agree on the result size


class TestMatrixTable:
    def test_pivot(self):
        ms = [
            Measurement("Q1", "ftp", 1.0, 10, 5),
            Measurement("Q1", "gbu", 2.0, 20, 5),
            Measurement("Q2", "ftp", 3.0, 30, 7),
        ]
        text = matrix_table(ms, metric="wall_ms", title="T")
        assert "Q1" in text and "Q2" in text
        assert "ftp (ms)" in text and "gbu (ms)" in text
        assert "-" in text.splitlines()[-1]  # missing Q2/gbu cell

    def test_io_metric(self):
        ms = [Measurement("Q1", "ftp", 1.0, 10, 5)]
        text = matrix_table(ms, metric="total_io")
        assert "pages" in text


class TestTable2Properties:
    def test_properties(self, imdb_tiny):
        query = imdb_2(k=5)
        p = table2_properties(imdb_tiny, query)
        assert p["query"] == "IMDB-2"
        assert p["|R|"] == 2
        assert p["|λ|"] == 2
        assert p["P/NP"] == "2/0"
        assert p["N"] == 5
