"""Differential conformance: cache-on must be byte-identical to cache-off.

The result cache's correctness claim is absolute — a served reply with the
cache enabled is the *same bytes* the cache-off computation produces at the
same server state.  This suite proves it the way the repo proves every
optimization (see ``tests/conformance.py``):

* a hypothesis property drives random interleavings of committed mutations
  (preference add/remove/clear, row inserts) and repeated queries across
  **all six** execution strategies, holding a cache-on service and a
  cache-off oracle against the same live server and asserting reply
  equality at every step — and exact ``(row, score, conf)`` multiset
  equality of the underlying relations;
* the same interleavings hold the incremental
  :class:`~repro.cache.maintenance.ScoreMaintainer` to its full-recompute
  oracle with exact :class:`ScorePair` equality;
* a concurrent stress pushes one hot key through a
  :class:`~repro.serve.executor.ServeExecutor` worker pool to show
  single-flight deduplication never changes an answer.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conformance import assert_identical, exact_multiset
from repro.cache import CachedQueryService, ResultCache, ScoreMaintainer
from repro.core.preference import Preference
from repro.engine.database import Database
from repro.engine.expressions import cmp, eq
from repro.engine.types import DataType
from repro.serve.executor import ServeExecutor
from repro.serve.server import PreferenceServer

STRATEGIES = ("gbu", "bu", "ftp", "plugin-rma", "plugin-shared", "reference")

SQL = """
    SELECT name, colour FROM ITEMS
    PREFERRING {names}
    TOP 5 BY score
"""

USERS = ("u1", "u2")

#: The preference pool the interleavings draw from: overlapping conditions,
#: distinct scores, one numeric predicate — enough to make fold order and
#: partial matches observable.
PREF_POOL = {
    "likes_green": lambda: Preference(
        "likes_green", "ITEMS", eq("colour", "green"), 0.9, 0.9
    ),
    "likes_red": lambda: Preference(
        "likes_red", "ITEMS", eq("colour", "red"), 0.8, 0.7
    ),
    "likes_heavy": lambda: Preference(
        "likes_heavy", "ITEMS", cmp("weight", ">=", 100), 0.6, 0.95
    ),
    "likes_purple": lambda: Preference(
        "likes_purple", "ITEMS", eq("colour", "purple"), 0.4, 0.5
    ),
}

COLOURS = ("red", "green", "purple", "yellow")


def fresh_server() -> PreferenceServer:
    db = Database()
    db.create_table(
        "ITEMS",
        [
            ("i_id", DataType.INT),
            ("name", DataType.TEXT),
            ("colour", DataType.TEXT),
            ("weight", DataType.INT),
        ],
        primary_key=["i_id"],
    )
    db.insert_many(
        "ITEMS",
        [
            (1, "apple", "red", 120),
            (2, "pear", "green", 90),
            (3, "plum", "purple", 40),
            (4, "grape", "green", 5),
        ],
    )
    return PreferenceServer(db)


# -- the interleaving grammar --------------------------------------------------

_ops = st.one_of(
    st.tuples(
        st.just("add"), st.sampled_from(USERS), st.sampled_from(sorted(PREF_POOL))
    ),
    st.tuples(
        st.just("remove"), st.sampled_from(USERS), st.sampled_from(sorted(PREF_POOL))
    ),
    st.tuples(st.just("clear"), st.sampled_from(USERS), st.just("")),
    st.tuples(st.just("insert"), st.sampled_from(COLOURS), st.integers(0, 200)),
    st.tuples(
        st.just("query"), st.sampled_from(USERS), st.sampled_from(STRATEGIES)
    ),
)


def apply_mutation(server: PreferenceServer, op: tuple) -> None:
    kind = op[0]
    if kind == "add":
        _kind, user, name = op
        if not any(p.name == name for p in server.store.preferences_of(user)):
            server.add_preference(user, PREF_POOL[name]())
    elif kind == "remove":
        server.remove_preference(op[1], op[2])
    elif kind == "clear":
        server.clear_preferences(op[1])
    elif kind == "insert":
        _kind, colour, weight = op
        next_id = len(server.db.table("ITEMS").rows) + 1
        server.insert("ITEMS", (next_id, f"item{next_id}", colour, weight))


class TestCacheConformance:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_ops, min_size=1, max_size=14))
    def test_cache_on_is_byte_identical_across_interleavings(self, ops):
        server = fresh_server()
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        oracle = CachedQueryService(server, None, default_sql=SQL)
        for op in ops:
            if op[0] == "query":
                _kind, user, strategy = op
                assert cached.query(user, strategy=strategy) == oracle.query(
                    user, strategy=strategy
                )
            else:
                apply_mutation(server, op)
        # Final sweep: every (user, strategy) pair agrees at the end state,
        # whether its entry is a hit, a miss, or was just invalidated.
        for user in USERS:
            for strategy in STRATEGIES:
                assert cached.query(user, strategy=strategy) == oracle.query(
                    user, strategy=strategy
                )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_ops, min_size=1, max_size=10), st.sampled_from(STRATEGIES))
    def test_underlying_relations_match_exactly(self, ops, strategy):
        # Reply-dict equality above is digest-level; this closes the loop at
        # the relation level with the repo's exact-multiset harness.
        server = fresh_server()
        for op in ops:
            if op[0] != "query":
                apply_mutation(server, op)
        for user in USERS:
            names = sorted(p.name for p in server.store.preferences_of(user))
            if not names:
                continue
            text = SQL.format(names=", ".join(names))
            snapshot = server.snapshot()
            once = snapshot.session_for(user, strategy=strategy).execute(text)
            twice = snapshot.session_for(user, strategy=strategy).execute(text)
            assert_identical(
                once, twice, exact=True, context=f"{user}/{strategy} determinism"
            )
            assert exact_multiset(once) == exact_multiset(twice)


class TestMaintainerConformance:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_ops, min_size=1, max_size=16))
    def test_maintained_scores_equal_full_recompute(self, ops):
        server = fresh_server()
        maintainer = ScoreMaintainer(server.db, server.store).attach(server)
        for user in USERS:  # materialize up front so every event patches
            maintainer.score_relation(user, "ITEMS")
        for op in ops:
            if op[0] == "query":
                continue
            apply_mutation(server, op)
            for user in USERS:
                maintained = maintainer.score_relation(user, "ITEMS")
                oracle = maintainer.recompute(user, "ITEMS")
                assert maintained == oracle, (
                    f"divergence for {user} after {op}: "
                    f"{maintained} != {oracle}"
                )


class TestConcurrentSingleFlight:
    def test_hot_key_under_a_worker_pool_stays_identical(self):
        server = fresh_server()
        server.add_preference("u1", PREF_POOL["likes_green"]())
        server.add_preference("u1", PREF_POOL["likes_red"]())
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        oracle = CachedQueryService(server, None, default_sql=SQL)
        expected = oracle.query("u1")
        executor = ServeExecutor(workers=8, queue_limit=64)
        try:
            futures = [
                executor.submit(cached.query, "u1", session=f"s{i % 4}")
                for i in range(32)
            ]
            replies = [f.result(10.0) for f in futures]
        finally:
            executor.shutdown()
        assert all(reply == expected for reply in replies)
        stats = cached.stats_snapshot()
        # One computation fanned out to everyone: a single miss, the rest
        # hits or single-flight waits — never a divergent recompute.
        assert stats["misses"] == 1
        assert stats["hits"] + stats["single_flight_waits"] >= 31

    def test_churn_under_concurrency_never_serves_stale(self):
        server = fresh_server()
        server.add_preference("u1", PREF_POOL["likes_green"]())
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        oracle = CachedQueryService(server, None, default_sql=SQL)
        executor = ServeExecutor(workers=4, queue_limit=64)
        try:
            for round_no in range(6):
                futures = [
                    executor.submit(cached.query, "u1", session=f"s{i}")
                    for i in range(8)
                ]
                replies = [f.result(10.0) for f in futures]
                # All concurrent replies within a quiescent round agree with
                # the oracle at that state.
                expected = oracle.query("u1")
                assert all(reply == expected for reply in replies)
                apply_mutation(
                    server, ("insert", COLOURS[round_no % len(COLOURS)], 50)
                )
        finally:
            executor.shutdown()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
