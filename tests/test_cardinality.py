"""Unit tests for cardinality estimation."""

import pytest

from repro.engine.cardinality import (
    estimate_cardinality,
    estimate_condition_selectivity,
    estimate_join_selectivity,
)
from repro.engine.expressions import TRUE, cmp, eq
from repro.plan.builder import natural_join_condition, scan
from repro.plan.nodes import Join, Materialized, Relation, Select, TopK, Union


class TestBaseCardinality:
    def test_relation_uses_stats(self, movie_db):
        assert estimate_cardinality(Relation("MOVIES"), movie_db.catalog) == 5

    def test_relation_without_stats_counts(self, movie_db):
        db = movie_db
        db.insert("DIRECTORS", (4, "New Guy"))  # stats now stale (3)
        assert estimate_cardinality(Relation("DIRECTORS"), db.catalog) == 3
        db.analyze("DIRECTORS")
        assert estimate_cardinality(Relation("DIRECTORS"), db.catalog) == 4

    def test_materialized(self, movie_db):
        node = Materialized(movie_db.table("MOVIES").schema, [(1,) * 5] * 7)
        assert estimate_cardinality(node, movie_db.catalog) == 7


class TestDerivedCardinality:
    def test_selection_scales_down(self, movie_db):
        base = Relation("MOVIES")
        selected = Select(base, eq("m_id", 1))
        assert estimate_cardinality(selected, movie_db.catalog) < 5

    def test_equijoin_uses_distinct_counts(self, movie_db):
        plan = Join(
            Relation("MOVIES"),
            Relation("DIRECTORS"),
            natural_join_condition(
                movie_db.catalog, Relation("MOVIES"), Relation("DIRECTORS")
            ),
        )
        estimate = estimate_cardinality(plan, movie_db.catalog)
        # True result is 5 (every movie matches exactly one director).
        assert 2 <= estimate <= 10

    def test_cross_product(self, movie_db):
        plan = Join(Relation("MOVIES"), Relation("DIRECTORS"), TRUE)
        assert estimate_cardinality(plan, movie_db.catalog) == 15

    def test_union_adds(self, movie_db):
        plan = Union(Relation("MOVIES"), Relation("MOVIES"))
        assert estimate_cardinality(plan, movie_db.catalog) == 10

    def test_topk_caps(self, movie_db):
        plan = TopK(Relation("MOVIES"), 2)
        assert estimate_cardinality(plan, movie_db.catalog) == 2

    def test_selectivity_through_join(self, movie_db):
        """A qualified condition deep in a join uses its base table's stats."""
        join = Join(
            Relation("MOVIES"),
            Relation("DIRECTORS"),
            natural_join_condition(
                movie_db.catalog, Relation("MOVIES"), Relation("DIRECTORS")
            ),
        )
        s = estimate_condition_selectivity(
            eq("MOVIES.m_id", 1), join, movie_db.catalog
        )
        assert s == pytest.approx(1 / 5, rel=0.5)


class TestJoinSelectivity:
    def test_equi_selectivity(self, movie_db):
        condition = natural_join_condition(
            movie_db.catalog, Relation("MOVIES"), Relation("DIRECTORS")
        )
        s = estimate_join_selectivity(
            condition, Relation("MOVIES"), Relation("DIRECTORS"), movie_db.catalog
        )
        assert s == pytest.approx(1 / 3, rel=0.1)  # 3 distinct directors
