"""Unit tests for the catalog."""

import pytest

from repro.engine.catalog import Catalog
from repro.engine.schema import make_schema
from repro.engine.types import DataType
from repro.errors import CatalogError


@pytest.fixture
def catalog() -> Catalog:
    c = Catalog()
    schema = make_schema(
        "T", [("id", DataType.INT), ("v", DataType.INT)], primary_key=["id"]
    )
    table = c.create_table(schema)
    table.insert_many([(i, i % 3) for i in range(10)])
    return c


class TestTables:
    def test_create_and_lookup(self, catalog):
        assert catalog.table("T").name == "T"
        assert catalog.table("t").name == "T"  # case-insensitive

    def test_duplicate_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_table(make_schema("T", [("a", DataType.INT)]))

    def test_missing_raises(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_drop(self, catalog):
        catalog.drop_table("T")
        assert not catalog.has_table("T")
        with pytest.raises(CatalogError):
            catalog.drop_table("T")

    def test_names(self, catalog):
        assert catalog.table_names() == ["T"]


class TestIndexes:
    def test_create_and_find(self, catalog):
        catalog.create_index("T", "v")
        index = catalog.find_index("T", "v")
        assert index is not None
        assert index.kind == "hash"

    def test_find_by_kind(self, catalog):
        catalog.create_index("T", "v", kind="btree")
        assert catalog.find_index("T", "v", kind="hash") is None
        assert catalog.find_index("T", "v", kind="btree") is not None

    def test_find_qualified_attr(self, catalog):
        catalog.create_index("T", "v")
        assert catalog.find_index("T", "T.v") is not None

    def test_duplicate_index_rejected(self, catalog):
        catalog.create_index("T", "v")
        with pytest.raises(CatalogError):
            catalog.create_index("T", "v")

    def test_rebuild_after_load(self, catalog):
        catalog.create_index("T", "v")
        catalog.table("T").insert((100, 7))
        catalog.rebuild_indexes("T")
        index = catalog.find_index("T", "v")
        assert any(r[0] == 100 for r in index.lookup(7))

    def test_indexes_on(self, catalog):
        catalog.create_index("T", "v")
        catalog.create_index("T", "id", kind="btree")
        assert len(catalog.indexes_on("T")) == 2
        assert catalog.indexes_on("missing") == []


class TestStats:
    def test_analyze_single(self, catalog):
        assert catalog.stats("T") is None
        catalog.analyze("T")
        stats = catalog.stats("T")
        assert stats is not None and stats.n_rows == 10

    def test_analyze_all(self, catalog):
        catalog.create_table(make_schema("U", [("x", DataType.INT)]))
        catalog.analyze()
        assert catalog.stats("T") is not None
        assert catalog.stats("U") is not None
