"""Concurrent chaos + crash-recovery fixtures, and their CLI entry points.

Small-scale versions of the acceptance scenarios: N writers and M readers
against one server (every reader cell judged against the oracle computed on
its own snapshot), and the crash-at-arbitrary-WAL-offset recovery sweep.
"""

from __future__ import annotations

from repro.cli import main
from repro.resilience.chaos_concurrent import (
    run_concurrent_chaos,
    wal_recovery_check,
)
from repro.serve.bench import serve_bench


def test_concurrent_chaos_small_run_conforms():
    report = run_concurrent_chaos(
        seed=7, scale=0.0005, writers=2, readers=2, queries_per_reader=3
    )
    assert report.ok, report.describe()
    assert len(report.cells) == 2 * 3
    assert all(cell.ok for cell in report.cells)
    assert report.snapshot_checks > 0  # post-hoc digest immutability ran
    assert report.writer_ops > 0
    assert report.errors == []


def test_wal_recovery_at_arbitrary_offsets(tmp_path):
    report = wal_recovery_check(str(tmp_path), seed=5, mutations=12, max_offsets=6)
    assert report.ok, report.describe()
    assert report.offsets_checked > 0
    assert report.mismatches == []


def test_serve_bench_reports_latency_and_throughput():
    report = serve_bench(threads=2, duration=0.4, scale=0.0005, seed=3)
    assert report.ok, report.describe()
    assert report.completed > 0
    assert report.qps > 0
    assert report.latency["p50_ms"] <= report.latency["p99_ms"]
    assert "q/s" in report.describe()


def test_cli_chaos_concurrent_scenario():
    code = main(
        [
            "chaos",
            "--scenario",
            "concurrent",
            "--scale",
            "0.0005",
            "--writers",
            "2",
            "--readers",
            "2",
            "--queries",
            "2",
            "--seed",
            "11",
        ]
    )
    assert code == 0


def test_cli_serve_bench(tmp_path, capsys):
    trace_out = str(tmp_path / "serve.jsonl")
    code = main(
        [
            "serve-bench",
            "--threads",
            "2",
            "--duration",
            "0.3",
            "--scale",
            "0.0005",
            "--trace-out",
            trace_out,
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "q/s" in out
    from repro.obs import read_jsonl

    records = read_jsonl(trace_out)
    assert records
    meta, span = records[0]
    assert span.name == "serve.latency"
    assert meta["benchmark"] == "serve-bench"


def test_cli_chaos_list_mentions_concurrent(capsys):
    assert main(["chaos", "--list"]) == 0
    assert "concurrent" in capsys.readouterr().out
