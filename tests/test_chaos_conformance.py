"""Chaos conformance: faulted strategies match the oracle or fail typed."""

import pytest

from repro.resilience.chaos import (
    ChaosScenario,
    builtin_scenarios,
    run_chaos,
    timeout_smoke,
)


class TestScenarioCatalog:
    def test_covers_every_instrumented_site_family(self):
        names = {scenario.name for scenario in builtin_scenarios()}
        assert names == {
            "transient-io",
            "transient-dispatch",
            "strategy-crash",
            "slow-io",
            "score-corruption",
            "flaky-mix",
        }

    def test_build_returns_fresh_plans(self):
        scenario = builtin_scenarios()[0]
        assert scenario.build(1) is not scenario.build(1)


@pytest.fixture(scope="module")
def report():
    """One small but complete chaos run shared by the assertions below."""
    return run_chaos(seed=42, scale=0.0005, strategies=("gbu", "reference"))


class TestConformance:
    def test_every_cell_conformant(self, report):
        assert report.ok, report.describe()

    def test_all_scenarios_and_modes_covered(self, report):
        scenarios = len(builtin_scenarios())
        # 3 IMDB queries × scenarios × 2 strategies × 2 modes.
        assert len(report.cells) == 3 * scenarios * 2 * 2
        assert {cell.mode for cell in report.cells} == {"strict", "fallback"}

    def test_disruptive_scenarios_actually_disrupt(self, report):
        strict = [c for c in report.cells if c.mode == "strict"]
        typed = [c for c in strict if c.outcome.startswith("typed-error:")]
        assert typed, "no strict cell saw a typed failure — faults not firing?"
        assert all(
            c.outcome in ("match",) or c.outcome.startswith("typed-error:")
            for c in strict
        )

    def test_fallback_recovers_with_declared_degradation(self, report):
        recovered = [
            c
            for c in report.cells
            if c.mode == "fallback" and c.outcome == "recovered-degraded"
        ]
        assert recovered, "no fallback cell recovered from an injected failure"

    def test_benign_latency_never_fails(self, report):
        slow = [c for c in report.cells if c.scenario == "slow-io"]
        assert all(c.ok and c.outcome == "match" for c in slow)

    def test_describe_summarizes_verdicts(self, report):
        text = report.describe()
        assert "seed=42" in text
        assert "[PASS]" in text
        assert text.strip().endswith("OK")

    def test_failures_listed_when_a_cell_breaks(self, report):
        import copy

        broken = copy.deepcopy(report)
        broken.cells[0].ok = False
        broken.cells[0].outcome = "silent-mismatch"
        assert not broken.ok
        assert "FAIL" in broken.describe()

    def test_same_seed_reproduces_outcomes(self, report):
        scenario = next(s for s in builtin_scenarios() if s.name == "flaky-mix")
        again = run_chaos(
            seed=42, scale=0.0005, scenarios=[scenario], strategies=("gbu",)
        )
        wanted = [
            (c.scenario, c.query, c.strategy, c.mode, c.outcome)
            for c in report.cells
            if c.scenario == "flaky-mix" and c.strategy == "gbu"
        ]
        got = [
            (c.scenario, c.query, c.strategy, c.mode, c.outcome)
            for c in again.cells
        ]
        assert got == wanted


class TestTimeoutSmoke:
    def test_expired_deadline_raises_not_hangs(self):
        outcome = timeout_smoke(scale=0.0005)
        assert outcome.ok, outcome.message
        assert "OK" in outcome.message


class TestCustomScenario:
    def test_user_defined_scenario_runs(self):
        from repro.resilience import FaultPlan

        scenario = ChaosScenario(
            "my-transient",
            "one transient page-read failure",
            lambda seed: FaultPlan.transient("iosim.scan", times=1, seed=seed),
        )
        report = run_chaos(
            seed=1, scale=0.0005, scenarios=[scenario], strategies=("gbu",)
        )
        assert report.ok, report.describe()
