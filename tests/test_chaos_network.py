"""The network chaos suite at test scale: every phase green, digests exact."""

from __future__ import annotations

import pytest

from repro.serve.net.chaos import FAULT_KINDS, _fault_plan, run_network_chaos


@pytest.mark.parametrize("seed", [42, 7])
def test_network_chaos_suite_passes(seed):
    report = run_network_chaos(
        seed=seed, scale=0.0005, cells=8, kill_writes=4, overload_clients=4
    )
    assert report.ok, report.failures
    assert report.errors == []
    assert len(report.cells) == 8
    # Faulted cells either match the server-side oracle exactly or fail
    # with a typed error; nothing escapes untyped.
    for cell in report.cells:
        assert cell.outcome == "exact" or cell.outcome.startswith("typed-"), cell
    # Some cells must have survived to an exact digest match despite faults.
    assert sum(1 for c in report.cells if c.outcome == "exact") >= 1
    # Every acked write survived the kill and recovery.
    assert report.write_acks == 4
    assert report.writes_recovered == 4
    # Overload: the server stayed up, shed typed, and served someone.
    assert report.overload_served >= 1
    assert report.overload_shed >= 1
    assert "network chaos" in report.describe()


def test_chaos_covers_every_fault_kind():
    report = run_network_chaos(
        seed=3, scale=0.0005, cells=len(FAULT_KINDS), kill_writes=2,
        overload_clients=4,
    )
    assert report.ok, report.failures
    exercised = {cell.fault for cell in report.cells}
    assert exercised == set(FAULT_KINDS)


def test_fault_plans_map_to_net_sites():
    for kind in FAULT_KINDS:
        plan = _fault_plan(kind, seed=1)
        if kind == "none":
            assert plan is None
        else:
            assert plan is not None
            assert all(spec.site.startswith("net.") for spec in plan.specs)
