"""Tests for the command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


class TestInProcess:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "extended query plan" in out
        assert "-- gbu" in out and "-- reference" in out
        assert "Wall Street" in out

    def test_generate_and_query(self, tmp_path, capsys):
        assert main(["generate", "--dataset", "imdb", "--scale", "0.0005", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        sql = (
            "SELECT title FROM MOVIES WHERE year >= 2005 "
            "PREFERRING (year > 2008) SCORE 0.9 ON MOVIES TOP 3 BY score"
        )
        assert main(["query", "--db", str(tmp_path), sql]) == 0
        out = capsys.readouterr().out
        assert "MOVIES.title" in out
        assert "rows" in out

    def test_query_with_explain(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        assert main(["query", "--db", str(tmp_path), "--explain", "SELECT title FROM MOVIES TOP 2 BY conf"]) == 0
        out = capsys.readouterr().out
        assert "optimized plan" in out

    def test_query_limit_truncates(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        main(["query", "--db", str(tmp_path), "--limit", "2", "SELECT title FROM MOVIES"])
        out = capsys.readouterr().out
        assert "rows total" in out

    def test_query_missing_db_errors(self, capsys, tmp_path):
        assert main(["query", "--db", str(tmp_path / "nope"), "SELECT title FROM MOVIES"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_strategy_errors(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        assert main(["query", "--db", str(tmp_path), "--strategy", "warp", "SELECT title FROM MOVIES"]) == 1


class TestQueryGuardsFlags:
    def test_expired_timeout_is_a_typed_cli_error(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        code = main(
            ["query", "--db", str(tmp_path), "--timeout", "0",
             "SELECT title FROM MOVIES"]
        )
        assert code == 1
        assert "deadline" in capsys.readouterr().err

    def test_max_rows_budget_reported(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        code = main(
            ["query", "--db", str(tmp_path), "--max-rows", "1",
             "SELECT title FROM MOVIES"]
        )
        assert code == 1
        assert "rows budget" in capsys.readouterr().err

    def test_generous_budgets_do_not_interfere(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        code = main(
            ["query", "--db", str(tmp_path), "--timeout", "60",
             "--max-rows", "100000", "SELECT title FROM MOVIES TOP 2 BY conf"]
        )
        assert code == 0
        assert "MOVIES.title" in capsys.readouterr().out


class TestChaosCommand:
    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "transient-io" in out and "score-corruption" in out

    def test_unknown_scenario_errors(self, capsys):
        assert main(["chaos", "--scenario", "kaboom"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_single_scenario_run_passes(self, capsys):
        assert main(["chaos", "--scale", "0.0005", "--scenario", "slow-io"]) == 0
        out = capsys.readouterr().out
        assert "slow-io" in out and "OK" in out

    def test_timeout_smoke_flag(self, capsys):
        code = main(
            ["chaos", "--scale", "0.0005", "--scenario", "slow-io",
             "--timeout-smoke"]
        )
        assert code == 0
        assert "timeout smoke: OK" in capsys.readouterr().out


class TestStaticAnalysisCommands:
    def test_lint_clean_tree(self, capsys):
        import os

        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        assert main(["lint", package_root]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_lint_reports_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = my_score == 0.5\n")
        assert main(["lint", str(bad)]) == 1
        assert "LN101" in capsys.readouterr().out

    def test_verify_plan_workload(self, capsys):
        assert main(["verify-plan", "--workload", "IMDB-2", "--strict"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_plan_adhoc_sql(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        sql = (
            "SELECT title FROM MOVIES "
            "PREFERRING (year > 2008) SCORE 0.9 ON MOVIES TOP 3 BY score"
        )
        assert main(["verify-plan", "--db", str(tmp_path), sql]) == 0
        assert "1 plan(s) clean" in capsys.readouterr().out

    def test_verify_plan_flags_bad_query(self, tmp_path, capsys):
        main(["generate", "--scale", "0.0005", "--out", str(tmp_path)])
        capsys.readouterr()
        # Top-k over an input with no preference at all: PV110.
        assert main(["verify-plan", "--db", str(tmp_path), "--strict",
                     "SELECT title FROM MOVIES TOP 3 BY score"]) == 1
        out = capsys.readouterr().out
        assert "PV110" in out

    def test_verify_plan_columnar_partitions(self, capsys):
        assert main([
            "verify-plan", "--workload", "IMDB-2", "--strict",
            "--columnar", "--partitions", "2",
        ]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_plan_unknown_workload_errors(self, capsys):
        assert main(["verify-plan", "--workload", "IMDB-9"]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_verify_plan_needs_an_input(self, capsys):
        assert main(["verify-plan"]) == 1
        assert "needs" in capsys.readouterr().err


class TestSubprocess:
    def test_module_entry_point(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "demo"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "demo query" in completed.stdout

    def test_repl_pipe(self, tmp_path):
        subprocess.run(
            [sys.executable, "-m", "repro", "generate", "--scale", "0.0005", "--out", str(tmp_path)],
            capture_output=True,
            timeout=120,
        )
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "repl", "--db", str(tmp_path)],
            input="SELECT title FROM MOVIES TOP 2 BY conf\nbroken sql here\n\\q\n",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "MOVIES.title" in completed.stdout
        assert "error" in completed.stdout  # the broken statement is reported


class TestSessionExplain:
    def test_explain_text(self, movie_db, example_preferences):
        from repro.query.session import Session

        session = Session(movie_db)
        session.register(example_preferences["p1"])
        text = session.explain(
            "SELECT genre FROM GENRES PREFERRING p1 TOP 2 BY score"
        )
        assert "extended query plan" in text
        assert "optimized plan (gbu)" in text
        assert "λ[p1]" in text

    def test_explain_non_optimizing_strategy(self, movie_db):
        from repro.query.session import Session

        session = Session(movie_db)
        text = session.explain("SELECT title FROM MOVIES", strategy="ftp")
        assert "prepared plan (ftp)" in text
