"""The columnar executor is byte-identical to the reference evaluator.

Evidence layers:

* Hypothesis property tests: random conditions over random GENRES-shaped
  row multisets — the selection vector selects exactly the rows the
  compiled row predicate selects, and satisfies the strictly-increasing
  in-range invariant.
* Differential conformance: every plan of the fixed generated corpus and
  every workload query × all six strategies returns identical results with
  and without the columnar executor (exact against reference, canonical
  against the row strategies — they combine pairs in law-equivalent but
  different orders).
* Structure: selection pushdown produces equivalent plans, never sinking
  through a LeftJoin's right side, a TopK, or a score filter.
* Plumbing: the per-database column-store cache is reused within a version
  and invalidated by DML; unsupported plan nodes fall back to the row
  strategy silently (``stats.mode == "row"``, not degraded).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import (
    ColumnStore,
    column_store_for,
    evaluate_columnar,
    push_selections,
    selection_vector,
)
from repro.columnar.vectorized import check_selection_invariants
from repro.errors import ColumnarUnsupported
from repro.pexec.engine import ExecutionEngine
from repro.pexec.reference import evaluate_reference
from repro.plan.builder import scan
from repro.plan.nodes import (
    Join,
    LeftJoin,
    PlanNode,
    Prefer,
    Relation,
    Select,
    TopK,
)
from repro.engine.expressions import (
    TRUE,
    And,
    Attr,
    Between,
    Comparison,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    cmp,
    col,
    eq,
)
from repro.workloads.queries import all_queries

from tests.conformance import assert_identical
from tests.conftest import build_movie_db
from tests.test_strategy_conformance import PHYSICAL, generated_plan

MOVIE_DB = build_movie_db()
MOVIE_ENGINE = ExecutionEngine(MOVIE_DB)
GENRES_SCHEMA = scan("GENRES").build().schema(MOVIE_DB.catalog)


# ---------------------------------------------------------------------------
# Selection-vector property tests
# ---------------------------------------------------------------------------

GENRE_VALUES = st.sampled_from(["Drama", "Comedy", "Action", None])
ROWS = st.lists(
    st.tuples(st.one_of(st.integers(0, 6), st.none()), GENRE_VALUES),
    min_size=0,
    max_size=20,
)


@st.composite
def conditions(draw):
    """A random condition in the vectorized kernel's supported space."""
    kind = draw(
        st.sampled_from(
            ["eq", "cmp", "eq-flip", "attr-attr", "in", "between", "null", "and", "true"]
        )
    )
    if kind == "eq":
        return eq("GENRES.genre", draw(GENRE_VALUES))
    if kind == "cmp":
        op = draw(st.sampled_from([">", ">=", "<", "<=", "!="]))
        return cmp("GENRES.m_id", op, draw(st.one_of(st.integers(0, 6), st.none())))
    if kind == "eq-flip":
        return Comparison("=", Literal(draw(st.integers(0, 6))), Attr("GENRES.m_id"))
    if kind == "attr-attr":
        op = draw(st.sampled_from(["=", ">", "<="]))
        return Comparison(op, Attr("GENRES.m_id"), Attr("GENRES.m_id"))
    if kind == "in":
        values = draw(st.lists(GENRE_VALUES, min_size=1, max_size=3, unique=True))
        return InList(col("GENRES.genre"), tuple(values))
    if kind == "between":
        low = draw(st.integers(0, 4))
        return Between(col("GENRES.m_id"), low, low + draw(st.integers(0, 3)))
    if kind == "null":
        return IsNull(col("GENRES.genre"), negated=draw(st.booleans()))
    if kind == "and":
        operands = draw(st.lists(conditions(), min_size=2, max_size=3))
        return And(*operands)
    return TRUE


@given(rows=ROWS, condition=conditions())
@settings(max_examples=150, deadline=None)
def test_selection_vector_matches_compiled_predicate(rows, condition):
    store = ColumnStore(rows)
    vector = selection_vector(condition, GENRES_SCHEMA, store)
    if vector is None:  # no kernel for this shape — fallback covers it
        return
    check_selection_invariants(vector, len(rows))
    fn = condition.compile(GENRES_SCHEMA)
    expected = [i for i, row in enumerate(rows) if fn(row)]
    assert vector == expected


def test_selection_vector_unsupported_shapes_return_none():
    store = ColumnStore([(1, "Drama")])
    unsupported = [
        Or(eq("GENRES.m_id", 1), eq("GENRES.m_id", 2)),
        Not(eq("GENRES.m_id", 1)),
    ]
    for condition in unsupported:
        assert selection_vector(condition, GENRES_SCHEMA, store) is None


def test_score_conditions_use_row_path():
    """Score/conf filters never reach the vectorized kernel: ops.select
    routes them through the compiled with-score row predicate."""
    from repro.columnar import ops
    from repro.columnar.column import ColumnarRelation
    from repro.core.scorepair import ScorePair

    rows = [(1, "Drama"), (2, "Comedy"), (3, "Action")]
    pairs = [ScorePair(0.1, 1.0), ScorePair(0.9, 1.0), ScorePair(None, 0.0)]
    relation = ColumnarRelation.from_rows(GENRES_SCHEMA, rows, pairs)
    result = ops.select(relation, cmp("score", ">=", 0.5))
    assert list(result.rows) == [(2, "Comedy")]
    assert result.pairs == [ScorePair(0.9, 1.0)]


# ---------------------------------------------------------------------------
# Differential conformance: serial columnar vs reference and row strategies
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(50))
def test_generated_plans_columnar_exact(seed):
    plan = generated_plan(seed)
    reference = MOVIE_ENGINE.run(plan, "reference")
    columnar = MOVIE_ENGINE.run(plan, "reference", columnar=True)
    assert columnar.stats.mode == "columnar"
    assert_identical(
        reference,
        columnar,
        context=f"seed {seed}",
        labels=("reference", "columnar"),
    )


@pytest.mark.parametrize("workload_query", all_queries(), ids=lambda q: q.name)
def test_workload_queries_columnar_all_strategies(
    workload_query, imdb_tiny, dblp_tiny
):
    db = imdb_tiny if workload_query.dataset == "imdb" else dblp_tiny
    session = workload_query.session(db)
    compiled = session.compile(workload_query.sql)
    reference = session.execute(compiled, strategy="reference")
    columnar = session.execute(compiled, strategy="reference", columnar=True)
    assert columnar.stats.mode == "columnar"
    assert_identical(
        reference,
        columnar,
        context=workload_query.name,
        labels=("reference", "columnar"),
    )
    for strategy in PHYSICAL:
        row = session.execute(compiled, strategy=strategy)
        # Row strategies fold pairs in a different but law-equivalent order:
        # canonical comparison, like the cross-strategy conformance suite.
        assert_identical(
            row,
            columnar,
            exact=False,
            context=f"{workload_query.name} vs {strategy}",
            labels=(strategy, "columnar"),
        )


def test_pushdown_disabled_still_exact():
    for seed in (0, 7, 23, 41):
        plan = MOVIE_ENGINE.prepare(generated_plan(seed))
        with_push = evaluate_columnar(plan, MOVIE_DB, pushdown=True)
        without = evaluate_columnar(plan, MOVIE_DB, pushdown=False)
        assert with_push.rows == without.rows
        assert with_push.pairs == without.pairs


# ---------------------------------------------------------------------------
# Pushdown structure
# ---------------------------------------------------------------------------


def _selects_below_joins(plan: PlanNode) -> int:
    """Count Select nodes that sit strictly below some Join/LeftJoin."""
    count = 0
    for node in plan.walk():
        if isinstance(node, (Join, LeftJoin)):
            for side in node.children():
                count += sum(1 for n in side.walk() if isinstance(n, Select))
    return count


def test_pushdown_sinks_into_join_side():
    plan = Select(
        Join(
            Relation("MOVIES"),
            Relation("GENRES"),
            Comparison("=", Attr("MOVIES.m_id"), Attr("GENRES.m_id")),
        ),
        cmp("MOVIES.year", ">=", 2005),
    )
    pushed = push_selections(plan, MOVIE_DB.catalog)
    assert _selects_below_joins(pushed) == 1
    assert evaluate_reference(pushed, MOVIE_DB.catalog).same_contents(
        evaluate_reference(plan, MOVIE_DB.catalog)
    )


def test_pushdown_never_sinks_into_leftjoin_right_side():
    condition = Comparison("=", Attr("MOVIES.m_id"), Attr("RATINGS.m_id"))
    plan = Select(
        LeftJoin(Relation("MOVIES"), Relation("RATINGS"), condition),
        cmp("RATINGS.votes", ">", 100),
    )
    pushed = push_selections(plan, MOVIE_DB.catalog)
    # the right-side conjunct must stay above the LeftJoin
    assert isinstance(pushed, Select)
    assert isinstance(pushed.child, LeftJoin)
    assert evaluate_reference(pushed, MOVIE_DB.catalog).same_contents(
        evaluate_reference(plan, MOVIE_DB.catalog)
    )


def test_pushdown_keeps_score_filters_in_place():
    from repro.core.preference import Preference

    pref = Preference("pp", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
    plan = Select(Prefer(Relation("GENRES"), pref), cmp("conf", ">=", 0.5))
    pushed = push_selections(
        MOVIE_ENGINE.prepare(plan), MOVIE_DB.catalog
    )
    assert isinstance(pushed, Select)
    assert pushed.condition.references_score()


def test_pushdown_sinks_below_prefer():
    from repro.core.preference import Preference

    pref = Preference("pq", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
    plan = Select(
        Prefer(Relation("GENRES"), pref), eq("GENRES.genre", "Drama")
    )
    pushed = push_selections(MOVIE_ENGINE.prepare(plan), MOVIE_DB.catalog)
    assert isinstance(pushed, Prefer), "plain select should sink below Prefer"


# ---------------------------------------------------------------------------
# Column-store cache
# ---------------------------------------------------------------------------


def test_column_store_cache_reused_and_invalidated():
    db = build_movie_db()
    first = column_store_for(db, "GENRES")
    assert column_store_for(db, "GENRES") is first
    db.insert("GENRES", (5, "Drama"))  # bumps db.version
    rebuilt = column_store_for(db, "GENRES")
    assert rebuilt is not first
    assert len(rebuilt.rows) == len(first.rows) + 1


def test_column_store_lazy_transposition():
    store = ColumnStore([(1, "a"), (2, "b")])
    assert store.materialized_columns() == ()
    assert store.column(1) == ["a", "b"]
    assert store.materialized_columns() == (1,)
    assert store.column(1) is store.column(1)


def test_snapshot_gets_fresh_cache():
    db = build_movie_db()
    column_store_for(db, "GENRES")
    snap = db.snapshot()
    assert snap.columnar_cache == {}
    # snapshot sees the same data through its own store
    assert column_store_for(snap, "GENRES").rows == list(
        db.catalog.table("GENRES").rows
    )


# ---------------------------------------------------------------------------
# Fallback behavior
# ---------------------------------------------------------------------------


class _Opaque(PlanNode):
    """A plan node the columnar executor does not know."""

    def __init__(self, child: PlanNode):
        self.child = child

    def children(self):
        return [self.child]

    def with_children(self, children):
        return _Opaque(children[0])

    def schema(self, catalog):
        return self.child.schema(catalog)

    def __repr__(self) -> str:
        return f"Opaque({self.child!r})"


def test_unknown_node_raises_columnar_unsupported():
    plan = _Opaque(Relation("GENRES"))
    with pytest.raises(ColumnarUnsupported):
        evaluate_columnar(plan, MOVIE_DB, pushdown=False)


def test_engine_falls_back_to_row_on_unsupported(monkeypatch):
    # Simulate a capability miss: every real node type is columnar-supported,
    # so patch the parallel entry point to refuse whatever it is given.
    import repro.pexec.parallel as parallel

    def refuse(*args, **kwargs):
        raise ColumnarUnsupported("patched: no columnar capability")

    monkeypatch.setattr(parallel, "execute_parallel", refuse)
    plan = generated_plan(5)
    reference = MOVIE_ENGINE.run(plan, "reference")
    columnar = MOVIE_ENGINE.run(plan, "reference", columnar=True)
    assert columnar.stats.mode == "row"
    assert not columnar.stats.degraded  # capability miss, not a failure
    assert_identical(reference, columnar, labels=("row", "fallback"))


def test_stats_mode_reports_columnar_on_success():
    plan = generated_plan(3)
    result = MOVIE_ENGINE.run(plan, "reference", columnar=True)
    assert result.stats.mode == "columnar"
    row = MOVIE_ENGINE.run(plan, "reference")
    assert row.stats.mode == "row"


def test_columnar_trace_span_present():
    from repro.obs import Tracer

    tracer = Tracer()
    MOVIE_ENGINE.run(generated_plan(3), "reference", tracer=tracer, columnar=True)
    span = tracer.root.find("engine.columnar")
    assert span is not None
    assert span.attrs.get("mode") == "columnar"
