"""Fallback matrix: every ColumnarUnsupported raise site degrades exactly.

The matrix is grep-driven: the test enumerates every ``raise
ColumnarUnsupported`` site in the source tree and requires a matrix entry
per site.  Adding a new raise site without extending the matrix fails
``test_matrix_covers_every_raise_site`` — the matrix cannot silently rot.

Each entry drives its site end-to-end through the engine and asserts the
contract from the columnar package doc: the capability miss is silent
(``stats.mode == "row"``, not degraded, ``fallback="unsupported"`` on the
trace span) and the answer is byte-identical to the plain row run.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.core.aggregates import F_S
from repro.errors import ColumnarUnsupported
from repro.obs import Tracer
from repro.pexec.engine import ExecutionEngine
from repro.plan.nodes import PlanNode, Relation, Select, TopK
from repro.engine.expressions import Attr, Comparison, Literal

from .conformance import assert_identical

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

RAISE = re.compile(r"raise\s+ColumnarUnsupported")


def _raise_sites() -> set[str]:
    sites: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        if RAISE.search(path.read_text(encoding="utf-8")):
            sites.add(str(path.relative_to(SRC)).replace("\\", "/"))
    return sites


#: path (relative to src/repro) -> plan builder that trips that site.
class _Opaque(PlanNode):
    """A node type the columnar dispatcher has never heard of."""

    def __init__(self, child: PlanNode):
        self.child = child

    def children(self):
        return [self.child]

    def with_children(self, children):
        return _Opaque(children[0])

    def schema(self, catalog):
        return self.child.schema(catalog)

    def __repr__(self) -> str:
        return f"Opaque({self.child!r})"


def _unknown_node_plan() -> PlanNode:
    recent = Comparison(">=", Attr("MOVIES.year"), Literal(2005))
    return TopK(Select(_Opaque(Relation("MOVIES")), recent), 3, "score")


MATRIX = {
    "columnar/executor.py": _unknown_node_plan,
}


def test_matrix_covers_every_raise_site():
    sites = _raise_sites()
    assert sites == set(MATRIX), (
        "ColumnarUnsupported raise sites changed; extend MATRIX with a "
        f"fallback test per site (sites={sorted(sites)})"
    )


@pytest.mark.parametrize("site", sorted(MATRIX))
def test_site_raises_typed_error(site, movie_db):
    from repro.columnar import evaluate_columnar

    plan = MATRIX[site]()
    with pytest.raises(ColumnarUnsupported):
        evaluate_columnar(plan, movie_db, F_S)


@pytest.mark.parametrize("site", sorted(MATRIX))
def test_site_falls_back_byte_identical(site, movie_db, monkeypatch):
    # The trigger plan is by construction unknown to EVERY evaluator, so
    # the end-to-end leg routes the engine's columnar attempt through the
    # genuine raise site: the serial columnar entry point evaluates the
    # trigger plan (raising the real typed error from the real site), and
    # the engine must fall back to the row answer for the actual query —
    # silently, and byte-identical.
    import repro.pexec.parallel as parallel
    from repro.columnar import evaluate_columnar as real_evaluate

    trigger = MATRIX[site]()

    def tripping(plan, db, aggregate=F_S, **kwargs):
        return real_evaluate(trigger, db, aggregate, pushdown=False)

    monkeypatch.setattr(parallel, "evaluate_columnar", tripping)
    engine = ExecutionEngine(movie_db, F_S)
    recent = Comparison(">=", Attr("MOVIES.year"), Literal(2005))
    plan = TopK(Select(Relation("MOVIES"), recent), 3, "score")
    row = engine.run(plan, "reference")
    tracer = Tracer()
    columnar = engine.run(plan, "reference", columnar=True, tracer=tracer)
    assert columnar.stats.mode == "row"
    assert not columnar.stats.degraded  # capability miss, not a failure
    span = tracer.root.find("engine.columnar")
    assert span is not None and span.attrs.get("fallback") == "unsupported"
    assert_identical(row, columnar, labels=("row", "fallback"))


def test_trigger_plans_are_not_partitionable(movie_db):
    # The planner must refuse the trigger plans too (their leaves are not
    # reachable through row-local operators), so a partition-parallel
    # request degrades through the same serial columnar attempt the
    # fallback test exercises — there is no second, unguarded path.
    from repro.pexec.parallel import plan_partitions

    for build in MATRIX.values():
        assert plan_partitions(build(), movie_db.catalog) is None
