"""Concurrency stress: shared stores, concurrent sessions, ambient hygiene.

The invariants under test: no lost updates (every acknowledged mutation is
visible at the end), no torn snapshots (a reader never observes a half-
applied batch), and no cross-query stat bleed (concurrent executions return
exactly the single-threaded oracle's answer).
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Preference, eq
from repro.errors import PreferenceError
from repro.obs import NullTracer, Tracer, capture_tracer, current_tracer, restore_tracer, use_tracer
from repro.query.store import PreferenceStore
from repro.resilience import QueryGuard, capture_guard, current_guard, restore_guard, use_guard

from .conftest import build_movie_db

THREADS = 4
OPS_PER_THREAD = 60


def pref(name: str) -> Preference:
    return Preference(name, "GENRES", eq("genre", "Comedy"), 0.8, 0.9)


# -- interleaved mutations on one shared store ---------------------------------


def test_store_survives_interleaved_mutations():
    """N writers hammer one store; every acknowledged add survives."""
    store = PreferenceStore(build_movie_db())
    barrier = threading.Barrier(THREADS, timeout=10)
    failures: list[BaseException] = []

    def writer(worker: int) -> None:
        user = f"user{worker}"
        try:
            barrier.wait()
            for i in range(OPS_PER_THREAD):
                store.add(user, pref(f"w{worker}_p{i}"))
                if i % 3 == 0:
                    assert store.remove(user, f"w{worker}_p{i}")
                store.preferences_of(user)  # interleave reads with the writes
                store.users()
        except BaseException as err:  # noqa: BLE001 - surfaced to the assert below
            failures.append(err)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not failures, failures
    expected = OPS_PER_THREAD - len(range(0, OPS_PER_THREAD, 3))
    for worker in range(THREADS):
        names = {p.name for p in store.preferences_of(f"user{worker}")}
        assert len(names) == expected  # no lost updates, no ghosts
    assert store.version == THREADS * (OPS_PER_THREAD + len(range(0, OPS_PER_THREAD, 3)))


def test_snapshots_are_never_torn():
    """A writer flips one user between {} and an atomic 3-preference batch;
    snapshot readers must never observe a partial batch."""
    store = PreferenceStore(build_movie_db())
    batch_names = {"a", "b", "c"}
    stop = threading.Event()
    torn: list[set] = []

    def writer() -> None:
        while not stop.is_set():
            store.add_all("flip", [pref(n) for n in sorted(batch_names)])
            store.clear("flip")

    def reader() -> None:
        while not stop.is_set():
            observed = {p.name for p in store.snapshot().preferences_of("flip")}
            if observed not in (set(), batch_names):
                torn.append(observed)
                return

    writer_thread = threading.Thread(target=writer)
    readers = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread.start()
    for r in readers:
        r.start()
    for r in readers:
        r.join(timeout=1.5)  # ~1.5s of churn per reader
    stop.set()
    writer_thread.join(timeout=10)
    assert torn == [], f"snapshot observed a half-applied batch: {torn}"


# -- concurrent query execution ------------------------------------------------


def test_concurrent_sessions_match_single_threaded_oracle():
    """Concurrent Session.execute calls return the solo answer bit-for-bit:
    per-query stats and scores never bleed across threads."""
    db = build_movie_db()
    store = PreferenceStore(db)
    store.add("alice", pref("comedy"))
    store.add("bob", Preference("eastwood", "DIRECTORS", eq("d_id", 1), 0.9, 0.8))
    sql = {
        "alice": "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING comedy",
        "bob": "SELECT title FROM MOVIES NATURAL JOIN DIRECTORS PREFERRING eastwood",
    }

    def answer(user: str):
        result = store.session_for(user).execute(sql[user])
        presented = result.presented()
        cells = [
            (row[0], -1.0 if pair.score is None else pair.score, pair.conf)
            for row, pair in zip(presented.rows, presented.pairs)
        ]
        return result.stats.rows, sorted(cells)

    oracle = {user: answer(user) for user in sql}
    failures: list[str] = []
    barrier = threading.Barrier(THREADS, timeout=10)

    def worker(worker_id: int) -> None:
        user = "alice" if worker_id % 2 == 0 else "bob"
        barrier.wait()
        for _ in range(10):
            if answer(user) != oracle[user]:
                failures.append(f"{user} diverged from the solo answer")
                return

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert failures == []


# -- hypothesis: add_all is transactional --------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    existing=st.lists(
        st.sampled_from("abcdef"), unique=True, max_size=4
    ),
    batch=st.lists(st.sampled_from("abcdefgh"), max_size=6),
)
def test_add_all_is_all_or_nothing(existing, batch):
    store = PreferenceStore(build_movie_db())
    for name in existing:
        store.add("u", pref(name))
    before = {p.name for p in store.preferences_of("u")}
    version_before = store.version

    collides = len(set(batch)) != len(batch) or bool(set(batch) & set(existing))
    if collides:
        with pytest.raises(PreferenceError):
            store.add_all("u", [pref(n) for n in batch])
        assert {p.name for p in store.preferences_of("u")} == before  # rolled back
        assert store.version == version_before
    else:
        store.add_all("u", [pref(n) for n in batch])
        assert {p.name for p in store.preferences_of("u")} == before | set(batch)


# -- ambient-context hygiene across threads ------------------------------------


def test_ambient_context_does_not_cross_threads_without_capture():
    guard = QueryGuard(timeout=60.0)
    tracer = Tracer()
    seen = {}

    def naive_worker() -> None:
        seen["guard"] = current_guard()
        seen["tracer"] = current_tracer()

    with use_guard(guard), use_tracer(tracer):
        t = threading.Thread(target=naive_worker)
        t.start()
        t.join(timeout=5)
    assert seen["guard"] is not guard  # ContextVars stay on their thread...
    assert isinstance(seen["tracer"], NullTracer)


def test_capture_restore_carries_context_into_worker():
    guard = QueryGuard(timeout=60.0)
    tracer = Tracer()
    seen = {}

    with use_guard(guard), use_tracer(tracer):
        handoff = (capture_guard(), capture_tracer())

    def worker() -> None:
        with restore_guard(handoff[0]), restore_tracer(handoff[1]):
            seen["guard"] = current_guard()
            seen["tracer"] = current_tracer()
        seen["after"] = current_guard()

    t = threading.Thread(target=worker)
    t.start()
    t.join(timeout=5)
    assert seen["guard"] is guard  # ...unless explicitly captured and restored
    assert seen["tracer"] is tracer
    assert seen["after"] is not guard  # and the worker is clean afterwards


def test_ambient_reset_survives_exceptions():
    guard = QueryGuard(timeout=60.0)
    baseline = current_guard()
    with pytest.raises(RuntimeError):
        with use_guard(guard):
            assert current_guard() is guard
            raise RuntimeError("query blew up")
    assert current_guard() is baseline  # no stale guard leaks into the next query

    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with use_tracer(tracer):
            raise RuntimeError("traced query blew up")
    assert current_tracer() is not tracer
