"""Optimizer-configuration × strategy matrix: every combination is correct.

GBU and BU run whatever plan the preference optimizer hands them, so each
rule subset must compose soundly with each strategy.  The oracle never goes
through the optimizer, making it a fixed point of comparison.
"""

import pytest

from repro.core.aggregates import F_MAX, F_S
from repro.core.preference import Preference
from repro.engine.expressions import cmp, eq
from repro.optimizer import OptimizerConfig
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan

CONFIGS = {
    "all": OptimizerConfig(),
    "none": OptimizerConfig.none(),
    "no-selections": OptimizerConfig(push_selections=False),
    "no-projections": OptimizerConfig(push_projections=False),
    "no-prefers": OptimizerConfig(push_prefers=False),
    "no-reorder": OptimizerConfig(reorder_prefers=False),
    "no-join-order": OptimizerConfig(match_join_order=False),
    "no-left-deep": OptimizerConfig(left_deep=False),
}


def build_plan(db, p):
    return (
        scan("MOVIES")
        .natural_join(scan("GENRES"), db.catalog)
        .natural_join(scan("DIRECTORS"), db.catalog)
        .select(cmp("year", ">=", 2005))
        .prefer(p["p1"])
        .prefer(p["p2"])
        .prefer(Preference("pm", "MOVIES", cmp("duration", "<", 130), 0.6, 0.7))
        .project(["title", "director", "genre"])
        .top(4, by="score")
        .build()
    )


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("strategy", ["gbu", "bu"])
def test_config_strategy_matrix(movie_db, example_preferences, config_name, strategy):
    plan = build_plan(movie_db, example_preferences)
    oracle = ExecutionEngine(movie_db).run(plan, "reference")
    engine = ExecutionEngine(movie_db, optimizer_config=CONFIGS[config_name])
    result = engine.run(plan, strategy)
    assert result.relation.same_contents(oracle.relation), (config_name, strategy)


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_config_matrix_with_set_operations(movie_db, example_preferences, config_name):
    pm = Preference("pm", "MOVIES", cmp("year", ">", 2006), 0.9, 0.6)
    left = (
        scan("MOVIES").select(cmp("year", ">=", 2005)).prefer(pm).project(["title", "MOVIES.m_id"])
    )
    right = (
        scan("MOVIES").select(cmp("duration", ">=", 120)).prefer(pm).project(["title", "MOVIES.m_id"])
    )
    plan = left.union(right).select(cmp("conf", ">", 0.0)).build()
    oracle = ExecutionEngine(movie_db).run(plan, "reference")
    engine = ExecutionEngine(movie_db, optimizer_config=CONFIGS[config_name])
    for strategy in ("gbu", "bu"):
        result = engine.run(plan, strategy)
        assert result.relation.same_contents(oracle.relation), (config_name, strategy)


@pytest.mark.parametrize("aggregate", [F_S, F_MAX], ids=["F_S", "F_max"])
@pytest.mark.parametrize("strategy", ["gbu", "bu", "ftp", "plugin-rma", "plugin-shared"])
def test_aggregate_strategy_matrix(movie_db, example_preferences, aggregate, strategy):
    plan = build_plan(movie_db, example_preferences)
    oracle = ExecutionEngine(movie_db, aggregate).run(plan, "reference")
    result = ExecutionEngine(movie_db, aggregate).run(plan, strategy)
    assert result.relation.same_contents(oracle.relation)
