"""Unit tests for result conforming and the reference evaluator."""

import pytest

from repro.core.prelation import PRelation
from repro.core.scorepair import ScorePair
from repro.engine.expressions import TRUE, cmp, eq
from repro.errors import ExecutionError
from repro.pexec.conform import conform
from repro.pexec.reference import evaluate_reference
from repro.plan.nodes import (
    Difference,
    Intersect,
    Join,
    Materialized,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)


class TestConform:
    def test_identity_is_cheap(self, movie_db):
        prel = PRelation.from_table(movie_db.table("MOVIES"))
        assert conform(prel, prel.schema) is prel

    def test_reorders_columns(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        permuted = schema.project(["director", "d_id"])
        prel = PRelation(permuted, [("A", 1)], [ScorePair(0.5, 0.5)])
        out = conform(prel, schema)
        assert out.rows == [(1, "A")]
        assert out.pairs == [ScorePair(0.5, 0.5)]

    def test_bare_name_fallback(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        renamed = schema.rename("D")
        prel = PRelation(renamed, [(1, "A")])
        out = conform(prel, schema)
        assert out.rows == [(1, "A")]

    def test_missing_attribute_raises(self, movie_db):
        movies = movie_db.table("MOVIES").schema
        directors = movie_db.table("DIRECTORS").schema
        prel = PRelation(directors, [])
        with pytest.raises(ExecutionError):
            conform(prel, movies)


class TestReferenceEvaluator:
    def test_relation_default_pairs(self, movie_db):
        out = evaluate_reference(Relation("MOVIES"), movie_db.catalog)
        assert len(out) == 5
        assert all(p.is_default for p in out.pairs)

    def test_alias(self, movie_db):
        out = evaluate_reference(Relation("MOVIES", "M"), movie_db.catalog)
        assert out.schema.has("M.title")

    def test_materialized(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        node = Materialized(schema, [(9, "X")])
        out = evaluate_reference(node, movie_db.catalog)
        assert out.rows == [(9, "X")]

    def test_full_pipeline(self, movie_db, example_preferences):
        plan = TopK(
            Project(
                Prefer(
                    Select(Relation("GENRES"), cmp("m_id", ">", 1)),
                    example_preferences["p1"],
                ),
                ["m_id", "genre"],
            ),
            2,
            "score",
        )
        out = evaluate_reference(plan, movie_db.catalog)
        assert len(out) == 2
        assert out.pairs[0] == ScorePair(0.8, 0.9)

    def test_set_operations(self, movie_db):
        recent = Select(Relation("MOVIES"), cmp("year", ">=", 2005))
        drama_ids = Select(Relation("MOVIES"), cmp("duration", ">", 120))
        union = evaluate_reference(Union(recent, drama_ids), movie_db.catalog)
        inter = evaluate_reference(Intersect(recent, drama_ids), movie_db.catalog)
        diff = evaluate_reference(Difference(recent, drama_ids), movie_db.catalog)
        assert len(union) == 5
        assert len(inter) == 2
        assert len(diff) == 2

    def test_unknown_node_rejected(self, movie_db):
        class Strange:
            pass

        with pytest.raises(ExecutionError):
            evaluate_reference(Strange(), movie_db.catalog)


class TestLazyIntermediate:
    def test_to_prelation_requires_rows(self, movie_db):
        from repro.pexec.scorerel import Intermediate

        schema = movie_db.table("MOVIES").schema
        lazy = Intermediate(schema, None, ["MOVIES.m_id"], source=Relation("MOVIES"))
        with pytest.raises(ExecutionError, match="lazy"):
            lazy.to_prelation()

    def test_gbu_forces_lazy_root(self, movie_db, example_preferences):
        """A plan whose root is a prefer over a pure block still yields rows."""
        from repro.pexec.engine import ExecutionEngine

        plan = Prefer(
            Select(Relation("GENRES"), eq("genre", "Comedy")),
            example_preferences["p1"],
        )
        engine = ExecutionEngine(movie_db)
        gbu = engine.run(plan, "gbu")
        ref = engine.run(plan, "reference")
        assert gbu.relation.same_contents(ref.relation)
        assert gbu.stats.rows == 2
