"""Tests for context-dependent preferences (external, ephemeral context)."""

import pytest

from repro.core.context import ContextualPreference, active_preferences
from repro.core.preference import Preference
from repro.engine.expressions import eq
from repro.errors import PreferenceError
from repro.query.session import Session


@pytest.fixture
def comedies():
    return Preference("ctx_comedy", "GENRES", eq("genre", "Comedy"), 0.9, 0.9)


@pytest.fixture
def horror():
    return Preference("ctx_horror", "GENRES", eq("genre", "Horror"), 0.9, 0.9)


class TestActivation:
    def test_mapping_match(self, comedies):
        cp = ContextualPreference(comedies, {"company": "alone"})
        assert cp.is_active({"company": "alone"})
        assert cp.is_active({"company": "alone", "daytime": "evening"})
        assert not cp.is_active({"company": "friends"})
        assert not cp.is_active({})

    def test_mapping_with_alternatives(self, comedies):
        cp = ContextualPreference(comedies, {"daytime": ("morning", "noon")})
        assert cp.is_active({"daytime": "noon"})
        assert not cp.is_active({"daytime": "night"})

    def test_callable_predicate(self, comedies):
        cp = ContextualPreference(comedies, lambda ctx: ctx.get("age", 0) >= 18)
        assert cp.is_active({"age": 30})
        assert not cp.is_active({"age": 12})

    def test_invalid_condition_rejected(self, comedies):
        with pytest.raises(PreferenceError):
            ContextualPreference(comedies, 42)

    def test_name_delegates(self, comedies):
        cp = ContextualPreference(comedies, {})
        assert cp.name == "ctx_comedy"


class TestActivePreferences:
    def test_mixed_resolution(self, comedies, horror):
        plain = Preference("always", "GENRES", eq("genre", "Drama"), 0.5, 0.5)
        candidates = [
            plain,
            ContextualPreference(comedies, {"company": "alone"}),
            ContextualPreference(horror, {"company": "friends"}),
        ]
        alone = active_preferences(candidates, {"company": "alone"})
        assert [p.name for p in alone] == ["always", "ctx_comedy"]
        friends = active_preferences(candidates, {"company": "friends"})
        assert [p.name for p in friends] == ["always", "ctx_horror"]


class TestSessionIntegration:
    """The paper's example: comedies alone, horror with friends."""

    SQL = (
        "SELECT title, genre FROM MOVIES NATURAL JOIN GENRES "
        "WHERE conf > 0 PREFERRING ctx_comedy, ctx_horror"
    )

    def _session(self, movie_db, comedies, horror):
        session = Session(movie_db)
        session.register(ContextualPreference(comedies, {"company": "alone"}))
        session.register(ContextualPreference(horror, {"company": "friends"}))
        return session

    def test_alone_gets_comedies(self, movie_db, comedies, horror):
        session = self._session(movie_db, comedies, horror)
        session.set_context(company="alone")
        rows = session.rows(self.SQL)
        assert rows
        assert all(genre == "Comedy" for _, genre, _, _ in rows)

    def test_friends_get_horror(self, movie_db, comedies, horror):
        session = self._session(movie_db, comedies, horror)
        session.set_context(company="friends")
        rows = session.rows(self.SQL)
        assert rows == []  # the example database has no horror movies

    def test_no_context_no_preferences(self, movie_db, comedies, horror):
        session = self._session(movie_db, comedies, horror)
        rows = session.rows(self.SQL)
        assert rows == []  # neither preference active → conf stays 0

    def test_clear_context(self, movie_db, comedies, horror):
        session = self._session(movie_db, comedies, horror)
        session.set_context(company="alone")
        session.clear_context()
        assert session.rows(self.SQL) == []

    def test_context_change_recompiles(self, movie_db, comedies, horror):
        session = self._session(movie_db, comedies, horror)
        session.set_context(company="alone")
        first = session.rows(self.SQL)
        session.set_context(company="friends")
        second = session.rows(self.SQL)
        assert first and not second
