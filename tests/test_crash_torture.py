"""The crash-torture harness, plus targeted recovery-ordering scenarios.

The harness itself is exercised small here (one in-process round, one
SIGKILL round); the CI crash-torture job runs the full sweep.  The targeted
tests pin the two subtlest recovery orderings: replaying one WAL twice, and
a crash inside checkpoint() between the state flush and the WAL reset.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import DurabilityError, WALPoisoned
from repro.resilience.crashtest import (
    _MUTATION_OPS,
    apply_op,
    base_db,
    mutation_self_check,
    oracle_digests,
    run_crash_torture,
    scripted_ops,
)
from repro.serve.server import CURRENT_FILE, PreferenceServer


class TestScriptedWorkload:
    def test_deterministic_per_seed(self):
        assert scripted_ops(7, 20) == scripted_ops(7, 20)
        assert scripted_ops(7, 20) != scripted_ops(8, 20)

    def test_every_op_changes_the_oracle_state(self):
        # The generator promises no logical no-ops (a remove may *revisit* an
        # earlier state, so only consecutive digests must differ).
        ops = [op for op in scripted_ops(3, 30) if op[0] != "checkpoint"]
        digests = oracle_digests(ops)
        assert len(digests) == len(ops) + 1
        assert all(a != b for a, b in zip(digests, digests[1:]))


class TestTortureHarness:
    def test_small_sweep_recovers_every_crash_point(self, tmp_path):
        report = run_crash_torture(
            seed=11,
            rounds=1,
            ops=10,
            sigkill_rounds=1,
            mutation_check=False,
            directory=str(tmp_path),
        )
        assert report.failures == []
        assert report.crash_points > 0
        assert report.sigkill_kills == report.sigkill_rounds == 1

    def test_mutation_self_check_catches_lossy_replay(self, tmp_path):
        assert any(op[0] == "row.insert" for op in _MUTATION_OPS)
        assert mutation_self_check(str(tmp_path)) is True


class TestReplayIdempotency:
    """Satellite: one WAL replayed twice must land on the same digest."""

    def workload(self, server) -> None:
        for op in scripted_ops(5, 8):
            if op[0] != "checkpoint":  # keep every record in the WAL
                apply_op(server, op)

    def test_two_recoveries_of_the_same_wal_agree(self, tmp_path):
        directory = str(tmp_path)
        server, _ = PreferenceServer.open(directory, initial=base_db())
        self.workload(server)
        live = server.state_digest()
        server.close()

        first, replay_one = PreferenceServer.open(directory, initial=base_db())
        digest_one = first.state_digest()
        first.close()
        # The first recovery replayed but never checkpointed, so the second
        # recovery replays the very same records again.
        second, replay_two = PreferenceServer.open(directory, initial=base_db())
        digest_two = second.state_digest()
        second.close()

        assert replay_one.records == replay_two.records
        assert replay_one.records  # the scenario is vacuous on an empty log
        assert digest_one == digest_two == live


class TestCheckpointCrashWindows:
    """Satellite: crashes inside checkpoint() leave a recoverable cut."""

    def test_crash_after_flush_before_wal_reset(self, tmp_path, monkeypatch):
        directory = str(tmp_path)
        server, _ = PreferenceServer.open(directory, initial=base_db())
        self_ops = scripted_ops(9, 6)
        for op in self_ops:
            if op[0] != "checkpoint":
                apply_op(server, op)
        live = server.state_digest()

        # The new checkpoint and pointer flip land, then the machine dies
        # before the WAL reset: recovery must redo the (now-stale) records
        # onto the new checkpoint idempotently.
        def dying_reset():
            raise OSError("simulated crash before WAL reset")

        monkeypatch.setattr(server.wal, "reset", dying_reset)
        with pytest.raises(OSError):
            server.checkpoint()
        server.close()

        recovered, replay = PreferenceServer.open(directory, initial=base_db())
        assert replay.records  # the old log really was replayed onto the new state
        assert recovered.state_digest() == live
        recovered.close()

    def test_crash_before_pointer_flip_keeps_old_checkpoint(
        self, tmp_path, monkeypatch
    ):
        directory = str(tmp_path)
        server, _ = PreferenceServer.open(directory, initial=base_db())
        for op in scripted_ops(13, 6):
            if op[0] != "checkpoint":
                apply_op(server, op)
        live = server.state_digest()
        with open(os.path.join(directory, CURRENT_FILE), encoding="utf-8") as handle:
            pointer_before = handle.read()

        # Die after the new checkpoint directory is written but before the
        # CURRENT flip: the old checkpoint + full WAL remain authoritative.
        import repro.serve.server as server_module

        def dying_atomic_write(path, data):
            raise DurabilityError("write", path, "simulated crash before flip")

        monkeypatch.setattr(server_module, "_atomic_write", dying_atomic_write)
        with pytest.raises(DurabilityError):
            server.checkpoint()
        monkeypatch.undo()
        server.close()

        with open(os.path.join(directory, CURRENT_FILE), encoding="utf-8") as handle:
            assert handle.read() == pointer_before
        recovered, replay = PreferenceServer.open(directory, initial=base_db())
        assert replay.records
        assert recovered.state_digest() == live
        recovered.close()


class TestServerFailStop:
    def test_wal_append_failure_poisons_the_server(self, tmp_path):
        from repro.resilience.vfs import FaultyVFS, VfsFault, use_vfs

        directory = str(tmp_path)
        server, _ = PreferenceServer.open(directory, initial=base_db())
        # The append's file write is the first faultable op of the insert.
        with use_vfs(FaultyVFS(VfsFault(0, "eio-write"))):
            with pytest.raises(DurabilityError):
                server.insert("MOVIES", (777, "doomed", 2001, 90, 1))
        # Memory is now ahead of disk: the server refuses writes *and* reads.
        with pytest.raises(WALPoisoned):
            server.insert("MOVIES", (778, "after poison", 2001, 90, 1))
        with pytest.raises(WALPoisoned):
            server.snapshot()
        server.close()

        # A fresh open recovers to exactly the acknowledged prefix.
        recovered, _ = PreferenceServer.open(directory, initial=base_db())
        table = recovered.snapshot().db.table("MOVIES")
        assert all(row[0] not in (777, 778) for row in table.rows)
        recovered.close()
