"""Unit tests for the Database facade."""

import pytest

from repro.engine.database import Database
from repro.engine.expressions import cmp, eq
from repro.engine.types import DataType
from repro.errors import CatalogError, ExecutionError
from repro.plan.builder import scan
from repro.plan.nodes import Prefer, Relation


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "T", [("id", DataType.INT), ("v", DataType.INT)], primary_key=["id"]
    )
    database.insert_many("T", [(i, i % 5) for i in range(50)])
    database.analyze()
    return database


class TestDDLAndDML:
    def test_create_and_insert(self, db):
        assert len(db.table("T")) == 50

    def test_table_names_uppercased(self, db):
        assert db.catalog.has_table("t")

    def test_drop(self, db):
        db.drop_table("T")
        with pytest.raises(CatalogError):
            db.table("T")

    def test_single_insert(self, db):
        db.insert("T", (100, 1))
        assert db.table("T").get((100,)) == (100, 1)

    def test_insert_many_rebuilds_indexes(self, db):
        db.create_index("T", "v")
        db.insert_many("T", [(200, 99)])
        index = db.catalog.find_index("T", "v")
        assert index.lookup(99)

    def test_create_table_from_schema(self):
        from repro.engine.schema import make_schema

        database = Database()
        schema = make_schema("U", [("a", DataType.INT)], primary_key=["a"])
        database.create_table_from_schema(schema)
        assert database.catalog.has_table("U")


class TestExecution:
    def test_execute_optimizes_by_default(self, db):
        plan = scan("T").select(eq("v", 3)).build()
        schema, rows = db.execute(plan)
        assert len(rows) == 10

    def test_execute_unoptimized(self, db):
        plan = scan("T").select(eq("v", 3)).build()
        _, rows = db.execute(plan, optimize=False)
        assert len(rows) == 10

    def test_prefer_rejected_natively(self, db):
        from repro.core.preference import Preference
        from repro.engine.expressions import TRUE

        plan = Prefer(Relation("T"), Preference("p", "T", TRUE, 0.5, 0.5))
        with pytest.raises(ExecutionError):
            db.execute(plan)

    def test_explain_native(self, db):
        plan = scan("T").select(eq("v", 3)).build()
        explained = db.explain_native(plan)
        assert explained is not None

    def test_cost_accumulates_and_resets(self, db):
        db.execute(scan("T").build())
        assert db.cost.total_io > 0
        db.reset_cost()
        assert db.cost.total_io == 0

    def test_analyze_updates_stats(self, db):
        db.insert_many("T", [(i, 7) for i in range(1000, 1100)])
        db.analyze("T")
        stats = db.catalog.stats("T")
        assert stats.n_rows == 150
