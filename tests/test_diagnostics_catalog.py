"""The diagnostics catalog is complete, live, and documented.

Every diagnostic code the source tree mentions must exist in
``repro.analysis_static.diagnostics.CATALOG``; every catalog entry must be
referenced somewhere outside the catalog module itself (no dead codes
lingering after a rule is removed); and every entry must appear in
``docs/STATIC_ANALYSIS.md`` so the reference doc cannot drift.  The scan is
textual on purpose — a code constructed dynamically would evade an
AST-level census, and nothing in the tree has a reason to do that.
"""

from __future__ import annotations

import pathlib
import re

from repro.analysis_static.diagnostics import CATALOG, Severity, make_diagnostic

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"
DOCS = ROOT / "docs" / "STATIC_ANALYSIS.md"

CODE = re.compile(r"\b(?:PV|RW|LN|SAN)\d{3}\b")


def _codes_by_file() -> dict[str, set[str]]:
    found: dict[str, set[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        for code in CODE.findall(path.read_text(encoding="utf-8")):
            found.setdefault(code, set()).add(path.name)
    return found


def test_every_mentioned_code_is_catalogued():
    unknown = {
        code: sorted(files)
        for code, files in _codes_by_file().items()
        if code not in CATALOG
    }
    assert not unknown, f"codes used in src but missing from CATALOG: {unknown}"


def test_no_dead_catalog_codes():
    found = _codes_by_file()
    dead = [
        code
        for code in CATALOG
        if not (found.get(code, set()) - {"diagnostics.py"})
    ]
    assert not dead, f"catalogued codes never referenced outside the catalog: {dead}"


def test_every_code_is_documented():
    documented = set(CODE.findall(DOCS.read_text(encoding="utf-8")))
    missing = sorted(set(CATALOG) - documented)
    assert not missing, f"codes missing from docs/STATIC_ANALYSIS.md: {missing}"


def test_catalog_entries_are_wellformed():
    for code, (severity, message) in CATALOG.items():
        assert isinstance(severity, Severity)
        assert message and len(message) > 15, f"{code} needs a real description"


def test_make_diagnostic_rejects_unknown_codes():
    import pytest

    with pytest.raises(KeyError):
        make_diagnostic("PV999", "nope", "here")


def test_family_severity_conventions():
    # PV202 is the one deliberate INFO (capability miss, not a bug); every
    # SAN and LN3xx code is a definite invariant violation.
    assert CATALOG["PV202"][0] is Severity.INFO
    for code, (severity, _) in CATALOG.items():
        if code.startswith("SAN") or code.startswith("LN3"):
            assert severity is Severity.ERROR, code
