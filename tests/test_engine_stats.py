"""Per-query ExecutionStats isolation when one engine is reused.

Regression suite for the shared-CostModel bug: ``ExecutionEngine.run`` used
to charge every query against the database-wide cost accumulator, so stats
objects mutated (grew) across strategy invocations on a reused engine.
Each run now executes against a fresh per-query CostModel that is merged
into ``db.cost`` afterwards.
"""

from __future__ import annotations

import copy

from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan


def _plan(db, example_preferences):
    return (
        scan("MOVIES")
        .natural_join(scan("GENRES"), db.catalog)
        .prefer(example_preferences["p1"])
        .build()
    )


def test_stats_do_not_mutate_across_reused_engine(movie_db, example_preferences):
    engine = ExecutionEngine(movie_db)
    plan = _plan(movie_db, example_preferences)

    first = engine.run(plan, "gbu")
    frozen = copy.deepcopy(first.stats.cost)
    frozen_ops = dict(first.stats.operators)

    # Re-running (same or different strategy) must leave earlier stats alone.
    engine.run(plan, "gbu")
    engine.run(plan, "ftp")
    assert first.stats.cost == frozen
    assert first.stats.operators == frozen_ops


def test_identical_runs_report_identical_costs(movie_db, example_preferences):
    engine = ExecutionEngine(movie_db)
    plan = _plan(movie_db, example_preferences)
    a = engine.run(plan, "gbu")
    b = engine.run(plan, "gbu")
    assert a.stats.cost == b.stats.cost
    assert a.stats.operators == b.stats.operators
    assert a.stats.cost.get("total_io", 0) > 0


def test_interleaved_strategies_stay_isolated(movie_db, example_preferences):
    """Strategy A's counters must not leak into strategy B's stats."""
    engine = ExecutionEngine(movie_db)
    plan = _plan(movie_db, example_preferences)
    baseline = {s: engine.run(plan, s).stats.cost for s in ("gbu", "ftp", "bu")}
    interleaved = {}
    for strategy in ("bu", "gbu", "ftp"):
        interleaved[strategy] = engine.run(plan, strategy).stats.cost
    for strategy, cost in interleaved.items():
        assert cost == baseline[strategy], strategy


def test_db_cost_still_accumulates_across_queries(movie_db, example_preferences):
    """The database-wide accumulator keeps its historical meaning."""
    engine = ExecutionEngine(movie_db)
    plan = _plan(movie_db, example_preferences)
    movie_db.cost.reset()
    a = engine.run(plan, "gbu")
    after_one = movie_db.cost.snapshot()
    b = engine.run(plan, "gbu")
    after_two = movie_db.cost.snapshot()
    assert after_one["total_io"] == a.stats.cost["total_io"]
    assert after_two["total_io"] == a.stats.cost["total_io"] + b.stats.cost["total_io"]


def test_mid_sequence_reset_does_not_corrupt_stats(movie_db, example_preferences):
    """A db.cost.reset() between queries must not touch per-query stats."""
    engine = ExecutionEngine(movie_db)
    plan = _plan(movie_db, example_preferences)
    first = engine.run(plan, "gbu")
    movie_db.cost.reset()
    second = engine.run(plan, "gbu")
    assert first.stats.cost == second.stats.cost
    assert second.stats.cost.get("total_io", 0) > 0
