"""Tests for the exception hierarchy and error surfaces."""

import pytest

from repro.errors import (
    CatalogError,
    CircuitOpen,
    DataCorruption,
    ExecutionError,
    ExpressionError,
    OptimizerError,
    ParseError,
    PlanError,
    PreferenceError,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    ResilienceError,
    ResourceExhausted,
    SchemaError,
    TransientFault,
    TypeError_,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            CatalogError,
            TypeError_,
            ExpressionError,
            PlanError,
            OptimizerError,
            ExecutionError,
            PreferenceError,
            ParseError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_single_catch_at_api_boundary(self, movie_db):
        """One except clause suffices for any library failure."""
        from repro.query.session import Session

        session = Session(movie_db)
        failures = 0
        for bad in (
            "not sql at all",
            "SELECT missing_attr FROM MOVIES",
            "SELECT title FROM NO_SUCH_TABLE",
            "SELECT title FROM MOVIES PREFERRING unknown_pref",
        ):
            try:
                session.execute(bad)
            except ReproError:
                failures += 1
        assert failures == 4


class TestResilienceErrors:
    @pytest.mark.parametrize(
        "exc",
        [QueryTimeout, QueryCancelled, ResourceExhausted, TransientFault,
         CircuitOpen, DataCorruption],
    )
    def test_all_derive_from_resilience_error(self, exc):
        assert issubclass(exc, ResilienceError)
        assert issubclass(exc, ReproError)

    def test_query_timeout_reports_budget_and_elapsed(self):
        err = QueryTimeout(0.5, elapsed=0.7123)
        assert err.timeout == 0.5
        assert "0.500s deadline" in str(err) and "0.712s" in str(err)
        assert "ran" not in str(QueryTimeout(0.5))

    def test_resource_exhausted_carries_budget_fields(self):
        err = ResourceExhausted("tuples", 100, 150)
        assert (err.kind, err.limit, err.used) == ("tuples", 100, 150)
        assert "150 > 100" in str(err)

    def test_transient_fault_names_its_site(self):
        err = TransientFault("iosim.scan")
        assert err.site == "iosim.scan"
        assert "iosim.scan" in str(err)

    def test_circuit_open_names_the_strategy(self):
        assert "'gbu'" in str(CircuitOpen("gbu"))

    def test_data_corruption_location_formats(self):
        assert str(DataCorruption("bad")) == "bad"
        assert str(DataCorruption("bad", path="t.jsonl")).endswith("[t.jsonl]")
        assert str(DataCorruption("bad", path="t.jsonl", line=7)).endswith("[t.jsonl:7]")


class TestParseErrorLocation:
    def test_carries_line_and_column(self):
        err = ParseError("boom", line=3, column=7)
        assert err.line == 3 and err.column == 7
        assert "line 3" in str(err) and "column 7" in str(err)

    def test_location_optional(self):
        err = ParseError("boom")
        assert err.line is None
        assert "line" not in str(err)

    def test_line_without_column(self):
        err = ParseError("boom", line=2)
        assert "line 2" in str(err)
        assert "column" not in str(err)
