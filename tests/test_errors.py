"""Tests for the exception hierarchy and error surfaces."""

import pytest

from repro.errors import (
    CatalogError,
    ExecutionError,
    ExpressionError,
    OptimizerError,
    ParseError,
    PlanError,
    PreferenceError,
    ReproError,
    SchemaError,
    TypeError_,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            CatalogError,
            TypeError_,
            ExpressionError,
            PlanError,
            OptimizerError,
            ExecutionError,
            PreferenceError,
            ParseError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_single_catch_at_api_boundary(self, movie_db):
        """One except clause suffices for any library failure."""
        from repro.query.session import Session

        session = Session(movie_db)
        failures = 0
        for bad in (
            "not sql at all",
            "SELECT missing_attr FROM MOVIES",
            "SELECT title FROM NO_SUCH_TABLE",
            "SELECT title FROM MOVIES PREFERRING unknown_pref",
        ):
            try:
                session.execute(bad)
            except ReproError:
                failures += 1
        assert failures == 4


class TestParseErrorLocation:
    def test_carries_line_and_column(self):
        err = ParseError("boom", line=3, column=7)
        assert err.line == 3 and err.column == 7
        assert "line 3" in str(err) and "column 7" in str(err)

    def test_location_optional(self):
        err = ParseError("boom")
        assert err.line is None
        assert "line" not in str(err)

    def test_line_without_column(self):
        err = ParseError("boom", line=2)
        assert "line 2" in str(err)
        assert "column" not in str(err)
