"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script), "0.001"]
        if script.name == "strategy_comparison.py"
        else [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print something"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "movie_recommendations.py", "dblp_search.py"} <= names
    assert len(EXAMPLES) >= 3
