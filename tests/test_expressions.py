"""Unit tests for the expression AST and compiler."""

import pytest

from repro.engine.expressions import (
    TRUE,
    And,
    Arithmetic,
    Attr,
    Between,
    Comparison,
    Func,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    cmp,
    col,
    conjoin,
    conjuncts,
    eq,
    is_true,
    lit,
    map_attributes,
)
from repro.engine.schema import make_schema
from repro.engine.types import DataType
from repro.errors import ExpressionError

SCHEMA = make_schema(
    "R",
    [("a", DataType.INT), ("b", DataType.FLOAT), ("name", DataType.TEXT)],
    primary_key=["a"],
)


def run(expr, row):
    return expr.compile(SCHEMA)(row)


class TestLeaves:
    def test_literal(self):
        assert run(lit(42), (1, 2.0, "x")) == 42

    def test_attr(self):
        assert run(col("b"), (1, 2.5, "x")) == 2.5

    def test_qualified_attr(self):
        assert run(col("R.name"), (1, 2.5, "x")) == "x"

    def test_unknown_attr_raises_at_compile(self):
        with pytest.raises(Exception):
            col("missing").compile(SCHEMA)


class TestComparisons:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", True), ("<=", True), (">", False), (">=", False)],
    )
    def test_all_operators(self, op, expected):
        expr = Comparison(op, col("a"), lit(5))
        assert run(expr, (3, 0.0, "")) is expected

    def test_equality(self):
        assert run(eq("name", "x"), (1, 0.0, "x")) is True
        assert run(eq("name", "y"), (1, 0.0, "x")) is False

    def test_null_never_compares(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            expr = Comparison(op, col("a"), lit(5))
            assert run(expr, (None, 0.0, "")) is False

    def test_null_on_right_side(self):
        expr = Comparison("<", lit(5), col("a"))
        assert run(expr, (None, 0.0, "")) is False

    def test_attr_to_attr(self):
        expr = Comparison("<", col("a"), col("b"))
        assert run(expr, (1, 2.0, "")) is True
        assert run(expr, (3, 2.0, "")) is False

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("~", col("a"), lit(1))

    def test_negate(self):
        assert cmp("a", "<", 5).negate().op == ">="


class TestBooleans:
    def test_and(self):
        expr = And(cmp("a", ">", 1), cmp("a", "<", 5))
        assert run(expr, (3, 0.0, "")) is True
        assert run(expr, (7, 0.0, "")) is False

    def test_or(self):
        expr = Or(eq("a", 1), eq("a", 2))
        assert run(expr, (2, 0.0, "")) is True
        assert run(expr, (3, 0.0, "")) is False

    def test_not(self):
        assert run(Not(eq("a", 1)), (2, 0.0, "")) is True

    def test_operator_overloads(self):
        expr = eq("a", 1) | (eq("a", 2) & ~eq("name", "no"))
        assert run(expr, (2, 0.0, "yes")) is True
        assert run(expr, (2, 0.0, "no")) is False

    def test_and_flattens(self):
        expr = And(And(eq("a", 1), eq("a", 2)), eq("a", 3))
        assert len(expr.operands) == 3

    def test_three_way_and(self):
        expr = And(cmp("a", ">", 0), cmp("a", "<", 10), eq("name", "x"))
        assert run(expr, (5, 0.0, "x")) is True

    def test_empty_and_rejected(self):
        with pytest.raises(ExpressionError):
            And()


class TestSpecialPredicates:
    def test_in_list(self):
        expr = InList(col("a"), [1, 2, 3])
        assert run(expr, (2, 0.0, "")) is True
        assert run(expr, (9, 0.0, "")) is False

    def test_in_list_null(self):
        assert run(InList(col("a"), [1]), (None, 0.0, "")) is False

    def test_between(self):
        expr = Between(col("a"), 2, 8)
        assert run(expr, (2, 0.0, "")) is True
        assert run(expr, (8, 0.0, "")) is True
        assert run(expr, (9, 0.0, "")) is False
        assert run(expr, (None, 0.0, "")) is False

    def test_is_null(self):
        assert run(IsNull(col("a")), (None, 0.0, "")) is True
        assert run(IsNull(col("a")), (1, 0.0, "")) is False
        assert run(IsNull(col("a"), negated=True), (1, 0.0, "")) is True


class TestArithmetic:
    def test_operations(self):
        assert run(Arithmetic("+", col("a"), lit(1)), (2, 0.0, "")) == 3
        assert run(Arithmetic("-", col("a"), lit(1)), (2, 0.0, "")) == 1
        assert run(Arithmetic("*", col("a"), lit(3)), (2, 0.0, "")) == 6
        assert run(Arithmetic("/", col("a"), lit(4)), (2, 0.0, "")) == 0.5

    def test_null_propagates(self):
        assert run(Arithmetic("+", col("a"), lit(1)), (None, 0.0, "")) is None

    def test_division_by_zero_is_null(self):
        assert run(Arithmetic("/", col("a"), lit(0)), (2, 0.0, "")) is None

    def test_func_abs(self):
        expr = Func("abs", Arithmetic("-", col("a"), lit(10)))
        assert run(expr, (3, 0.0, "")) == 7

    def test_func_null_propagates(self):
        assert run(Func("abs", col("a")), (None, 0.0, "")) is None

    def test_unknown_func_rejected(self):
        with pytest.raises(ExpressionError):
            Func("sqrt", col("a"))


class TestScoreAttributes:
    def test_score_requires_flag(self):
        expr = cmp("score", ">=", 0.5)
        with pytest.raises(ExpressionError):
            expr.compile(SCHEMA)

    def test_score_resolves_with_flag(self):
        expr = cmp("score", ">=", 0.5)
        fn = expr.compile(SCHEMA, with_score=True)
        assert fn((1, 0.0, "x", 0.7, 0.2)) is True
        assert fn((1, 0.0, "x", 0.3, 0.2)) is False

    def test_bottom_score_fails_thresholds(self):
        fn = cmp("score", ">=", 0.0).compile(SCHEMA, with_score=True)
        assert fn((1, 0.0, "x", None, 0.0)) is False

    def test_conf_resolves(self):
        fn = cmp("conf", ">", 0.1).compile(SCHEMA, with_score=True)
        assert fn((1, 0.0, "x", None, 0.5)) is True

    def test_references_score(self):
        assert cmp("score", ">", 0.5).references_score()
        assert (eq("a", 1) & cmp("conf", ">", 0)).references_score()
        assert not eq("a", 1).references_score()


class TestHelpers:
    def test_conjuncts_splits_ands(self):
        parts = conjuncts(And(eq("a", 1), And(eq("a", 2), eq("a", 3))))
        assert len(parts) == 3

    def test_conjuncts_atom(self):
        assert conjuncts(eq("a", 1)) == [eq("a", 1)]

    def test_conjoin_drops_true(self):
        assert conjoin([TRUE, eq("a", 1)]) == eq("a", 1)
        assert is_true(conjoin([]))
        assert is_true(conjoin([TRUE, TRUE]))

    def test_attributes_collection(self):
        expr = And(eq("a", 1), Comparison("<", col("R.b"), col("a")))
        assert expr.attributes() == {"a", "r.b"}

    def test_structural_equality(self):
        assert eq("a", 1) == eq("a", 1)
        assert eq("a", 1) != eq("a", 2)
        assert hash(eq("a", 1)) == hash(eq("A", 1))

    def test_and_equality_is_order_insensitive(self):
        assert And(eq("a", 1), eq("a", 2)) == And(eq("a", 2), eq("a", 1))


class TestMapAttributes:
    def test_qualifies_attrs(self):
        expr = And(eq("a", 1), Comparison("<", col("b"), lit(2)))
        mapped = map_attributes(expr, lambda name: f"R.{name}")
        assert mapped.attributes() == {"r.a", "r.b"}

    def test_identity_mapping_returns_equal_tree(self):
        expr = InList(col("a"), [1, 2])
        assert map_attributes(expr, lambda n: n) == expr

    def test_deep_structures(self):
        expr = Or(
            Not(Between(col("a"), 1, 2)),
            IsNull(Func("abs", Arithmetic("*", col("b"), lit(2.0)))),
        )
        mapped = map_attributes(expr, str.upper)
        assert mapped.attributes() == {"a", "b"}  # attributes() lowercases
        assert repr(mapped).count("A") >= 1
