"""Tests for graceful degradation: retry, circuit breakers, strategy fallback."""

import pytest

from repro.errors import CircuitOpen, DataCorruption, TransientFault
from repro.obs import Tracer
from repro.query.session import Session
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    QueryGuard,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.resilience.policy import DEFAULT_FALLBACK


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_exponential_schedule_with_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert [policy.backoff(k) for k in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.5]

    def test_pause_sleeps_the_backoff(self):
        naps = []
        policy = RetryPolicy(base_delay=0.1, sleep=naps.append)
        policy.pause(2)
        assert naps == [pytest.approx(0.2)]

    def test_pause_clamps_to_guard_deadline(self):
        naps = []
        policy = RetryPolicy(base_delay=10.0, sleep=naps.append)
        clock = FakeClock()
        guard = QueryGuard(timeout=0.5, clock=clock)
        clock.advance(0.4)
        policy.pause(1, guard)
        assert naps == [pytest.approx(0.1)]

    def test_pause_skipped_when_deadline_spent(self):
        naps = []
        policy = RetryPolicy(base_delay=10.0, sleep=naps.append)
        clock = FakeClock()
        guard = QueryGuard(timeout=0.5, clock=clock)
        clock.advance(2.0)
        policy.pause(1, guard)
        assert naps == []


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        breaker = CircuitBreaker(threshold=3, cooldown=30.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_half_open_after_cooldown_then_close_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(31.0)
        assert breaker.state == "half-open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.failures == 0

    def test_half_open_reopens_on_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=30.0, clock=clock)
        breaker.record_failure()
        clock.advance(31.0)
        breaker.record_failure()
        assert breaker.state == "open"


class TestResiliencePolicy:
    def test_chain_starts_at_requested_strategy(self):
        policy = ResiliencePolicy()
        assert policy.chain_for("gbu") == list(DEFAULT_FALLBACK)
        assert policy.chain_for("ftp") == ["ftp", "reference"]
        assert policy.chain_for("reference") == ["reference"]

    def test_unknown_strategy_is_prepended(self):
        policy = ResiliencePolicy()
        assert policy.chain_for("plugin-rma") == ["plugin-rma", *DEFAULT_FALLBACK]

    def test_breakers_are_lazy_and_per_strategy(self):
        policy = ResiliencePolicy()
        assert policy.breaker_states() == {}
        assert policy.breaker("gbu") is policy.breaker("gbu")
        assert policy.breaker("gbu") is not policy.breaker("bu")
        assert policy.breaker_states() == {"bu": "closed", "gbu": "closed"}

    def test_breakers_can_be_disabled(self):
        policy = ResiliencePolicy(breaker_threshold=None)
        assert policy.breaker("gbu") is None


SQL = "SELECT title FROM MOVIES PREFERRING p5 TOP 3 BY score"


def instant_policy(**kw) -> ResiliencePolicy:
    return ResiliencePolicy(
        retry=RetryPolicy(base_delay=0.0, sleep=lambda _s: None), **kw
    )


@pytest.fixture
def session(movie_db, example_preferences) -> Session:
    session = Session(movie_db)
    session.register(example_preferences["p5"])
    return session


class TestEngineFallback:
    def test_transient_fault_is_retried_and_marked_degraded(self, session):
        clean = session.execute(SQL)
        tracer = Tracer()
        result = session.execute(
            SQL,
            tracer=tracer,
            faults=FaultPlan.transient("iosim.scan", times=1),
            resilience=instant_policy(),
        )
        assert clean.relation.same_contents(result.relation)
        assert result.stats.degraded is True
        assert result.stats.attempts == 2
        assert any("iosim.scan" in failure for failure in result.stats.failures)
        assert "degraded" in result.stats.summary()

    def test_degradation_recorded_on_the_trace(self, session):
        tracer = Tracer()
        result = session.execute(
            SQL,
            tracer=tracer,
            faults=FaultPlan.transient("iosim.scan", times=1),
            resilience=instant_policy(),
        )
        span = result.stats.trace
        assert span.attrs["degraded"] is True
        assert "iosim.scan" in span.attrs["failure_cause"]
        assert span.attrs["failures"] == result.stats.failures

    def test_persistently_failing_strategy_falls_back(self, session):
        clean = session.execute(SQL, strategy="bu")
        result = session.execute(
            SQL,
            strategy="gbu",
            faults=FaultPlan.transient("strategy.gbu", times=None),
            resilience=instant_policy(),
        )
        assert clean.relation.same_contents(result.relation)
        assert result.stats.degraded
        assert any("gbu" in failure for failure in result.stats.failures)

    def test_corruption_is_retried_then_recovered(self, session):
        clean = session.execute(SQL, strategy="reference")
        result = session.execute(
            SQL,
            strategy="reference",  # last rung: recovery must come from retry
            faults=FaultPlan.corrupting(times=1),
            resilience=instant_policy(),
        )
        assert clean.relation.same_contents(result.relation)
        assert result.stats.degraded
        assert any("DataCorruption" in failure for failure in result.stats.failures)

    def test_chain_exhaustion_raises_the_last_typed_error(self, session):
        with pytest.raises(TransientFault):
            session.execute(
                SQL,
                faults=FaultPlan.transient("strategy.*", times=None),
                resilience=instant_policy(),
            )

    def test_open_breaker_skips_the_strategy(self, session):
        policy = instant_policy(breaker_threshold=1, breaker_cooldown=3600.0)
        policy.breaker("gbu").record_failure()  # force the gbu circuit open
        result = session.execute(SQL, strategy="gbu", resilience=policy)
        assert result.stats.degraded
        assert "gbu: circuit open" in result.stats.failures

    def test_all_breakers_open_raises_circuit_open(self, session):
        policy = instant_policy(breaker_threshold=1, breaker_cooldown=3600.0)
        for strategy in DEFAULT_FALLBACK:
            policy.breaker(strategy).record_failure()
        with pytest.raises(CircuitOpen):
            session.execute(SQL, resilience=policy)

    def test_repeated_failures_open_the_breaker(self, session):
        policy = instant_policy(breaker_threshold=2, breaker_cooldown=3600.0)
        plan = FaultPlan.transient("strategy.gbu", times=None)
        session.execute(SQL, faults=plan, resilience=policy)
        assert policy.breaker_states()["gbu"] == "open"

    def test_clean_run_is_not_degraded(self, session):
        result = session.execute(SQL, resilience=instant_policy())
        assert result.stats.degraded is False
        assert result.stats.attempts == 1
        assert result.stats.failures == []

    def test_session_level_policy_applies(self, movie_db, example_preferences):
        session = Session(movie_db, resilience=instant_policy())
        session.register(example_preferences["p5"])
        result = session.execute(SQL, faults=FaultPlan.transient("iosim.scan", times=1))
        assert result.stats.degraded

    def test_fallback_disabled_without_policy(self, session):
        with pytest.raises(TransientFault):
            session.execute(SQL, faults=FaultPlan.transient("iosim.scan", times=1))
