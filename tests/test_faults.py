"""Tests for deterministic fault injection (FaultSpec / FaultPlan)."""

import pytest

from repro.errors import DataCorruption, TransientFault
from repro.query.session import Session
from repro.resilience import FaultPlan, FaultSpec, use_faults
from repro.resilience.faults import NULL_FAULTS, current_faults


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec("iosim.scan", "explode")

    def test_exact_and_prefix_matching(self):
        exact = FaultSpec("iosim.scan")
        assert exact.matches("iosim.scan")
        assert not exact.matches("iosim.scan2")
        prefix = FaultSpec("strategy.*")
        assert prefix.matches("strategy.gbu")
        assert prefix.matches("strategy.reference")
        assert not prefix.matches("native.dispatch")


class TestFaultPlan:
    def test_transient_fires_limited_times(self):
        plan = FaultPlan.transient("iosim.scan", times=2)
        for _ in range(2):
            with pytest.raises(TransientFault):
                plan.at("iosim.scan")
        plan.at("iosim.scan")  # budget exhausted: no more failures
        assert len(plan.injections) == 2
        assert all(i.site == "iosim.scan" for i in plan.injections)

    def test_transient_error_is_typed_with_site(self):
        plan = FaultPlan.transient("native.dispatch")
        with pytest.raises(TransientFault) as excinfo:
            plan.at("native.dispatch")
        assert excinfo.value.site == "native.dispatch"

    def test_after_skips_early_hits(self):
        plan = FaultPlan([FaultSpec("s", after=2)])
        plan.at("s")
        plan.at("s")
        with pytest.raises(TransientFault):
            plan.at("s")

    def test_other_sites_untouched(self):
        plan = FaultPlan.transient("iosim.scan")
        plan.at("native.dispatch")
        plan.at("strategy.gbu")
        assert plan.injections == []

    def test_latency_calls_injected_sleep(self):
        naps = []
        plan = FaultPlan(
            [FaultSpec("iosim.scan", "latency", delay=0.25, times=3)],
            sleep=naps.append,
        )
        for _ in range(5):
            plan.at("iosim.scan")
        assert naps == [0.25, 0.25, 0.25]

    def test_probability_is_seed_deterministic(self):
        def firing_pattern(seed: int) -> list[bool]:
            plan = FaultPlan(
                [FaultSpec("s", probability=0.5, times=None)], seed=seed
            )
            pattern = []
            for _ in range(32):
                try:
                    plan.at("s")
                    pattern.append(False)
                except TransientFault:
                    pattern.append(True)
            return pattern

        assert firing_pattern(7) == firing_pattern(7)
        assert any(firing_pattern(7))  # p=0.5 over 32 draws: some fire...
        assert not all(firing_pattern(7))  # ...and some don't

    def test_corrupts_consumes_its_budget(self):
        plan = FaultPlan.corrupting()
        assert plan.corrupts("pexec.scores")
        assert not plan.corrupts("pexec.scores")

    def test_pick_is_deterministic_per_seed(self):
        a = FaultPlan(seed=3)
        b = FaultPlan(seed=3)
        assert [a.pick(10) for _ in range(8)] == [b.pick(10) for _ in range(8)]

    def test_reset_rewinds_to_seed_state(self):
        plan = FaultPlan.transient("s", times=1, seed=5)
        with pytest.raises(TransientFault):
            plan.at("s")
        plan.at("s")
        plan.reset()
        assert plan.injections == []
        with pytest.raises(TransientFault):
            plan.at("s")

    def test_null_faults_noop(self):
        assert NULL_FAULTS.enabled is False
        NULL_FAULTS.at("anything")
        assert not NULL_FAULTS.corrupts()

    def test_ambient_plan_contextvar(self):
        assert current_faults() is NULL_FAULTS
        plan = FaultPlan.transient("s")
        with use_faults(plan):
            assert current_faults() is plan
        assert current_faults() is NULL_FAULTS


SQL = "SELECT title FROM MOVIES PREFERRING p5 TOP 3 BY score"


@pytest.fixture
def session(movie_db, example_preferences) -> Session:
    session = Session(movie_db)
    session.register(example_preferences["p5"])
    return session


class TestEngineIntegration:
    def test_page_read_fault_surfaces_typed(self, session):
        with pytest.raises(TransientFault):
            session.execute(SQL, faults=FaultPlan.transient("iosim.scan"))

    def test_dispatch_fault_surfaces_typed(self, session):
        with pytest.raises(TransientFault):
            session.execute(SQL, faults=FaultPlan.transient("native.dispatch"))

    @pytest.mark.parametrize(
        "strategy,site",
        [
            ("gbu", "strategy.gbu"),
            ("bu", "strategy.bu"),
            ("ftp", "strategy.ftp"),
            ("plugin-rma", "strategy.plugin"),
            ("plugin-shared", "strategy.plugin"),
            ("reference", "strategy.reference"),
        ],
    )
    def test_each_strategy_exposes_its_site(self, session, strategy, site):
        with pytest.raises(TransientFault) as excinfo:
            session.execute(SQL, strategy=strategy, faults=FaultPlan.transient(site))
        assert excinfo.value.site == site

    def test_score_corruption_is_caught_by_integrity_gate(self, session):
        with pytest.raises(DataCorruption) as excinfo:
            session.execute(SQL, faults=FaultPlan.corrupting())
        assert "invalid score pair" in str(excinfo.value)

    def test_exhausted_plan_leaves_results_exact(self, session):
        plan = FaultPlan.transient("iosim.scan", times=1)
        with pytest.raises(TransientFault):
            session.execute(SQL, faults=plan)
        clean = session.execute(SQL)
        faulted = session.execute(SQL, faults=plan)  # budget already spent
        assert clean.relation.same_contents(faulted.relation)
