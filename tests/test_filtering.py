"""Unit tests for filtering preferred tuples (Section V flavours)."""

import pytest

from repro.core.prelation import PRelation
from repro.core.preference import Preference
from repro.core.scorepair import IDENTITY, ScorePair
from repro.engine.expressions import cmp, eq
from repro.engine.schema import make_schema
from repro.engine.types import DataType
from repro.errors import ExecutionError
from repro.filtering import (
    conf_at_least,
    matched_any,
    ranked,
    satisfies_at_least,
    score_at_least,
    skyline,
    skyline_pairs,
    topk,
)

SCHEMA = make_schema(
    "R",
    [("id", DataType.INT), ("x", DataType.INT), ("y", DataType.INT)],
    primary_key=["id"],
)


def rel(entries):
    rows = [e[0] for e in entries]
    pairs = [ScorePair(e[1], e[2]) for e in entries]
    return PRelation(SCHEMA, rows, pairs)


@pytest.fixture
def sample():
    return rel(
        [
            ((1, 10, 1), 0.9, 0.5),
            ((2, 20, 2), 0.7, 0.9),
            ((3, 30, 3), None, 0.0),
            ((4, 40, 4), 0.7, 0.3),
            ((5, 50, 5), 0.2, 1.5),
        ]
    )


class TestTopK:
    def test_by_score(self, sample):
        out = topk(sample, 2, by="score")
        assert [r[0] for r in out.rows] == [1, 2]

    def test_by_conf(self, sample):
        out = topk(sample, 2, by="conf")
        assert [r[0] for r in out.rows] == [5, 2]

    def test_bottom_ranks_last(self, sample):
        out = topk(sample, 5, by="score")
        assert out.rows[-1][0] == 3

    def test_k_larger_than_input(self, sample):
        assert len(topk(sample, 100)) == 5

    def test_deterministic_tie_break(self):
        tied = rel([((2, 9, 9), 0.5, 0.5), ((1, 9, 9), 0.5, 0.5)])
        out = topk(tied, 1)
        assert out.rows[0][0] == 1  # smaller id wins the tie

    def test_tie_break_is_column_order_invariant(self):
        """Permuting columns must not change who survives the cut."""
        a = rel([((1, 7, 100), 0.5, 0.5), ((2, 3, 1), 0.5, 0.5)])
        permuted_schema = SCHEMA.project(["y", "x", "id"])
        b = PRelation(
            permuted_schema,
            [(100, 7, 1), (1, 3, 2)],
            [ScorePair(0.5, 0.5), ScorePair(0.5, 0.5)],
        )
        kept_a = topk(a, 1).rows[0][0]        # id column is first
        kept_b = topk(b, 1).rows[0][2]        # id column is last
        assert kept_a == kept_b

    def test_invalid_arguments(self, sample):
        with pytest.raises(ExecutionError):
            topk(sample, 0)
        with pytest.raises(ExecutionError):
            topk(sample, 3, by="id")


class TestRanked:
    def test_full_ordering(self, sample):
        out = ranked(sample, by="score")
        assert [r[0] for r in out.rows] == [1, 2, 4, 5, 3]

    def test_size_preserved(self, sample):
        assert len(ranked(sample, "conf")) == 5

    def test_invalid_key(self, sample):
        with pytest.raises(ExecutionError):
            ranked(sample, "x")


class TestThresholds:
    def test_score_at_least(self, sample):
        out = score_at_least(sample, 0.7)
        assert {r[0] for r in out.rows} == {1, 2, 4}

    def test_bottom_fails_score_threshold(self, sample):
        out = score_at_least(sample, 0.0)
        assert 3 not in {r[0] for r in out.rows}

    def test_conf_at_least(self, sample):
        out = conf_at_least(sample, 0.9)
        assert {r[0] for r in out.rows} == {2, 5}

    def test_matched_any(self, sample):
        out = matched_any(sample)
        assert {r[0] for r in out.rows} == {1, 2, 4, 5}


class TestSatisfiesAtLeast:
    def test_counts_preferences(self, sample):
        prefs = [
            Preference("a", "R", cmp("x", ">=", 20), 0.5, 0.5),
            Preference("b", "R", cmp("y", ">=", 4), 0.5, 0.5),
        ]
        out = satisfies_at_least(sample, prefs, 2)
        assert {r[0] for r in out.rows} == {4, 5}
        out1 = satisfies_at_least(sample, prefs, 1)
        assert {r[0] for r in out1.rows} == {2, 3, 4, 5}

    def test_foreign_preferences_ignored(self, sample):
        prefs = [Preference("c", "S", eq("unknown_attr", 1), 0.5, 0.5)]
        out = satisfies_at_least(sample, prefs, 1)
        assert len(out) == 0


class TestSkyline:
    def test_pair_skyline(self, sample):
        out = skyline_pairs(sample)
        # ⟨0.9,0.5⟩, ⟨0.7,0.9⟩ and ⟨0.2,1.5⟩ are mutually incomparable;
        # ⟨0.7,0.3⟩ is dominated by ⟨0.7,0.9⟩, ⟨⊥,0⟩ by everything.
        assert {r[0] for r in out.rows} == {1, 2, 5}

    def test_attribute_skyline(self):
        data = rel(
            [
                ((1, 5, 5), None, 0.0),
                ((2, 3, 9), None, 0.0),
                ((3, 2, 2), None, 0.0),   # dominated by (5,5)
                ((4, 9, 1), None, 0.0),
            ]
        )
        out = skyline(data, ["x", "y"])
        assert {r[0] for r in out.rows} == {1, 2, 4}

    def test_skyline_nulls_dropped(self):
        data = rel([((1, 5, 5), None, 0.0), ((2, None, 9), None, 0.0)])
        out = skyline(data, ["x", "y"])
        assert {r[0] for r in out.rows} == {1}

    def test_skyline_requires_dimensions(self, sample):
        with pytest.raises(ExecutionError):
            skyline(sample, [])

    def test_equal_points_both_survive(self):
        data = rel([((1, 5, 5), None, 0.0), ((2, 5, 5), None, 0.0)])
        out = skyline(data, ["x", "y"])
        assert len(out) == 2
