"""White-box tests for GBU's deferral machinery."""

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import cmp, eq
from repro.pexec.batchscore import use_batch_scoring
from repro.pexec.group_bottom_up import _Evaluator
from repro.pexec.scorerel import Intermediate
from repro.core.aggregates import F_S
from repro.plan.builder import scan
from repro.plan.analysis import qualify_preferences


def run_gbu_evaluator(db, plan):
    evaluator = _Evaluator(db, F_S)
    deferred = evaluator.evaluate(plan)
    result = evaluator.force(deferred)
    return evaluator, result


class TestEmbeddedRegistry:
    def test_entries_consumed_by_force(self, movie_db, example_preferences):
        """Alg. 2 removes executed operators from G — and stale id() entries
        would risk colliding with later allocations (regression test)."""
        plan = qualify_preferences(
            (
                scan("MOVIES")
                .natural_join(scan("GENRES").prefer(example_preferences["p1"]), movie_db.catalog)
                .natural_join(
                    scan("DIRECTORS").prefer(example_preferences["p2"]), movie_db.catalog
                )
                .build()
            ),
            movie_db.catalog,
        )
        evaluator, result = run_gbu_evaluator(movie_db, plan)
        assert evaluator.embedded == {}
        assert result.rows is not None

    def test_score_select_forces_consumption(self, movie_db, example_preferences):
        plan = qualify_preferences(
            (
                scan("GENRES")
                .prefer(example_preferences["p1"])
                .select(cmp("conf", ">", 0.5))
                .build()
            ),
            movie_db.catalog,
        )
        evaluator, result = run_gbu_evaluator(movie_db, plan)
        assert evaluator.embedded == {}
        assert len(result.rows) == 2


class TestLazyPreferBlocks:
    def test_prefer_over_pure_block_stays_lazy(self, movie_db, example_preferences):
        plan = qualify_preferences(
            scan("GENRES").select(eq("m_id", 4)).prefer(example_preferences["p1"]).build(),
            movie_db.catalog,
        )
        evaluator = _Evaluator(movie_db, F_S)
        value = evaluator.evaluate(plan)
        assert isinstance(value, Intermediate)
        assert value.rows is None          # nothing materialized yet
        assert value.source is not None
        assert value.scores                # but the score relation exists

    def test_prefer_chain_shares_one_block(self, movie_db, example_preferences):
        drama = Preference("drama", "GENRES", eq("genre", "Drama"), 0.4, 0.5)
        plan = qualify_preferences(
            scan("GENRES").prefer(example_preferences["p1"]).prefer(drama).build(),
            movie_db.catalog,
        )
        evaluator = _Evaluator(movie_db, F_S)
        value = evaluator.evaluate(plan)
        assert isinstance(value, Intermediate)
        # Fused batch scoring runs the chain's block once and keeps its rows
        # (a later force() is then free); both preferences share that pass.
        assert value.rows is not None
        assert value.source is not None
        # Both preferences' entries accumulated into the same score relation.
        assert len(value.scores) == 6
        with use_batch_scoring(False):
            lazy = _Evaluator(movie_db, F_S).evaluate(plan)
        assert lazy.rows is None  # the unfused reference path stays lazy
        assert lazy.scores == value.scores  # and scores agree exactly

    def test_forcing_lazy_materializes(self, movie_db, example_preferences):
        plan = qualify_preferences(
            scan("GENRES").prefer(example_preferences["p1"]).build(), movie_db.catalog
        )
        evaluator = _Evaluator(movie_db, F_S)
        value = evaluator.evaluate(plan)
        forced = evaluator.force(value)
        assert forced.rows is not None
        assert len(forced.rows) == 6
        assert forced.scores == value.scores


class TestBlockKeyAttrs:
    def test_leaf_primary_keys(self, movie_db, example_preferences):
        evaluator = _Evaluator(movie_db, F_S)
        block = scan("GENRES").select(eq("genre", "Drama")).build()
        key_attrs = evaluator._block_key_attrs(block, block.schema(movie_db.catalog))
        assert key_attrs == ["GENRES.m_id", "GENRES.genre"]

    def test_join_block_concatenates_keys(self, movie_db):
        block = (
            scan("MOVIES").natural_join(scan("DIRECTORS"), movie_db.catalog).build()
        )
        evaluator = _Evaluator(movie_db, F_S)
        key_attrs = evaluator._block_key_attrs(block, block.schema(movie_db.catalog))
        assert set(key_attrs) == {"MOVIES.m_id", "DIRECTORS.d_id"}

    def test_missing_keys_fall_back_to_full_row(self, movie_db):
        block = scan("MOVIES").project(["title"]).build()
        evaluator = _Evaluator(movie_db, F_S)
        key_attrs = evaluator._block_key_attrs(block, block.schema(movie_db.catalog))
        assert key_attrs == ["MOVIES.title"]
