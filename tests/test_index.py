"""Unit tests for hash and ordered indexes."""

import pytest

from repro.engine.index import HashIndex, OrderedIndex, build_index
from repro.engine.schema import make_schema
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import CatalogError


@pytest.fixture
def table() -> Table:
    schema = make_schema(
        "T",
        [("id", DataType.INT), ("k", DataType.INT), ("g", DataType.TEXT)],
        primary_key=["id"],
    )
    t = Table(schema)
    t.insert_many(
        [
            (1, 10, "a"),
            (2, 20, "b"),
            (3, 10, "a"),
            (4, 30, None),
            (5, None, "c"),
        ]
    )
    return t


class TestHashIndex:
    def test_lookup(self, table):
        index = HashIndex(table, ["k"])
        assert {r[0] for r in index.lookup(10)} == {1, 3}
        assert index.lookup(99) == []

    def test_null_keys_are_searchable(self, table):
        index = HashIndex(table, ["k"])
        assert [r[0] for r in index.lookup(None)] == [5]

    def test_composite(self, table):
        index = HashIndex(table, ["k", "g"])
        assert [r[0] for r in index.lookup((10, "a"))] == [1, 3]

    def test_distinct_keys(self, table):
        assert HashIndex(table, ["g"]).distinct_keys() == 4  # a, b, None, c


class TestOrderedIndex:
    def test_equality_lookup(self, table):
        index = OrderedIndex(table, ["k"])
        assert {r[0] for r in index.lookup(10)} == {1, 3}

    def test_null_excluded(self, table):
        index = OrderedIndex(table, ["k"])
        assert index.lookup(None) == []

    def test_range_inclusive(self, table):
        index = OrderedIndex(table, ["k"])
        assert {r[0] for r in index.range(low=10, high=20)} == {1, 2, 3}

    def test_range_exclusive(self, table):
        index = OrderedIndex(table, ["k"])
        assert {r[0] for r in index.range(low=10, low_inclusive=False)} == {2, 4}

    def test_open_bounds(self, table):
        index = OrderedIndex(table, ["k"])
        assert {r[0] for r in index.range()} == {1, 2, 3, 4}
        assert {r[0] for r in index.range(high=10)} == {1, 3}

    def test_distinct_keys(self, table):
        assert OrderedIndex(table, ["k"]).distinct_keys() == 3


class TestBuildIndex:
    def test_factory_kinds(self, table):
        assert isinstance(build_index(table, "k", "hash"), HashIndex)
        assert isinstance(build_index(table, "k", "btree"), OrderedIndex)

    def test_string_attr_accepted(self, table):
        index = build_index(table, "g")
        assert index.attrs == ("g",)

    def test_unknown_kind_rejected(self, table):
        with pytest.raises(CatalogError):
            build_index(table, "k", "bitmap")

    def test_empty_attrs_rejected(self, table):
        with pytest.raises(CatalogError):
            build_index(table, [], "hash")

    def test_name(self, table):
        assert build_index(table, "k").name == "hash:T(k)"


class TestIncrementalAdd:
    """Single-row inserts must keep secondary indexes current: a stale index
    silently drops rows from any plan that uses an index access path."""

    def test_hash_add(self, table):
        index = HashIndex(table, ["k"])
        row = table.insert((6, 10, "z"))
        index.add(row)
        assert {r[0] for r in index.lookup(10)} == {1, 3, 6}

    def test_ordered_add_keeps_sort_order(self, table):
        index = OrderedIndex(table, ["k"])
        index.add(table.insert((6, 15, "z")))
        index.add(table.insert((7, 5, "z")))
        assert index._keys == sorted(index._keys)
        assert {r[0] for r in index.range(low=5, high=15)} == {1, 3, 6, 7}

    def test_ordered_add_skips_null_keys(self, table):
        index = OrderedIndex(table, ["k"])
        before = list(index._keys)
        index.add(table.insert((6, None, "z")))
        assert index._keys == before

    def test_database_insert_maintains_indexes(self):
        from repro.engine.database import Database

        db = Database()
        db.create_table(
            "T",
            [("id", DataType.INT), ("k", DataType.INT)],
            primary_key=["id"],
        )
        db.insert_many("T", [(1, 10), (2, 20)])
        hash_index = db.create_index("T", "k", "hash")
        btree_index = db.create_index("T", "k", "btree")
        db.insert("T", (3, 10))
        assert {r[0] for r in hash_index.lookup(10)} == {1, 3}
        assert {r[0] for r in btree_index.lookup(10)} == {1, 3}

    def test_snapshot_indexes_unaffected_by_live_insert(self):
        from repro.engine.database import Database

        db = Database()
        db.create_table(
            "T",
            [("id", DataType.INT), ("k", DataType.INT)],
            primary_key=["id"],
        )
        db.insert_many("T", [(1, 10), (2, 20)])
        db.create_index("T", "k", "hash")
        snap = db.snapshot()
        snap_index = snap.catalog.find_index("T", "k")
        db.insert("T", (3, 10))
        assert [r[0] for r in snap_index.lookup(10)] == [1]  # frozen
        live_index = db.catalog.find_index("T", "k")
        assert {r[0] for r in live_index.lookup(10)} == {1, 3}
