"""Tests for the index-nested-loop join access path."""

import pytest

from repro.engine.database import Database
from repro.engine.expressions import Attr, Comparison, cmp, eq
from repro.engine.iosim import CostModel
from repro.engine.physical import execute_native
from repro.engine.types import DataType
from repro.plan.nodes import Join, Relation, Select


@pytest.fixture
def db() -> Database:
    database = Database()
    database.create_table(
        "SMALL", [("id", DataType.INT), ("fk", DataType.INT)], primary_key=["id"]
    )
    database.create_table(
        "BIG", [("k", DataType.INT), ("payload", DataType.TEXT)], primary_key=["k"]
    )
    database.insert_many("SMALL", [(i, i * 10) for i in range(5)])
    database.insert_many("BIG", [(i, f"row{i}") for i in range(2000)])
    database.create_index("BIG", "k")
    database.analyze()
    return database


def join_plan(db):
    return Join(
        Relation("SMALL"),
        Relation("BIG"),
        Comparison("=", Attr("SMALL.fk"), Attr("BIG.k")),
    )


class TestChoice:
    def test_inl_chosen_for_small_outer(self, db):
        cost = CostModel()
        _, rows = execute_native(join_plan(db), db.catalog, cost)
        assert len(rows) == 5
        assert cost.operator_calls.get("index-nested-loop") == 1
        # The 2000-row inner table was never scanned.
        assert cost.tuples_scanned == 5
        assert cost.index_lookups == 5

    def test_hash_join_without_index(self, db):
        database = db
        database.catalog._indexes[database.catalog._key("BIG")] = []  # drop index
        cost = CostModel()
        _, rows = execute_native(join_plan(database), database.catalog, cost)
        assert len(rows) == 5
        assert "index-nested-loop" not in cost.operator_calls
        assert cost.tuples_scanned == 2005  # full scan of both sides

    def test_hash_join_for_large_outer(self, db):
        db.insert_many("SMALL", [(i, i) for i in range(10, 1900)])
        db.analyze("SMALL")
        cost = CostModel()
        execute_native(join_plan(db), db.catalog, cost)
        assert "index-nested-loop" not in cost.operator_calls

    def test_results_identical_to_hash_join(self, db):
        _, inl_rows = execute_native(join_plan(db), db.catalog, CostModel())
        db.catalog._indexes[db.catalog._key("BIG")] = []
        _, hash_rows = execute_native(join_plan(db), db.catalog, CostModel())
        assert sorted(inl_rows) == sorted(hash_rows)

    def test_null_probe_keys_skipped(self, db):
        db.insert("SMALL", (100, None))
        db.analyze("SMALL")
        cost = CostModel()
        _, rows = execute_native(join_plan(db), db.catalog, cost)
        assert all(r[0] != 100 for r in rows)

    def test_composite_equi_falls_back(self, db):
        condition = (
            Comparison("=", Attr("SMALL.fk"), Attr("BIG.k"))
            & Comparison("=", Attr("SMALL.id"), Attr("BIG.k"))
        )
        cost = CostModel()
        execute_native(
            Join(Relation("SMALL"), Relation("BIG"), condition), db.catalog, cost
        )
        assert "index-nested-loop" not in cost.operator_calls

    def test_selective_filter_then_join_end_to_end(self, db):
        """The motivating case: σ(small) ⋈ indexed(big) costs O(matches)."""
        plan = Join(
            Select(Relation("SMALL"), eq("id", 3)),
            Relation("BIG"),
            Comparison("=", Attr("SMALL.fk"), Attr("BIG.k")),
        )
        cost = CostModel()
        _, rows = execute_native(plan, db.catalog, cost)
        assert len(rows) == 1
        assert cost.index_lookups >= 1
        assert cost.tuples_scanned <= 5
