"""End-to-end integration scenarios stitching all subsystems together."""

import pytest

from repro import ContextualPreference, Preference, eq
from repro.engine.persist import load_database, save_database
from repro.learning import atomic_preferences_from_ratings, mine_categorical_preferences
from repro.pexec.engine import STRATEGIES, ExecutionEngine
from repro.query import PreferenceStore, Session
from repro.workloads import generate_imdb


@pytest.fixture(scope="module")
def db():
    return generate_imdb(scale=0.0005, seed=99)


class TestFullPipeline:
    """generate → persist → reload → learn → store → query → explain."""

    def test_persisted_database_round_trips_through_queries(self, db, tmp_path):
        save_database(db, str(tmp_path))
        reloaded = load_database(str(tmp_path))

        sql = (
            "SELECT title FROM MOVIES NATURAL JOIN GENRES "
            "PREFERRING (genre = 'Drama') SCORE 0.7 CONFIDENCE 0.8 ON GENRES "
            "TOP 5 BY score"
        )
        original_rows = Session(db).rows(sql)
        reloaded_rows = Session(reloaded).rows(sql)
        assert original_rows == reloaded_rows

    def test_learnt_preferences_through_store_and_strategies(self, db):
        movies = db.table("MOVIES").rows
        ratings = [(movies[i][0], 9.0 if i % 2 == 0 else 2.0) for i in range(10)]

        store = PreferenceStore(db)
        store.add_all("user", atomic_preferences_from_ratings("MOVIES", "m_id", ratings))
        store.add_all(
            "user",
            mine_categorical_preferences(
                db, ratings, "MOVIES", "m_id", "GENRES", "genre", min_support=1
            ),
        )
        assert store.preferences_of("user")

        session = store.session_for("user")
        names = ", ".join(
            p.name for p in store.preferences_of("user") if p.name.startswith("mined")
        )
        sql = (
            "SELECT title, genre FROM MOVIES NATURAL JOIN GENRES "
            f"PREFERRING {names} TOP 5 BY score"
        )
        reference = session.execute(sql, strategy="reference")
        for strategy in STRATEGIES:
            result = session.execute(sql, strategy=strategy)
            assert result.relation.same_contents(reference.relation), strategy

    def test_contextual_blend_with_explanations(self, db):
        store = PreferenceStore(db)
        store.add("alice", Preference("likes_drama", "GENRES", eq("genre", "Drama"), 0.8, 0.9))
        store.add(
            "alice",
            ContextualPreference(
                Preference("late_comedy", "GENRES", eq("genre", "Comedy"), 0.9, 0.8),
                {"daytime": "night"},
            ),
        )
        session = store.session_for("alice", context={"daytime": "night"})
        result = session.execute(
            "SELECT title, genre FROM MOVIES NATURAL JOIN GENRES "
            "WHERE conf > 0 PREFERRING likes_drama, late_comedy ORDER BY score"
        )
        assert result.stats.rows > 0
        explanation = session.why(result, 0)
        assert explanation.matched
        assert explanation.combined.approx_equal(result.relation.pairs[0])

    def test_cross_strategy_agreement_on_persisted_db(self, db, tmp_path):
        save_database(db, str(tmp_path))
        reloaded = load_database(str(tmp_path))
        engine = ExecutionEngine(reloaded)
        from repro.plan.builder import scan

        p = Preference("pp", "GENRES", eq("genre", "Comedy"), 0.9, 0.9)
        plan = (
            scan("MOVIES")
            .natural_join(scan("GENRES").prefer(p), reloaded.catalog)
            .top(5, by="score")
            .build()
        )
        reference = engine.run(plan, "reference")
        for strategy in STRATEGIES:
            assert engine.run(plan, strategy).relation.same_contents(reference.relation)
