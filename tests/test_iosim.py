"""Unit tests for the simulated I/O cost model."""

from repro.engine.iosim import TUPLES_PER_PAGE, CostModel, pages_for


class TestPagesFor:
    def test_zero(self):
        assert pages_for(0) == 0
        assert pages_for(-5) == 0

    def test_partial_page_rounds_up(self):
        assert pages_for(1) == 1
        assert pages_for(TUPLES_PER_PAGE) == 1
        assert pages_for(TUPLES_PER_PAGE + 1) == 2

    def test_custom_page_size(self):
        assert pages_for(10, tuples_per_page=10) == 1
        assert pages_for(11, tuples_per_page=10) == 2


class TestCostModel:
    def test_scan_accumulates(self):
        cost = CostModel()
        cost.scan(100)
        cost.scan(100)
        assert cost.tuples_scanned == 200
        assert cost.pages_read == 2 * pages_for(100)

    def test_index_probe(self):
        cost = CostModel()
        cost.index_probe(5)
        assert cost.index_lookups == 1
        assert cost.pages_read == 1 + pages_for(5)

    def test_materialize(self):
        cost = CostModel()
        cost.materialize(1000)
        assert cost.tuples_materialized == 1000
        assert cost.pages_written == pages_for(1000)

    def test_total_io(self):
        cost = CostModel()
        cost.scan(64)
        cost.materialize(64)
        assert cost.total_io == 2

    def test_operator_counter(self):
        cost = CostModel()
        cost.count_operator("join")
        cost.count_operator("join")
        assert cost.operator_calls == {"join": 2}

    def test_reset(self):
        cost = CostModel()
        cost.scan(10)
        cost.count_operator("x")
        cost.reset()
        assert cost.total_io == 0
        assert cost.operator_calls == {}

    def test_snapshot_is_plain_dict(self):
        cost = CostModel()
        cost.scan(64)
        snap = cost.snapshot()
        assert snap["pages_read"] == 1
        assert snap["total_io"] == 1
        cost.scan(64)
        assert snap["pages_read"] == 1  # snapshot is a copy
