"""Tests for the preference-learning subpackage."""

import pytest

from repro.core.preference import Preference
from repro.errors import PreferenceError
from repro.learning import (
    atomic_preferences_from_ratings,
    fit_linear_scoring,
    mine_categorical_preferences,
    mine_numeric_preference,
)


class TestAtomicFromRatings:
    def test_example1(self):
        """Alice's 8/10 and 3/10 ratings (paper Example 1)."""
        prefs = atomic_preferences_from_ratings("MOVIES", "m_id", [(3, 8), (1, 3)])
        assert len(prefs) == 2
        by_score = sorted(prefs, key=lambda p: p.scoring.value)
        assert by_score[0].scoring.value == pytest.approx(0.3)
        assert by_score[1].scoring.value == pytest.approx(0.8)
        assert all(p.confidence == 1.0 for p in prefs)

    def test_later_rating_wins(self):
        prefs = atomic_preferences_from_ratings("MOVIES", "m_id", [(1, 2), (1, 9)])
        assert len(prefs) == 1
        assert prefs[0].scoring.value == pytest.approx(0.9)

    def test_scale_validated(self):
        with pytest.raises(PreferenceError):
            atomic_preferences_from_ratings("MOVIES", "m_id", [(1, 11)])
        with pytest.raises(PreferenceError):
            atomic_preferences_from_ratings("MOVIES", "m_id", [], rating_scale=0)

    def test_preferences_are_usable(self, movie_db):
        from repro.pexec.engine import ExecutionEngine
        from repro.plan.builder import scan

        prefs = atomic_preferences_from_ratings("MOVIES", "m_id", [(3, 8), (1, 3)])
        plan = scan("MOVIES").prefer_all(prefs).top(2, by="score").build()
        result = ExecutionEngine(movie_db).run(plan, "gbu")
        titles = [row[1] for row in result.relation.rows]
        assert titles[0] == "Million Dollar Baby"


class TestMineCategorical:
    RATINGS = [(4, 9), (5, 8), (1, 3), (2, 4), (3, 5)]  # likes the comedies

    def test_genre_preference_emerges(self, movie_db):
        prefs = mine_categorical_preferences(
            movie_db, self.RATINGS, "MOVIES", "m_id", "GENRES", "genre"
        )
        by_value = {p.name: p for p in prefs}
        comedy = next(p for p in prefs if "Comedy" in p.name)
        drama = next(p for p in prefs if "Drama" in p.name)
        assert comedy.scoring.value > drama.scoring.value
        assert comedy.scoring.value == pytest.approx(0.85)  # (0.9 + 0.8) / 2

    def test_confidence_grows_with_support(self, movie_db):
        prefs = mine_categorical_preferences(
            movie_db, self.RATINGS, "MOVIES", "m_id", "GENRES", "genre"
        )
        comedy = next(p for p in prefs if "Comedy" in p.name)
        drama = next(p for p in prefs if "Drama" in p.name)
        # Drama has 4 rated movies, Comedy 2: more support, more confidence.
        assert drama.confidence > comedy.confidence
        assert all(p.confidence < 1.0 for p in prefs)

    def test_min_support(self, movie_db):
        prefs = mine_categorical_preferences(
            movie_db, [(4, 9)], "MOVIES", "m_id", "GENRES", "genre", min_support=2
        )
        assert prefs == []

    def test_mined_preferences_run_in_queries(self, movie_db):
        from repro.pexec.engine import ExecutionEngine
        from repro.plan.builder import scan

        prefs = mine_categorical_preferences(
            movie_db, self.RATINGS, "MOVIES", "m_id", "GENRES", "genre"
        )
        plan = (
            scan("MOVIES")
            .natural_join(scan("GENRES").prefer_all(prefs), movie_db.catalog)
            .top(3, by="score")
            .build()
        )
        engine = ExecutionEngine(movie_db)
        gbu = engine.run(plan, "gbu")
        ref = engine.run(plan, "reference")
        assert gbu.relation.same_contents(ref.relation)

    def test_invalid_rating_rejected(self, movie_db):
        with pytest.raises(PreferenceError):
            mine_categorical_preferences(
                movie_db, [(4, 99)], "MOVIES", "m_id", "GENRES", "genre"
            )


class TestMineNumeric:
    def test_recency_preference_emerges(self, movie_db):
        # Likes the recent movies (2008, 2010), dislikes the old ones.
        ratings = [(1, 9), (2, 8), (3, 2), (4, 3), (5, 4)]
        pref = mine_numeric_preference(
            movie_db, ratings, "MOVIES", "m_id", "year", min_support=2
        )
        assert pref is not None
        assert pref.condition.op == ">="
        assert pref.confidence < 1.0

    def test_dislike_direction(self, movie_db):
        # Likes the *old* movies: threshold comparison flips.
        ratings = [(3, 9), (4, 8), (1, 2), (2, 1)]
        pref = mine_numeric_preference(
            movie_db, ratings, "MOVIES", "m_id", "year", min_support=2
        )
        assert pref.condition.op == "<="

    def test_insufficient_support(self, movie_db):
        assert (
            mine_numeric_preference(movie_db, [(1, 9)], "MOVIES", "m_id", "year")
            is None
        )


class TestFitLinear:
    def test_perfect_fit(self):
        observations = [(2000, 0.0), (2010, 1.0), (2005, 0.5)]
        fitted = fit_linear_scoring("year", observations)
        assert fitted.r_squared == pytest.approx(1.0)
        assert fitted.slope == pytest.approx(0.1)
        assert fitted.suggested_confidence == pytest.approx(0.95)

    def test_scoring_evaluates(self, movie_db):
        observations = [(2000, 0.0), (2010, 1.0)]
        fitted = fit_linear_scoring("year", observations)
        fn = fitted.scoring.compile(movie_db.table("MOVIES").schema)
        row = movie_db.table("MOVIES").rows[0]  # Gran Torino, 2008
        assert fn(row) == pytest.approx(0.8)

    def test_clamping(self, movie_db):
        fitted = fit_linear_scoring("year", [(2000, 0.0), (2001, 1.0)])
        fn = fitted.scoring.compile(movie_db.table("MOVIES").schema)
        assert fn(movie_db.table("MOVIES").rows[1]) == 1.0  # 2010 ≫ fit range

    def test_noisy_fit_has_lower_confidence(self):
        noisy = [(0, 0.1), (1, 0.9), (2, 0.2), (3, 0.8)]
        fitted = fit_linear_scoring("x", noisy)
        assert fitted.r_squared < 0.5

    def test_constant_attribute_degenerates(self):
        fitted = fit_linear_scoring("x", [(5, 0.2), (5, 0.8)])
        assert fitted.slope == 0.0
        assert fitted.r_squared == 0.0

    def test_validation(self):
        with pytest.raises(PreferenceError):
            fit_linear_scoring("x", [(1, 0.5)])
        with pytest.raises(PreferenceError):
            fit_linear_scoring("x", [(1, 0.5), (2, 1.5)])

    def test_usable_in_preference(self, movie_db):
        from repro.core.preference import Preference
        from repro.core.prefer import prefer
        from repro.core.prelation import PRelation
        from repro.engine.expressions import TRUE

        fitted = fit_linear_scoring("year", [(2000, 0.0), (2010, 1.0)])
        p = Preference(
            "learnt", "MOVIES", TRUE, fitted.scoring, fitted.suggested_confidence
        )
        out = prefer(PRelation.from_table(movie_db.table("MOVIES")), p)
        assert all(pr.conf == pytest.approx(0.95) for pr in out.pairs)
