"""Tests for the LEFT OUTER JOIN extension (non-restrictive membership)."""

import pytest

from repro.core import algebra
from repro.core.preference import Preference
from repro.core.prelation import PRelation
from repro.core.scorepair import IDENTITY, ScorePair
from repro.engine.expressions import Attr, Comparison, IsNull, cmp, eq
from repro.engine.physical import execute_native
from repro.pexec.engine import STRATEGIES, ExecutionEngine
from repro.plan.builder import scan
from repro.plan.nodes import LeftJoin, Prefer, Relation, Select


def on_m_id(left="MOVIES.m_id", right="AWARDS.m_id"):
    return Comparison("=", Attr(left), Attr(right))


class TestAlgebra:
    def test_unmatched_rows_padded(self, movie_db):
        movies = PRelation.from_table(movie_db.table("MOVIES"))
        awards = PRelation.from_table(movie_db.table("AWARDS"))
        out = algebra.left_join(movies, awards, on_m_id())
        assert len(out) == 5  # 2 matched + 3 padded
        padded = [row for row in out.rows if row[5] is None]
        assert len(padded) == 3
        assert all(row[5:] == (None, None, None) for row in padded)

    def test_matched_pairs_combine(self, movie_db):
        movies = PRelation.from_table(movie_db.table("MOVIES"))
        movies.pairs[0] = ScorePair(0.5, 1.0)  # Gran Torino (has an award)
        awards = PRelation.from_table(movie_db.table("AWARDS"))
        awards.pairs[1] = ScorePair(0.9, 1.0)  # Gran Torino's Golden Globe
        out = algebra.left_join(movies, awards, on_m_id())
        gran = next(pair for row, pair in out if row[0] == 1 and row[5] is not None)
        assert gran.score == pytest.approx(0.7)
        assert gran.conf == pytest.approx(2.0)

    def test_padded_rows_keep_left_pair(self, movie_db):
        movies = PRelation.from_table(movie_db.table("MOVIES"))
        movies.pairs[1] = ScorePair(0.4, 0.4)  # Wall Street (no award)
        awards = PRelation.from_table(movie_db.table("AWARDS"))
        out = algebra.left_join(movies, awards, on_m_id())
        wall = next(pair for row, pair in out if row[0] == 2)
        assert wall == ScorePair(0.4, 0.4)

    def test_duplicate_left_rows_each_padded(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        left = PRelation(schema, [(9, "Dup"), (9, "Dup")], [IDENTITY, ScorePair(0.1, 0.1)])
        right = PRelation(schema.rename("R2"), [])
        out = algebra.left_join(
            left, right, Comparison("=", Attr("DIRECTORS.d_id"), Attr("R2.d_id"))
        )
        assert len(out) == 2

    def test_null_left_key_padded(self, movie_db):
        movie_db.insert("MOVIES", (9, "No Director", 2000, 100, None))
        movies = PRelation.from_table(movie_db.table("MOVIES"))
        directors = PRelation.from_table(movie_db.table("DIRECTORS"))
        out = algebra.left_join(
            movies,
            directors,
            Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id")),
        )
        orphan = [row for row in out.rows if row[0] == 9]
        assert len(orphan) == 1
        assert orphan[0][5] is None


class TestNativeExecutor:
    def test_hash_left_join(self, movie_db):
        plan = LeftJoin(Relation("MOVIES"), Relation("AWARDS"), on_m_id())
        _, rows = execute_native(plan, movie_db.catalog)
        assert len(rows) == 5

    def test_theta_left_join(self, movie_db):
        condition = Comparison("<", Attr("MOVIES.year"), Attr("AWARDS.year"))
        plan = LeftJoin(Relation("MOVIES"), Relation("AWARDS"), condition)
        _, rows = execute_native(plan, movie_db.catalog)
        matched = [r for r in rows if r[5] is not None]
        padded = [r for r in rows if r[5] is None]
        assert len(matched) == 5 and len(padded) == 1  # 2010 movie matches nothing


class TestStrategies:
    def test_all_strategies_agree(self, movie_db):
        p7 = Preference.membership_outer(
            ("MOVIES", "AWARDS"), "AWARDS.m_id", 1.0, 0.9, name="p7"
        )
        plan = (
            scan("MOVIES")
            .left_join(scan("AWARDS"), on=on_m_id())
            .prefer(p7)
            .top(5, by="score")
            .build()
        )
        engine = ExecutionEngine(movie_db)
        reference = engine.run(plan, "reference")
        assert reference.stats.rows == 5
        for strategy in STRATEGIES:
            result = engine.run(plan, strategy)
            assert result.relation.same_contents(reference.relation), strategy

    def test_membership_outer_is_not_restrictive(self, movie_db):
        """The point of the extension: every movie stays, awarded ones win."""
        p7 = Preference.membership_outer(
            ("MOVIES", "AWARDS"), "AWARDS.m_id", 1.0, 0.9, name="p7"
        )
        plan = (
            scan("MOVIES")
            .left_join(scan("AWARDS"), on=on_m_id())
            .prefer(p7)
            .build()
        )
        result = ExecutionEngine(movie_db).run(plan, "gbu").relation
        awarded = {row[0] for row, pair in result if pair.conf > 0}
        unawarded = {row[0] for row, pair in result if pair.is_default}
        assert awarded == {1, 3}
        assert unawarded == {2, 4, 5}

    def test_prefer_on_left_side_pushes(self, movie_db, example_preferences):
        from repro.optimizer import optimize
        from repro.plan.analysis import qualify_preferences

        pm = Preference("pm", "MOVIES", cmp("year", ">", 2005), 0.7, 0.8)
        plan = (
            scan("MOVIES")
            .left_join(scan("AWARDS"), on=on_m_id())
            .prefer(pm)
            .build()
        )
        optimized = optimize(qualify_preferences(plan, movie_db.catalog), movie_db.catalog)
        prefer_node = next(n for n in optimized.walk() if isinstance(n, Prefer))
        assert isinstance(prefer_node.child, Relation)
        assert prefer_node.child.name == "MOVIES"

    def test_prefer_on_right_side_stays_above(self, movie_db):
        from repro.optimizer import optimize
        from repro.plan.analysis import qualify_preferences

        pa = Preference("pa", "AWARDS", eq("award", "Academy Award"), 0.9, 0.9)
        plan = (
            scan("MOVIES")
            .left_join(scan("AWARDS"), on=on_m_id())
            .prefer(pa)
            .build()
        )
        optimized = optimize(qualify_preferences(plan, movie_db.catalog), movie_db.catalog)
        assert isinstance(optimized, Prefer)
        assert isinstance(optimized.child, LeftJoin)

    def test_selection_on_right_attr_stays_above(self, movie_db):
        from repro.engine.native_optimizer import push_selections

        plan = Select(
            LeftJoin(Relation("MOVIES"), Relation("AWARDS"), on_m_id()),
            IsNull(Attr("AWARDS.award")),
        )
        pushed = push_selections(plan, movie_db.catalog)
        assert isinstance(pushed, Select)
        assert isinstance(pushed.child, LeftJoin)

    def test_selection_on_left_attr_pushes(self, movie_db):
        from repro.engine.native_optimizer import push_selections

        plan = Select(
            LeftJoin(Relation("MOVIES"), Relation("AWARDS"), on_m_id()),
            cmp("year", ">", 2005),
        )
        pushed = push_selections(plan, movie_db.catalog)
        assert isinstance(pushed, LeftJoin)
        assert isinstance(pushed.left, Select)

    def test_optimizer_preserves_semantics(self, movie_db):
        from tests.conftest import assert_plans_equivalent
        from repro.optimizer import optimize
        from repro.plan.analysis import qualify_preferences

        p7 = Preference.membership_outer(("MOVIES", "AWARDS"), "AWARDS.m_id", 1.0, 0.9)
        pm = Preference("pm", "MOVIES", cmp("year", ">", 2005), 0.7, 0.8)
        plan = (
            scan("MOVIES")
            .select(cmp("duration", ">", 100))
            .left_join(scan("AWARDS"), on=on_m_id())
            .prefer(p7)
            .prefer(pm)
            .build()
        )
        qualified = qualify_preferences(plan, movie_db.catalog)
        optimized = optimize(qualified, movie_db.catalog)
        assert_plans_equivalent(movie_db, qualified, optimized)


class TestSQL:
    def test_left_join_parses_and_runs(self, movie_db):
        from repro.query.session import Session

        session = Session(movie_db)
        session.register(
            Preference.membership_outer(
                ("MOVIES", "AWARDS"), "AWARDS.m_id", 1.0, 0.9, name="awarded"
            )
        )
        rows = session.rows(
            """
            SELECT title, award FROM MOVIES
              LEFT OUTER JOIN AWARDS ON MOVIES.m_id = AWARDS.m_id
            PREFERRING awarded
            ORDER BY score
            """
        )
        assert len(rows) == 5
        assert rows[0][1] is not None      # awarded movies first
        assert rows[-1][1] is None         # unawarded still present

    def test_left_keyword_without_outer(self, movie_db):
        from repro.query.session import Session

        session = Session(movie_db)
        rows = session.rows(
            "SELECT title FROM MOVIES LEFT JOIN AWARDS ON MOVIES.m_id = AWARDS.m_id"
        )
        assert len(rows) == 5
