"""Tests for left-deep restructuring of commutative set operations."""

import pytest

from repro.engine.expressions import cmp
from repro.optimizer.leftdeep import left_deepen
from repro.pexec.reference import evaluate_reference
from repro.plan.analysis import is_left_deep
from repro.plan.builder import scan
from repro.plan.nodes import Difference, Intersect, Join, Relation, Select, Union


def branch(db, condition):
    return Select(Relation("MOVIES"), condition)


def deep_branch(db):
    return (
        scan("MOVIES")
        .natural_join(scan("DIRECTORS"), db.catalog)
        .project(["title", "MOVIES.m_id"])
        .build()
    )


def flat_branch(db):
    return scan("MOVIES").project(["title", "MOVIES.m_id"]).build()


class TestLeftDeepen:
    def test_union_swaps_binary_right_child(self, movie_db):
        plan = Union(flat_branch(movie_db), deep_branch(movie_db))
        assert not is_left_deep(plan)
        deepened = left_deepen(plan)
        assert is_left_deep(deepened)
        # The join-bearing branch moved to the left child.
        assert any(isinstance(n, Join) for n in deepened.children()[0].walk())
        assert not any(isinstance(n, Join) for n in deepened.children()[1].walk())

    def test_union_swap_preserves_semantics(self, movie_db):
        plan = Union(flat_branch(movie_db), deep_branch(movie_db))
        deepened = left_deepen(plan)
        before = evaluate_reference(plan, movie_db.catalog)
        after = evaluate_reference(deepened, movie_db.catalog)
        assert before.same_contents(after)

    def test_intersect_swaps(self, movie_db):
        plan = Intersect(flat_branch(movie_db), deep_branch(movie_db))
        deepened = left_deepen(plan)
        assert is_left_deep(deepened)
        before = evaluate_reference(plan, movie_db.catalog)
        after = evaluate_reference(deepened, movie_db.catalog)
        assert before.same_contents(after)

    def test_difference_never_swaps(self, movie_db):
        plan = Difference(flat_branch(movie_db), deep_branch(movie_db))
        deepened = left_deepen(plan)
        # Difference is not commutative: the tree shape must be preserved.
        assert deepened == plan

    def test_already_left_deep_untouched(self, movie_db):
        plan = Union(deep_branch(movie_db), flat_branch(movie_db))
        assert left_deepen(plan) == plan

    def test_both_sides_binary_untouched(self, movie_db):
        plan = Union(deep_branch(movie_db), deep_branch(movie_db))
        assert left_deepen(plan) == plan
