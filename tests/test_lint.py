"""Tests for the algebraic-safety source linter (``python -m repro.lint``).

Each LN code gets a minimal triggering source snippet; the final test runs
the real linter over the real source tree and requires it to be clean —
which is exactly what the CI lint job enforces.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis_static.lint import lint_paths, lint_source, run_lint


def codes(findings):
    return [f.code for f in findings]


def lint_snippet(source, path="snippet.py"):
    return lint_source(path, source)


class TestLN100Syntax:
    def test_unparsable_file_is_ln100(self):
        found = lint_snippet("def broken(:\n")
        assert codes(found) == ["LN100"]


class TestLN101ScoreEquality:
    def test_raw_equality_on_score_name_is_ln101(self):
        found = lint_snippet("if a.score == b.score:\n    pass\n")
        assert codes(found) == ["LN101"]

    def test_inequality_counts_too(self):
        found = lint_snippet("ok = my_score != 0.5\n")
        assert codes(found) == ["LN101"]

    def test_ordered_comparison_is_fine(self):
        assert lint_snippet("ok = a.score >= 0.5\n") == []

    def test_non_score_names_are_fine(self):
        assert lint_snippet("ok = a.year == b.year\n") == []


class TestLN102BottomLiterals:
    def test_scorepair_none_literal_is_ln102(self):
        found = lint_snippet("p = ScorePair(None, 0.5)\n")
        assert codes(found) == ["LN102"]

    def test_pair_bottom_name_is_ln102(self):
        found = lint_snippet("p = pair(BOTTOM, 1.0)\n")
        assert codes(found) == ["LN102"]

    def test_score_keyword_is_ln102(self):
        found = lint_snippet("p = ScorePair(conf=0.5, score=None)\n")
        assert codes(found) == ["LN102"]

    def test_known_score_is_fine(self):
        assert lint_snippet("p = ScorePair(0.5, 0.5)\n") == []

    def test_scorepair_module_is_exempt(self):
        source = "p = ScorePair(None, 0.0)\n"
        assert lint_source("src/repro/core/scorepair.py", source) == []


class TestLN103ExhaustiveDispatch:
    def test_incomplete_strict_dispatcher_is_ln103(self):
        source = (
            "def visit(plan):\n"
            "    if isinstance(plan, Relation):\n"
            "        return 1\n"
            "    if isinstance(plan, (Select, Project, Join)):\n"
            "        return 2\n"
            "    raise ValueError(plan)\n"
        )
        found = lint_snippet(source)
        assert codes(found) == ["LN103"]
        assert "Prefer" in found[0].message  # one of the missing classes

    def test_exhaustive_dispatcher_is_fine(self):
        source = (
            "def visit(plan):\n"
            "    if isinstance(plan, (Relation, Materialized, Select, Project)):\n"
            "        return 1\n"
            "    if isinstance(plan, (Join, LeftJoin, Union, Intersect, Difference)):\n"
            "        return 2\n"
            "    if isinstance(plan, (Prefer, TopK)):\n"
            "        return 3\n"
            "    raise ValueError(plan)\n"
        )
        assert lint_snippet(source) == []

    def test_abstract_base_covers_its_subclasses(self):
        # Dispatching on PlanNode subtree bases (e.g. the set-op base) counts
        # as covering every concrete class below them.
        source = (
            "def visit(plan):\n"
            "    if isinstance(plan, (Relation, Materialized, Select, Project)):\n"
            "        return 1\n"
            "    if isinstance(plan, (Join, LeftJoin, _SetOperation)):\n"
            "        return 2\n"
            "    if isinstance(plan, (Prefer, TopK)):\n"
            "        return 3\n"
            "    raise ValueError(plan)\n"
        )
        assert lint_snippet(source) == []

    def test_small_dispatchers_are_not_flagged(self):
        source = (
            "def only_joins(plan):\n"
            "    if isinstance(plan, Join):\n"
            "        return 1\n"
            "    raise ValueError(plan)\n"
        )
        assert lint_snippet(source) == []

    def test_non_raising_fallthrough_is_not_flagged(self):
        source = (
            "def visit(plan):\n"
            "    if isinstance(plan, (Relation, Select, Project, Join)):\n"
            "        return 1\n"
            "    return None\n"
        )
        assert lint_snippet(source) == []


class TestLN104RegistryMutation:
    def test_direct_registry_write_is_ln104(self):
        found = lint_snippet("_REGISTRY['mine'] = fn\n")
        assert codes(found) == ["LN104"]

    def test_registry_update_call_is_ln104(self):
        found = lint_snippet("aggregates._REGISTRY.update(other)\n")
        assert codes(found) == ["LN104"]

    def test_registrar_function_is_exempt(self):
        source = (
            "def register_aggregate(fn):\n"
            "    _REGISTRY[fn.name] = fn\n"
        )
        assert lint_snippet(source) == []


class TestLN105AggregateLaws:
    def test_live_registry_passes_the_law_suite(self):
        from repro.core.aggregates import verify_registered_aggregates

        assert verify_registered_aggregates() == []

    def test_law_breaking_aggregate_is_reported(self):
        from repro.core.aggregates import AggregateFunction, failed_laws

        class Subtraction(AggregateFunction):
            # Not commutative, no identity: every law should have a witness.
            name = "f_sub"

            def combine(self, a, b):
                from repro.core.scorepair import ScorePair

                return ScorePair(
                    (a.score or 0.0) - (b.score or 0.0), a.conf - b.conf
                )

        messages = failed_laws(Subtraction())
        assert messages  # at least one broken law with a witness
        assert any("commut" in m or "identity" in m or "assoc" in m for m in messages)


class TestLN201PerPreferenceLoop:
    def test_apply_prefer_in_loop_is_ln201(self):
        found = lint_snippet(
            "for preference in preferences:\n"
            "    result = apply_prefer(result, preference, aggregate)\n"
        )
        assert codes(found) == ["LN201"]

    def test_reversed_plan_preferences_counts_too(self):
        found = lint_snippet(
            "for p in reversed(plan.preferences()):\n"
            "    result = prefer(result, p)\n"
        )
        assert codes(found) == ["LN201"]

    def test_pool_name_counts_too(self):
        found = lint_snippet(
            "for p in pool:\n"
            "    scores = prefer_scores_from_rows(schema, rows, keys, p, agg)\n"
        )
        assert codes(found) == ["LN201"]

    def test_group_api_in_loop_is_fine(self):
        found = lint_snippet(
            "for batch in preferences_by_region:\n"
            "    result = apply_prefer_group(result, batch, aggregate)\n"
        )
        assert found == []

    def test_plan_building_loop_is_fine(self):
        # One-argument .prefer(p) constructs a plan node; it does not apply.
        found = lint_snippet(
            "for preference in preferences:\n"
            "    builder = builder.prefer(preference)\n"
        )
        assert found == []

    def test_loop_over_rows_is_fine(self):
        found = lint_snippet(
            "for row in rows:\n"
            "    result = apply_prefer(result, preference, aggregate)\n"
        )
        assert found == []

    def test_noqa_suppresses_reference_folds(self):
        found = lint_snippet(
            "for preference in preferences:  # noqa: LN201 — reference fold\n"
            "    result = apply_prefer(result, preference, aggregate)\n"
        )
        assert found == []


class TestSuppression:
    def test_bare_noqa_suppresses(self):
        assert lint_snippet("ok = a.score == b.score  # noqa\n") == []

    def test_matching_code_suppresses(self):
        assert lint_snippet("ok = a.score == b.score  # noqa: LN101\n") == []

    def test_other_code_does_not_suppress(self):
        found = lint_snippet("ok = a.score == b.score  # noqa: LN104\n")
        assert codes(found) == ["LN101"]


class TestRunner:
    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "bad.py").write_text("x = total_score == 1.0\n")
        (tmp_path / "good.py").write_text("x = 1\n")
        found = lint_paths([str(tmp_path)], check_aggregates=False)
        assert codes(found) == ["LN101"]
        assert found[0].path.endswith("bad.py")

    def test_run_lint_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = total_score == 1.0\n")
        assert run_lint([str(bad)]) == 1
        assert "LN101" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert run_lint([str(good)]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_repo_source_tree_is_clean(self):
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        assert lint_paths([package_root]) == []


class TestLN301WorkerGlobalMutation:
    def test_global_mutation_in_worker_entry_is_ln301(self):
        found = lint_snippet(
            "def entry(task):\n"
            "    global _COUNT\n"
            "    _COUNT = 1\n"
            "def run(pool):\n"
            "    pool.apply_async(entry, (1,))\n"
        )
        assert codes(found) == ["LN301"]

    def test_mutation_in_transitively_reachable_helper(self):
        found = lint_snippet(
            "def helper():\n"
            "    global _STATE\n"
            "    _STATE += 1\n"
            "def entry(task):\n"
            "    helper()\n"
            "def run(pool):\n"
            "    pool.imap(entry, [1, 2])\n"
        )
        assert codes(found) == ["LN301"]

    def test_process_target_keyword_is_an_entry(self):
        found = lint_snippet(
            "def entry():\n"
            "    global _FLAG\n"
            "    _FLAG = True\n"
            "def run():\n"
            "    Process(target=entry).start()\n"
        )
        assert codes(found) == ["LN301"]

    def test_global_read_without_assignment_is_fine(self):
        found = lint_snippet(
            "def entry(task):\n"
            "    return _WORKER_DB\n"
            "def run(pool):\n"
            "    pool.apply_async(entry, (1,))\n"
        )
        assert found == []

    def test_unreachable_mutation_is_fine(self):
        found = lint_snippet(
            "def driver_only():\n"
            "    global _POOLS\n"
            "    _POOLS = {}\n"
            "def entry(task):\n"
            "    return 1\n"
            "def run(pool):\n"
            "    pool.apply_async(entry, (1,))\n"
        )
        assert found == []

    def test_thread_submit_is_out_of_scope(self):
        # Thread executors share the driver's memory; only process pools
        # have the fork/spawn divergence LN301 guards against.
        found = lint_snippet(
            "def entry(task):\n"
            "    global _COUNT\n"
            "    _COUNT = 1\n"
            "def run(executor):\n"
            "    executor.submit(entry, 1)\n"
        )
        assert found == []


class TestLN302FaultSiteTypos:
    def test_typo_in_faultplan_constructor_is_ln302(self):
        found = lint_snippet('plan = FaultPlan.transient("strategy.gub")\n')
        assert codes(found) == ["LN302"]

    def test_typo_in_faultspec_site_keyword(self):
        found = lint_snippet('spec = FaultSpec(site="pexec.score")\n')
        assert codes(found) == ["LN302"]

    def test_typo_in_site_constant(self):
        found = lint_snippet('FAULT_SITE = "strategy.columnarr"\n')
        assert codes(found) == ["LN302"]

    def test_typo_in_site_default_parameter(self):
        found = lint_snippet('def f(site: str = "iosim.scam"):\n    pass\n')
        assert codes(found) == ["LN302"]

    def test_typo_in_at_call(self):
        found = lint_snippet('faults.at("native.dispatchh")\n')
        assert codes(found) == ["LN302"]

    def test_known_sites_and_prefix_patterns_are_fine(self):
        found = lint_snippet(
            'a = FaultPlan.transient("strategy.gbu")\n'
            'b = FaultPlan.corrupting("pexec.scores")\n'
            'c = FaultSpec("iosim.scan", "latency")\n'
            'd = FaultPlan.transient("strategy.*")\n'
            'PARTITION_SITE = "pexec.partition"\n'
        )
        assert found == []

    def test_prefix_pattern_matching_nothing_is_ln302(self):
        found = lint_snippet('plan = FaultPlan.transient("strategyy.*")\n')
        assert codes(found) == ["LN302"]

    def test_undotted_at_argument_is_ignored(self):
        # .at() is a common method name; only dotted site-shaped literals
        # are validated, so unrelated APIs never false-positive.
        found = lint_snippet('calendar.at("monday")\n')
        assert found == []


class TestLN303SharedMemory:
    def test_segment_outside_shm_module_is_ln303(self):
        found = lint_snippet(
            "seg = shared_memory.SharedMemory(create=True, size=10)\n"
        )
        assert codes(found) == ["LN303"]

    def test_attach_without_create_is_fine(self):
        found = lint_snippet('seg = shared_memory.SharedMemory(name="x")\n')
        assert found == []

    def test_shm_module_itself_is_exempt(self):
        found = lint_snippet(
            "seg = shared_memory.SharedMemory(create=True, size=10)\n",
            path="src/repro/columnar/shm.py",
        )
        assert found == []


class TestLN304AmbientReadsInWorkers:
    def test_unguarded_ambient_read_is_ln304(self):
        found = lint_snippet(
            "def entry(task):\n"
            "    faults = current_faults()\n"
            "def run(pool):\n"
            "    pool.apply_async(entry, (1,))\n"
        )
        assert codes(found) == ["LN304"]

    def test_read_inside_matching_use_block_is_fine(self):
        found = lint_snippet(
            "def entry(task):\n"
            "    with use_guard(None), use_faults(plan):\n"
            "        faults = current_faults()\n"
            "        guard = current_guard()\n"
            "def run(pool):\n"
            "    pool.apply_async(entry, (1,))\n"
        )
        assert found == []

    def test_mismatched_use_block_is_ln304(self):
        found = lint_snippet(
            "def entry(task):\n"
            "    with use_guard(None):\n"
            "        faults = current_faults()\n"
            "def run(pool):\n"
            "    pool.apply_async(entry, (1,))\n"
        )
        assert codes(found) == ["LN304"]

    def test_ambient_read_outside_workers_is_fine(self):
        found = lint_snippet(
            "def driver():\n"
            "    return current_tracer()\n"
        )
        assert found == []


class TestLN305DurabilityIO:
    def test_bare_open_in_durability_module_is_ln305(self):
        found = lint_source("src/repro/serve/wal.py", "h = open('x', 'w')\n")
        assert codes(found) == ["LN305"]

    def test_os_fsync_in_durability_module_is_ln305(self):
        found = lint_source(
            "src/repro/engine/persist.py", "os.fsync(handle.fileno())\n"
        )
        assert codes(found) == ["LN305"]

    def test_os_replace_and_remove_are_ln305(self):
        found = lint_source(
            "src/repro/serve/server.py",
            "os.replace('a.tmp', 'a')\nos.remove('b')\n",
        )
        assert codes(found) == ["LN305", "LN305"]

    def test_vfs_calls_are_fine(self):
        found = lint_source(
            "src/repro/serve/wal.py",
            "vfs = current_vfs()\n"
            "with vfs.open('x', 'w') as h:\n"
            "    vfs.fsync(h)\n"
            "vfs.replace('a.tmp', 'a')\n",
        )
        assert found == []

    def test_other_modules_may_do_direct_io(self):
        assert lint_snippet("h = open('x', 'w')\nos.replace('a', 'b')\n") == []

    def test_other_os_calls_are_fine_in_durability_modules(self):
        found = lint_source(
            "src/repro/serve/server.py", "p = os.path.join(a, b)\nos.listdir(a)\n"
        )
        assert found == []

    def test_noqa_suppresses_a_sanctioned_bypass(self):
        found = lint_source(
            "src/repro/serve/server.py",
            "os.remove(path)  # noqa: LN305 - GC of a superseded file\n",
        )
        assert found == []

    def test_noqa_suppresses_ln304(self):
        found = lint_snippet(
            "def entry(task):\n"
            "    t = current_tracer()  # noqa: LN304\n"
            "def run(pool):\n"
            "    pool.apply_async(entry, (1,))\n"
        )
        assert found == []


class TestPlanCoverageScoping:
    def test_foreign_plan_subclasses_do_not_poison_ln103(self):
        # Plan-node subclasses defined outside the repro package (test
        # doubles like the fallback matrix's trigger node) must not count
        # as concrete nodes every dispatcher has to cover.
        from repro.analysis_static.lint import _plan_class_coverage
        from repro.plan.nodes import PlanNode

        class _TestOnlyNode(PlanNode):  # pragma: no cover - definition only
            pass

        concrete, _ = _plan_class_coverage()
        assert "_TestOnlyNode" not in concrete
        assert not any(name.startswith("_TestOnly") for name in concrete)


class TestLN401ServingLayerWrites:
    def test_store_mutation_in_net_server_is_ln401(self):
        found = lint_source(
            "src/repro/serve/net/server.py",
            "def handle(self, user, pref):\n"
            "    self.server.store.add(user, pref)\n",
        )
        assert codes(found) == ["LN401"]

    def test_db_insert_in_cache_module_is_ln401(self):
        found = lint_source(
            "src/repro/cache/maintenance.py",
            "def apply(self, table, values):\n"
            "    self.db.insert(table, values)\n",
        )
        assert codes(found) == ["LN401"]

    def test_bare_store_name_is_flagged_too(self):
        found = lint_source(
            "src/repro/serve/net/load.py",
            "def seed(store, user):\n"
            "    store.clear(user)\n",
        )
        assert codes(found) == ["LN401"]

    def test_single_writer_path_is_exempt(self):
        # serve/server.py owns the mutex, the WAL and the commit feed; its
        # store/db calls are the sanctioned write path.
        found = lint_source(
            "src/repro/serve/server.py",
            "def add_preference(self, user, pref):\n"
            "    self.store.add(user, pref)\n"
            "    self.db.insert('T', (1,))\n",
        )
        assert found == []

    def test_reads_and_server_mutators_are_fine(self):
        found = lint_source(
            "src/repro/serve/net/server.py",
            "def query(self, user):\n"
            "    prefs = snapshot.store.preferences_of(user)\n"
            "    self.server.add_preference(user, prefs[0])\n"
            "    rows = snapshot.db.table('T').rows\n",
        )
        assert found == []

    def test_outside_the_serving_layer_is_out_of_scope(self):
        found = lint_source(
            "src/repro/engine/database.py",
            "def reseed(self):\n"
            "    self.db.insert('T', (1,))\n"
            "    self.store.clear('u')\n",
        )
        assert found == []

    def test_noqa_suppresses_a_sanctioned_write(self):
        found = lint_source(
            "src/repro/cache/service.py",
            "store.add(user, pref)  # noqa: LN401 - test fixture seeding\n",
        )
        assert found == []
