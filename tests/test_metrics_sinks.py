"""Trace sinks and renderers: JSONL round-trips, profiles, EXPLAIN ANALYZE."""

from __future__ import annotations

import json

from repro import Session, Tracer
from repro.obs import (
    InMemorySink,
    JsonlSink,
    Span,
    profile,
    read_jsonl,
    render_profile,
    render_trace,
)
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan


def _traced_run(db, example_preferences, strategy="gbu"):
    plan = (
        scan("MOVIES")
        .natural_join(scan("GENRES"), db.catalog)
        .prefer(example_preferences["p1"])
        .top(3, by="score")
        .build()
    )
    tracer = Tracer()
    result = ExecutionEngine(db).run(plan, strategy, tracer=tracer)
    return result, result.stats.trace


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def test_span_to_dict_from_dict_round_trip():
    tracer = Tracer()
    with tracer.span("parent", label="p") as parent:
        parent.add("rows_out", 7)
        parent.set("strategy", "gbu")
        with tracer.span("child") as child:
            child.add("scores", 3)

    data = parent.to_dict()
    restored = Span.from_dict(data)
    assert restored.name == "parent" and restored.label == "p"
    assert restored.counters == {"rows_out": 7}
    assert restored.attrs == {"strategy": "gbu"}
    assert [c.name for c in restored.children] == ["child"]
    assert restored.children[0].counters == {"scores": 3}
    # Times survive at millisecond-serialization precision.
    assert abs(restored.wall_time - parent.wall_time) < 1e-6
    # Empty optional sections are omitted from the JSON form.
    assert "children" not in data["children"][0]
    assert "attrs" not in data["children"][0]


def test_jsonl_sink_round_trip(tmp_path, movie_db, example_preferences):
    path = tmp_path / "traces.jsonl"
    sink = JsonlSink(str(path))
    for strategy in ("gbu", "ftp"):
        result, trace = _traced_run(movie_db, example_preferences, strategy)
        sink.write(trace, meta={"strategy": strategy, "rows": result.stats.rows})

    lines = path.read_text(encoding="utf-8").strip().splitlines()
    assert len(lines) == 2
    for line in lines:
        record = json.loads(line)
        assert set(record) == {"meta", "trace"}

    pairs = read_jsonl(str(path))
    assert [meta["strategy"] for meta, _ in pairs] == ["gbu", "ftp"]
    for meta, span in pairs:
        assert span.name == "query"
        # Round-tripped counters still match the recorded cardinality.
        assert span.counters["rows_out"] == meta["rows"]
        assert span.find(f"execute:{meta['strategy']}") is not None


def test_jsonl_sink_appends_and_creates_directories(tmp_path):
    path = tmp_path / "nested" / "dir" / "t.jsonl"
    sink = JsonlSink(str(path))
    tracer = Tracer()
    with tracer.span("a") as span:
        pass
    sink.write(span)
    sink.write(span, meta={"n": 2})
    assert len(read_jsonl(str(path))) == 2


def test_in_memory_sink_collects_records(movie_db, example_preferences):
    sink = InMemorySink()
    _, trace = _traced_run(movie_db, example_preferences)
    sink.write(trace, meta={"k": 1})
    sink.write(trace)
    assert len(sink) == 2
    metas = [meta for meta, _ in sink]
    assert metas == [{"k": 1}, {}]
    assert all(span is trace for _, span in sink)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def test_render_trace_shows_counters_and_times(movie_db, example_preferences):
    _, trace = _traced_run(movie_db, example_preferences)
    text = render_trace(trace)
    lines = text.splitlines()
    assert lines[0].startswith("query gbu")
    assert "rows_out=" in text
    assert "scores=" in text
    assert "ms]" in lines[0]
    # Tree connectors mirror the plan printer's style.
    assert any(line.lstrip().startswith(("├─", "└─")) for line in lines[1:])


def test_profile_aggregates_by_operator(movie_db, example_preferences):
    result, trace = _traced_run(movie_db, example_preferences)
    cells = profile(trace)
    assert cells["query"]["calls"] == 1
    assert cells["query"]["rows_out"] == result.stats.rows
    assert cells["query"]["wall_ms"] > 0
    assert "execute:gbu" in cells
    total_calls = sum(cell["calls"] for cell in cells.values())
    assert total_calls == sum(1 for _ in trace.walk())


def test_render_profile_table(movie_db, example_preferences):
    _, trace = _traced_run(movie_db, example_preferences)
    text = render_profile(trace)
    lines = text.splitlines()
    assert lines[0].split() == ["operator", "calls", "wall_ms", "cpu_ms", "rows_out"]
    assert set(lines[1]) <= {"-", " "}
    # Sorted by wall time: the synthetic root comes first (inclusive times).
    assert lines[2].startswith("query")


def test_explain_analyze_handles_missing_trace(movie_db, example_preferences):
    from repro.plan.printer import explain_analyze

    result, trace = _traced_run(movie_db, example_preferences)
    with_trace = explain_analyze(result.executed_plan, trace)
    assert "execution trace:" in with_trace
    without = explain_analyze(result.executed_plan, None)
    assert "no trace recorded" in without


def test_bench_measure_records_tracer_overhead(movie_db, example_preferences):
    from repro.bench.harness import Measurement, measure, tracer_overhead

    session = Session(movie_db)
    session.register_all(example_preferences.values())
    sql = "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING p1 TOP 3 BY score"

    plain = measure(session, sql, "gbu", repeats=1)
    assert isinstance(plain, Measurement)
    assert not plain.traced and plain.trace is None and plain.trace_overhead_pct is None

    sink = InMemorySink()
    traced = measure(session, sql, "gbu", repeats=1, trace=True, trace_sink=sink)
    assert traced.trace is not None and traced.trace.name == "query"
    assert traced.trace_overhead_pct is not None
    assert len(sink) == 1
    meta = sink.records[0][0]
    assert meta["strategy"] == "gbu" and "wall_ms_traced" in meta

    overhead = tracer_overhead(session, sql, "gbu", repeats=2)
    assert set(overhead) == {"untraced_ms", "traced_ms", "overhead_pct"}
    assert overhead["untraced_ms"] > 0 and overhead["traced_ms"] > 0
