"""Unit tests for the native optimizer: pushdowns and join ordering."""

import pytest

from repro.engine.expressions import TRUE, And, cmp, eq, is_true
from repro.engine.native_optimizer import optimize_native, order_joins, push_selections
from repro.pexec.reference import evaluate_reference
from repro.plan.analysis import is_left_deep
from repro.plan.builder import natural_join_condition, scan
from repro.plan.nodes import Join, Prefer, Project, Relation, Select, TopK, Union


def joined(db, *names):
    builder = scan(names[0])
    for name in names[1:]:
        builder = builder.natural_join(scan(name), db.catalog)
    return builder


class TestPushSelections:
    def test_selection_reaches_its_relation(self, movie_db):
        plan = joined(movie_db, "MOVIES", "DIRECTORS").select(eq("year", 2008)).build()
        optimized = push_selections(plan, movie_db.catalog)
        assert isinstance(optimized, Join)
        # The selection must now sit directly above MOVIES.
        selects = [n for n in optimized.walk() if isinstance(n, Select)]
        assert len(selects) == 1
        assert isinstance(selects[0].child, Relation)
        assert selects[0].child.name == "MOVIES"

    def test_conjunction_is_split(self, movie_db):
        condition = And(eq("year", 2008), eq("director", "C. Eastwood"))
        plan = joined(movie_db, "MOVIES", "DIRECTORS").select(condition).build()
        optimized = push_selections(plan, movie_db.catalog)
        selects = [n for n in optimized.walk() if isinstance(n, Select)]
        assert len(selects) == 2
        assert {s.child.name for s in selects} == {"MOVIES", "DIRECTORS"}

    def test_score_conjunct_never_enters_a_join_condition(self, movie_db):
        # Regression: a conf filter over a preference-free join used to be
        # classified "join" by _side_of and merged into the join condition.
        plan = joined(movie_db, "MOVIES", "DIRECTORS").select(
            cmp("conf", ">=", 0.2)
        ).build()
        optimized = push_selections(plan, movie_db.catalog)
        assert isinstance(optimized, Select)
        assert optimized.condition.references_score()
        join = optimized.child
        assert isinstance(join, Join)
        assert not join.condition.references_score()

    def test_join_spanning_condition_stays_at_join(self, movie_db):
        from repro.engine.expressions import Attr, Comparison

        spanning = Comparison("<", Attr("MOVIES.year"), Attr("AWARDS.year"))
        plan = (
            scan("MOVIES").join(scan("AWARDS"), on=TRUE).select(spanning).build()
        )
        optimized = push_selections(plan, movie_db.catalog)
        assert isinstance(optimized, Join)
        assert not is_true(optimized.condition)

    def test_score_filter_does_not_cross_prefer(self, movie_db, example_preferences):
        plan = (
            scan("GENRES")
            .prefer(example_preferences["p1"])
            .select(cmp("conf", ">", 0.5))
            .build()
        )
        optimized = push_selections(plan, movie_db.catalog)
        assert isinstance(optimized, Select)  # stays above the prefer
        assert isinstance(optimized.child, Prefer)

    def test_ordinary_filter_crosses_prefer(self, movie_db, example_preferences):
        plan = (
            scan("GENRES")
            .prefer(example_preferences["p1"])
            .select(eq("genre", "Drama"))
            .build()
        )
        optimized = push_selections(plan, movie_db.catalog)
        assert isinstance(optimized, Prefer)
        assert isinstance(optimized.child, Select)

    def test_nothing_crosses_topk(self, movie_db):
        plan = scan("MOVIES").top(3).select(eq("year", 2008)).build()
        optimized = push_selections(plan, movie_db.catalog)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, TopK)

    def test_nothing_crosses_set_ops(self, movie_db):
        plan = (
            scan("MOVIES")
            .union(scan("MOVIES"))
            .select(eq("year", 2008))
            .build()
        )
        optimized = push_selections(plan, movie_db.catalog)
        assert isinstance(optimized, Select)
        assert isinstance(optimized.child, Union)

    def test_semantics_preserved(self, movie_db):
        plan = (
            joined(movie_db, "MOVIES", "DIRECTORS", "GENRES")
            .select(And(eq("genre", "Drama"), cmp("year", ">", 2004)))
            .build()
        )
        optimized = push_selections(plan, movie_db.catalog)
        before = evaluate_reference(plan, movie_db.catalog)
        after = evaluate_reference(optimized, movie_db.catalog)
        assert before.same_contents(after)


class TestOrderJoins:
    def test_produces_left_deep(self, movie_db):
        plan = joined(movie_db, "MOVIES", "DIRECTORS", "GENRES", "RATINGS").build()
        ordered = order_joins(plan, movie_db.catalog)
        assert is_left_deep(ordered)

    def test_smallest_relation_first(self, movie_db):
        plan = joined(movie_db, "MOVIES", "DIRECTORS").build()
        ordered = order_joins(plan, movie_db.catalog)
        # DIRECTORS (3 rows) should be chosen before MOVIES (5 rows).
        leaves = [n for n in ordered.walk() if isinstance(n, Relation)]
        assert leaves[0].name == "DIRECTORS"

    def test_semantics_preserved(self, movie_db):
        plan = (
            joined(movie_db, "MOVIES", "DIRECTORS", "GENRES")
            .project(["title", "director", "genre"])
            .build()
        )
        ordered = order_joins(plan, movie_db.catalog)
        before = evaluate_reference(plan, movie_db.catalog)
        after = evaluate_reference(ordered, movie_db.catalog)
        # Column order may differ below the projection; the projection fixes it.
        assert before.same_contents(after)

    def test_cross_product_components_joined_last(self, movie_db):
        plan = Join(
            Join(Relation("MOVIES"), Relation("DIRECTORS"), TRUE),
            Relation("ACTORS"),
            TRUE,
        )
        ordered = order_joins(plan, movie_db.catalog)
        before = evaluate_reference(plan, movie_db.catalog)
        after = evaluate_reference(ordered, movie_db.catalog)
        assert len(before) == len(after) == 45

    def test_full_pipeline(self, movie_db):
        plan = (
            joined(movie_db, "MOVIES", "DIRECTORS", "GENRES")
            .select(eq("genre", "Comedy"))
            .project(["title", "director"])
            .build()
        )
        optimized = optimize_native(plan, movie_db.catalog)
        before = evaluate_reference(plan, movie_db.catalog)
        after = evaluate_reference(optimized, movie_db.catalog)
        assert before.same_contents(after)
        assert is_left_deep(optimized)
