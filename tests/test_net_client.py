"""PreferenceClient: retries, budgets, hints, deadlines, digest verification."""

from __future__ import annotations

import threading

import pytest

from repro.core.preference import Preference
from repro.engine.database import Database
from repro.engine.expressions import eq
from repro.engine.types import DataType
from repro.errors import NetworkFault, Overloaded, QueryTimeout
from repro.resilience import RetryBudget, RetryPolicy
from repro.resilience.faults import FaultPlan
from repro.serve.net.client import PreferenceClient
from repro.serve.net.server import NetServer, serve_in_thread
from repro.serve.server import PreferenceServer

SQL = """
    SELECT name FROM ITEMS
    PREFERRING {names}
    TOP 3 BY score
"""


def small_db() -> Database:
    db = Database()
    db.create_table(
        "ITEMS",
        [("i_id", DataType.INT), ("name", DataType.TEXT), ("colour", DataType.TEXT)],
        primary_key=["i_id"],
    )
    db.insert_many("ITEMS", [(1, "apple", "red"), (2, "pear", "green")])
    return db


class OneShot:
    """Fault factory: the armed plan governs exactly one connection."""

    def __init__(self, plan=None):
        self.plan = plan
        self.lock = threading.Lock()

    def arm(self, plan):
        with self.lock:
            self.plan = plan

    def __call__(self, index):
        with self.lock:
            plan, self.plan = self.plan, None
            return plan


def serve(faults=None, **kw):
    server = PreferenceServer(small_db())
    kw.setdefault("tenant_quota", None)
    net = NetServer(server, fault_factory=faults, default_sql=SQL, **kw)
    return server, serve_in_thread(net)


# -- retries over transport faults ---------------------------------------------


def test_dropped_response_is_retried_transparently():
    faults = OneShot(FaultPlan.transient("net.write", times=1, seed=0))
    server, handle = serve(faults)
    server.add_preference("public::u1", Preference("p", "ITEMS", eq("colour", "red"), 0.9, 0.9))
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=10.0,
        retry=RetryPolicy(attempts=3, base_delay=0.001),
    )
    try:
        result = client.query("u1")
        assert result["rows"] >= 1
        assert client.network_faults == 1
        assert client.retries == 1
    finally:
        client.close()
        handle.stop()


def test_retries_exhausted_raises_typed():
    class AlwaysDrop:
        def __call__(self, index):
            return FaultPlan.transient("net.accept", times=1, seed=index)

    _server, handle = serve(AlwaysDrop())
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=10.0,
        retry=RetryPolicy(attempts=3, base_delay=0.001),
    )
    try:
        with pytest.raises(NetworkFault):
            client.ping()
        assert client.network_faults == 3
    finally:
        client.close()
        handle.stop()


# -- server hints and retry budgets --------------------------------------------


def test_retry_after_hint_replaces_blind_backoff():
    _server, handle = serve(tenant_quota=0)
    slept: list[float] = []
    policy = RetryPolicy(
        attempts=2, base_delay=99.0, jitter=0.0, sleep=slept.append
    )
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=None, retry=policy
    )
    try:
        with pytest.raises(Overloaded) as excinfo:
            client.query("u1")
        hint = excinfo.value.retry_after
        assert hint is not None
        # The pause taken was the server's hint, not base_delay=99s.
        assert slept == [pytest.approx(hint, rel=0.5)]
        assert slept[0] < 10.0
    finally:
        client.close()
        handle.stop()


def test_retry_budget_stops_the_storm():
    _server, handle = serve(tenant_quota=0)
    budget = RetryBudget(capacity=1.0, refill=0.0)
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=None,
        retry=RetryPolicy(attempts=10, base_delay=0.0, sleep=lambda _s: None),
        budget=budget,
    )
    try:
        with pytest.raises(Overloaded):
            client.query("u1")
        # One token spent, then the budget refused further retries.
        assert client.retries == 1
        assert budget.spent == 1
        assert budget.denied >= 1
    finally:
        client.close()
        handle.stop()


def test_successes_refill_the_budget():
    _server, handle = serve()
    budget = RetryBudget(capacity=2.0, refill=0.5)
    budget.try_spend()
    budget.try_spend()
    assert budget.tokens == 0.0
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=10.0, budget=budget
    )
    try:
        client.ping()
        client.ping()
        assert budget.tokens == pytest.approx(1.0)
    finally:
        client.close()
        handle.stop()


# -- deadlines -----------------------------------------------------------------


def test_spent_deadline_raises_before_any_attempt():
    client = PreferenceClient("127.0.0.1", 1, deadline_s=0.0)
    with pytest.raises(QueryTimeout):
        client.ping()


def test_deadline_bounds_total_retrying():
    import time

    class AlwaysDrop:
        def __call__(self, index):
            return FaultPlan.transient("net.accept", times=1, seed=index)

    _server, handle = serve(AlwaysDrop())
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=0.3,
        retry=RetryPolicy(attempts=1000, base_delay=0.05),
    )
    try:
        started = time.monotonic()
        with pytest.raises((QueryTimeout, NetworkFault)):
            client.ping()
        assert time.monotonic() - started < 5.0
    finally:
        client.close()
        handle.stop()


# -- end-to-end digest verification --------------------------------------------


def test_digest_mismatch_is_refused(monkeypatch):
    server, handle = serve()
    server.add_preference(
        "public::u1", Preference("p", "ITEMS", eq("colour", "red"), 0.9, 0.9)
    )
    # Corrupt the server-side digest computation: the client's recomputation
    # over the received triples must now disagree and refuse the result.
    # (The query path reads protocol.triples_digest late, per call; the
    # client holds its own bound reference and stays honest.)
    import repro.serve.net.protocol as protocol

    monkeypatch.setattr(
        protocol, "triples_digest", lambda triples: "0" * 64
    )
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=5.0, retry=RetryPolicy(attempts=1)
    )
    try:
        with pytest.raises(NetworkFault, match="digest mismatch"):
            client.query("u1")
    finally:
        client.close()
        handle.stop()


# -- jitter and policy determinism ---------------------------------------------


def test_jittered_backoff_is_seeded_and_bounded():
    a = RetryPolicy(attempts=5, base_delay=0.1, jitter=0.5, seed=9)
    b = RetryPolicy(attempts=5, base_delay=0.1, jitter=0.5, seed=9)
    seq_a = [a.backoff(k) for k in range(1, 5)]
    seq_b = [b.backoff(k) for k in range(1, 5)]
    assert seq_a == seq_b  # same seed, same schedule
    for k, delay in enumerate(seq_a, start=1):
        nominal = min(0.1 * 2.0 ** (k - 1), a.max_delay)
        assert 0.5 * nominal <= delay <= 1.5 * nominal


def test_jitter_zero_is_exact_and_validation_rejects_bad_values():
    policy = RetryPolicy(base_delay=0.2, jitter=0.0)
    assert policy.backoff(1) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError):
        RetryBudget(capacity=0.0)
