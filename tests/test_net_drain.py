"""Graceful drain against a real subprocess server under SIGTERM.

The contract under test: an in-flight request completes and its response
is flushed, new work is refused with a *typed* ``Overloaded`` while the
drain runs, the WAL is fsync'd before exit even when the server was
opened with ``sync=False``, and the process exits cleanly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import eq
from repro.errors import Overloaded
from repro.resilience import RetryPolicy
from repro.serve.net.client import PreferenceClient
from repro.serve.server import PreferenceServer

SERVER_SCRIPT = """
import asyncio
import sys

from repro.engine.database import Database
from repro.engine.types import DataType
from repro.serve.net.server import NetServer
from repro.serve.server import PreferenceServer

SQL = '''
    SELECT name FROM ITEMS
    PREFERRING {names}
    TOP 3 BY score
'''


def initial():
    db = Database()
    db.create_table(
        "ITEMS",
        [("i_id", DataType.INT), ("name", DataType.TEXT), ("colour", DataType.TEXT)],
        primary_key=["i_id"],
    )
    db.insert_many("ITEMS", [(1, "apple", "red"), (2, "pear", "green")])
    return db


async def main():
    # sync=False: appends are acked without fsync, so the drain's final
    # sync_to_disk() is what makes acked writes survive the exit.
    server, _replay = PreferenceServer.open(
        sys.argv[1], initial=initial(), sync=False
    )
    net = NetServer(
        server, tenant_quota=None, test_ops=True, default_sql=SQL
    )
    await net.start()
    print(net.port, flush=True)
    await net.serve_until_stopped()


asyncio.run(main())
"""


def _spawn_server(tmp_path):
    script = tmp_path / "drain_server.py"
    script.write_text(SERVER_SCRIPT)
    data_dir = tmp_path / "data"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, str(script), str(data_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        port = int(line.strip())
    except ValueError:
        proc.kill()
        raise RuntimeError(
            f"server did not report a port: {line!r}\n{proc.stderr.read()}"
        )
    return proc, port, data_dir


def test_sigterm_drains_gracefully(tmp_path):
    proc, port, data_dir = _spawn_server(tmp_path)
    slow_result: dict = {}

    def hold_in_flight():
        slow = PreferenceClient("127.0.0.1", port, deadline_s=30.0)
        try:
            slow_result["ping"] = slow.ping(delay_ms=1500)
        except Exception as err:  # surfaced by the main thread's asserts
            slow_result["error"] = err
        finally:
            slow.close()

    client = PreferenceClient("127.0.0.1", port, deadline_s=10.0)
    try:
        # An acked write the drain must make durable (server runs sync=False).
        ack = client.add_preference(
            "u1", Preference("likes_green", "ITEMS", eq("colour", "green"), 0.9, 0.9)
        )
        assert ack["added"] is True
        assert ack["lsn"] >= 1

        holder = threading.Thread(target=hold_in_flight)
        holder.start()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if client.stats()["tenants"].get("public", 0) >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("slow ping never became in-flight")

        proc.send_signal(signal.SIGTERM)
        time.sleep(0.05)

        # New work during the drain is refused *typed*, not dropped.
        refused = PreferenceClient(
            "127.0.0.1", port, deadline_s=5.0, retry=RetryPolicy(attempts=1)
        )
        try:
            with pytest.raises(Overloaded) as excinfo:
                refused.ping()
            assert excinfo.value.reason == "shutting-down"
        finally:
            refused.close()

        # The in-flight request still completes and its response is flushed.
        holder.join(timeout=20.0)
        assert not holder.is_alive()
        ping = slow_result.get("ping")
        assert ping is not None, slow_result.get("error")
        assert ping["pong"] is True
    finally:
        client.close()
        try:
            proc.wait(timeout=20.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise

    assert proc.returncode == 0, proc.stderr.read()

    # The acked write survived: drain fsync'd the sync=False WAL before exit.
    recovered, _replay = PreferenceServer.open(str(data_dir))
    names = [p.name for p in recovered.store.preferences_of("public::u1")]
    assert "likes_green" in names
