"""Wire protocol: framing, digests, and the typed-error codec."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.errors import (
    CircuitOpen,
    NetworkFault,
    Overloaded,
    QueryTimeout,
    ReproError,
    ResourceExhausted,
    TransientFault,
)
from repro.serve.net.protocol import (
    MAX_FRAME,
    decode_body,
    encode_frame,
    error_from_dict,
    error_to_dict,
    read_frame,
    triples_digest,
    write_frame,
)


def _socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


# -- framing -------------------------------------------------------------------


def test_frame_round_trip_over_socket():
    a, b = _socket_pair()
    try:
        payload = {"op": "query", "user": "u1", "nested": {"k": [1, 2.5, None]}}
        write_frame(a, payload)
        assert read_frame(b) == payload
    finally:
        a.close()
        b.close()


def test_frame_bytes_are_deterministic():
    one = encode_frame({"b": 1, "a": 2})
    two = encode_frame({"a": 2, "b": 1})
    assert one == two  # canonical JSON: key order never changes the bytes


def test_clean_eof_between_frames_is_none():
    a, b = _socket_pair()
    try:
        a.close()
        assert read_frame(b) is None
    finally:
        b.close()


def test_eof_mid_frame_is_typed_network_fault():
    a, b = _socket_pair()
    try:
        frame = encode_frame({"op": "ping"})
        a.sendall(frame[: len(frame) - 3])  # torn: length promised more bytes
        a.close()
        with pytest.raises(NetworkFault):
            read_frame(b)
    finally:
        b.close()


def test_torn_length_word_is_typed_network_fault():
    a, b = _socket_pair()
    try:
        a.sendall(b"\x00\x00")  # half a length word, then EOF
        a.close()
        with pytest.raises(NetworkFault):
            read_frame(b)
    finally:
        b.close()


def test_garbled_body_is_typed_network_fault():
    with pytest.raises(NetworkFault):
        decode_body(b"not json at all {{{")
    with pytest.raises(NetworkFault):
        decode_body(b"[1, 2, 3]")  # valid JSON, but not an object


def test_oversized_length_word_is_refused():
    a, b = _socket_pair()
    try:
        a.sendall((MAX_FRAME + 1).to_bytes(4, "big"))
        with pytest.raises(NetworkFault, match="MAX_FRAME"):
            read_frame(b)
    finally:
        a.close()
        b.close()


def test_stalled_read_times_out_typed():
    a, b = _socket_pair()
    try:
        b.settimeout(0.05)
        with pytest.raises(NetworkFault, match="stalled"):
            read_frame(b)  # nothing ever arrives
    finally:
        a.close()
        b.close()


def test_concurrent_frames_keep_their_shape():
    a, b = _socket_pair()
    received = []

    def reader():
        while True:
            frame = read_frame(b)
            if frame is None:
                return
            received.append(frame)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for i in range(50):
            write_frame(a, {"id": i, "payload": "x" * (i * 7 % 91)})
    finally:
        a.close()
        thread.join(timeout=5.0)
        b.close()
    assert [f["id"] for f in received] == list(range(50))


# -- digests -------------------------------------------------------------------


def test_triples_digest_is_order_independent():
    rows = [
        (("a", 1), 0.5, 0.9),
        (("b", 2), None, 0.8),
        (("c", 3), 0.25, 0.7),
    ]
    assert triples_digest(rows) == triples_digest(list(reversed(rows)))


def test_triples_digest_normalizes_tuples_and_lists():
    as_tuples = [(("a", 1), 0.5, 0.9)]
    as_lists = [[["a", 1], 0.5, 0.9]]  # what a JSON round trip produces
    assert triples_digest(as_tuples) == triples_digest(as_lists)


def test_triples_digest_sees_changed_rows():
    base = [(("a", 1), 0.5, 0.9)]
    assert triples_digest(base) != triples_digest([(("a", 1), 0.5, 0.8)])
    assert triples_digest(base) != triples_digest([(("a", 2), 0.5, 0.9)])
    assert triples_digest(base) != triples_digest([(("a", 1), None, 0.9)])


# -- the error codec -----------------------------------------------------------


@pytest.mark.parametrize(
    "err",
    [
        Overloaded("queue-full", limit=8, retry_after=0.25),
        Overloaded("tenant-quota", limit=4, session="t1", retry_after=1.5),
        Overloaded("shutting-down"),
        QueryTimeout(1.5, 1.7),
        ResourceExhausted("rows", 100, 150),
        TransientFault("net.read"),
        NetworkFault("net.write", "torn frame"),
        CircuitOpen("gbu"),
    ],
)
def test_error_codec_round_trips_typed_errors(err):
    rebuilt = error_from_dict(error_to_dict(err))
    assert type(rebuilt) is type(err)
    for attr in ("reason", "limit", "session", "retry_after", "timeout",
                 "elapsed", "kind", "used", "site", "strategy"):
        assert getattr(rebuilt, attr, None) == getattr(err, attr, None)


def test_untyped_error_is_flagged_and_wrapped():
    data = error_to_dict(ValueError("boom"))
    assert data["typed"] is False
    rebuilt = error_from_dict(data)
    assert isinstance(rebuilt, ReproError)
    assert "server-internal" in str(rebuilt)
    assert "boom" in str(rebuilt)


def test_unknown_typed_error_degrades_to_repro_error():
    rebuilt = error_from_dict({"type": "NoSuchError", "message": "m", "typed": True})
    assert type(rebuilt) is ReproError
    assert "NoSuchError" in str(rebuilt)


def test_overloaded_message_carries_retry_after():
    err = Overloaded("queue-full", limit=8, retry_after=0.251)
    assert "retry after 0.251s" in str(err)
