"""NetServer: dispatch, tenancy, deadlines, admission, observability."""

from __future__ import annotations

import pytest

from repro.core.preference import Preference
from repro.engine.database import Database
from repro.engine.expressions import eq
from repro.engine.types import DataType
from repro.errors import Overloaded, QueryTimeout, ReproError
from repro.obs import InMemorySink
from repro.resilience import RetryPolicy
from repro.serve.net.client import PreferenceClient
from repro.serve.net.protocol import triples_digest, wire_triples
from repro.serve.net.server import NetServer, namespaced, serve_in_thread
from repro.serve.server import PreferenceServer

SQL = """
    SELECT name, colour FROM ITEMS
    PREFERRING {names}
    TOP 3 BY score
"""


def small_db() -> Database:
    db = Database()
    db.create_table(
        "ITEMS",
        [("i_id", DataType.INT), ("name", DataType.TEXT), ("colour", DataType.TEXT)],
        primary_key=["i_id"],
    )
    db.insert_many(
        "ITEMS",
        [(1, "apple", "red"), (2, "pear", "green"), (3, "plum", "purple"),
         (4, "grape", "green")],
    )
    return db


def green() -> Preference:
    return Preference("likes_green", "ITEMS", eq("colour", "green"), 0.9, 0.9)


def red() -> Preference:
    return Preference("likes_red", "ITEMS", eq("colour", "red"), 0.9, 0.9)


@pytest.fixture()
def served():
    server = PreferenceServer(small_db())
    net = NetServer(
        server, tenant_quota=None, test_ops=True, default_sql=SQL
    )
    handle = serve_in_thread(net)
    client = PreferenceClient("127.0.0.1", handle.port, deadline_s=15.0)
    try:
        yield server, net, handle, client
    finally:
        client.close()
        if not net.draining:
            handle.stop()


# -- dispatch ------------------------------------------------------------------


def test_query_matches_in_process_execution(served):
    server, _net, _handle, client = served
    server.add_preference(namespaced("public", "u1"), green())
    over_the_wire = client.query("u1", SQL.format(names="likes_green"))
    snapshot = server.snapshot()
    session = snapshot.session_for(namespaced("public", "u1"))
    local = session.execute(SQL.format(names="likes_green"))
    assert over_the_wire["digest"] == triples_digest(wire_triples(local))
    assert over_the_wire["rows"] == len(local.presented())


def test_query_without_sql_uses_snapshot_preferences(served):
    server, _net, _handle, client = served
    server.add_preference(namespaced("public", "u2"), green())
    result = client.query("u2")
    assert result["prefs"] == ["likes_green"]
    assert result["rows"] >= 1


def test_query_for_unknown_user_returns_empty(served):
    _server, _net, _handle, client = served
    result = client.query("nobody")
    assert result["rows"] == 0
    assert result["triples"] == []


def test_unknown_op_is_typed_error(served):
    _server, _net, _handle, client = served
    with pytest.raises(ReproError, match="unknown op"):
        client.call({"op": "frobnicate"})


def test_query_needs_a_user(served):
    _server, _net, _handle, client = served
    with pytest.raises(ReproError, match="needs a user"):
        client.call({"op": "query"})


# -- writes over the wire ------------------------------------------------------


def test_wire_writes_apply_to_the_served_state(served):
    server, _net, _handle, client = served
    assert client.add_preference("u3", green())["added"] is True
    assert client.query("u3")["prefs"] == ["likes_green"]
    assert client.remove_preference("u3", "likes_green")["removed"] is True
    assert client.remove_preference("u3", "likes_green")["removed"] is False
    client.add_preference("u3", green())
    client.add_preference("u3", red())
    assert client.clear_preferences("u3")["dropped"] == 2
    client.insert("ITEMS", [9, "kiwi", "green"])
    assert server.db.table("ITEMS").get((9,)) is not None


# -- tenancy -------------------------------------------------------------------


def test_tenants_namespace_users(served):
    _server, _net, handle, client = served
    other = PreferenceClient("127.0.0.1", handle.port, tenant="acme", deadline_s=15.0)
    try:
        client.add_preference("shared", green())
        other.add_preference("shared", red())
        assert client.query("shared")["prefs"] == ["likes_green"]
        assert other.query("shared")["prefs"] == ["likes_red"]
    finally:
        other.close()


def test_tenant_quota_sheds_typed_with_retry_after():
    server = PreferenceServer(small_db())
    net = NetServer(server, tenant_quota=0, test_ops=True)
    handle = serve_in_thread(net)
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=5.0, retry=RetryPolicy(attempts=1)
    )
    try:
        with pytest.raises(Overloaded) as excinfo:
            client.query("u1")
        assert excinfo.value.reason == "tenant-quota"
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after > 0
    finally:
        client.close()
        handle.stop()


def test_control_ops_bypass_tenant_quota():
    server = PreferenceServer(small_db())
    net = NetServer(server, tenant_quota=0)
    handle = serve_in_thread(net)
    client = PreferenceClient(
        "127.0.0.1", handle.port, deadline_s=5.0, retry=RetryPolicy(attempts=1)
    )
    try:
        assert client.ping() == {"pong": True}
        assert client.health()["status"] == "ok"
        assert client.ready()["ready"] is True
    finally:
        client.close()
        handle.stop()


# -- deadlines -----------------------------------------------------------------


def test_expired_deadline_is_refused_before_admission(served):
    _server, _net, _handle, client = served
    with pytest.raises(QueryTimeout):
        client.call({"op": "query", "user": "u1", "deadline_ms": -5.0})


def test_deadline_propagates_to_the_worker(served):
    _server, net, _handle, client = served
    # A 1ms deadline cannot cover a 200ms in-flight sleep: the guard the
    # server builds from deadline_ms must cut it off with a typed timeout.
    with pytest.raises(QueryTimeout):
        client.call(
            {"op": "ping", "delay_ms": 200, "deadline_ms": 60.0}, deadline_s=None
        )


# -- health / readiness / stats ------------------------------------------------


def test_health_and_stats_reflect_served_traffic(served):
    server, _net, _handle, client = served
    server.add_preference(namespaced("public", "u1"), green())
    client.query("u1")
    stats = client.stats()
    assert stats["completed"] >= 1
    assert stats["draining"] is False
    health = client.health()
    assert health["status"] == "ok"
    assert health["draining"] is False


# -- observability -------------------------------------------------------------


def test_connections_emit_serve_net_spans():
    sink = InMemorySink()
    server = PreferenceServer(small_db())
    net = NetServer(server, tenant_quota=None, trace_sink=sink)
    handle = serve_in_thread(net)
    client = PreferenceClient("127.0.0.1", handle.port, deadline_s=15.0)
    try:
        client.ping()
        client.ping()
    finally:
        client.close()
        handle.stop()
    spans = [span for _meta, span in sink.records if span.name == "serve.net"]
    assert spans, "expected a serve.net span per connection"
    assert spans[0].counters.get("frames_in", 0) >= 2
    assert spans[0].counters.get("frames_out", 0) >= 2
