"""Tests for the full preference-optimizer pipeline (Fig. 7's transformation)."""

import pytest

from tests.conftest import assert_plans_equivalent

from repro.core.preference import Preference
from repro.engine.expressions import And, cmp, eq
from repro.optimizer import OptimizerConfig, PreferenceOptimizer, optimize
from repro.pexec.reference import evaluate_reference
from repro.plan.analysis import is_left_deep, qualify_preferences
from repro.plan.builder import scan
from repro.plan.nodes import Join, Prefer, Project, Relation, Select


def example12_plan(db, example_preferences):
    """A plan in the spirit of Fig. 7(a): prefers and selects at the top."""
    return qualify_preferences(
        (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), db.catalog)
            .natural_join(scan("GENRES"), db.catalog)
            .select(And(eq("year", 2008), eq("genre", "Drama")))
            .prefer(example_preferences["p1"])
            .prefer(example_preferences["p2"])
            .build()
        ),
        db.catalog,
    )


class TestPipeline:
    def test_example12_shape(self, movie_db, example_preferences):
        """Selections and prefers end up on their relations (Fig. 7(b))."""
        plan = example12_plan(movie_db, example_preferences)
        optimized = optimize(plan, movie_db.catalog)
        for node in optimized.walk():
            if isinstance(node, Prefer):
                # Each prefer sits on a leaf-ish unit, not above a join.
                assert not isinstance(node.child, Join)
            if isinstance(node, Select):
                assert isinstance(node.child, Relation)

    def test_result_is_left_deep(self, movie_db, example_preferences):
        plan = example12_plan(movie_db, example_preferences)
        optimized = optimize(plan, movie_db.catalog)
        assert is_left_deep(optimized)

    def test_semantics_preserved(self, movie_db, example_preferences):
        plan = example12_plan(movie_db, example_preferences)
        optimized = optimize(plan, movie_db.catalog)
        assert_plans_equivalent(movie_db, plan, optimized)

    def test_projection_plan_preserved(self, movie_db, example_preferences):
        plan = qualify_preferences(
            (
                scan("MOVIES")
                .natural_join(scan("DIRECTORS"), movie_db.catalog)
                .prefer(example_preferences["p2"])
                .project(["title", "director"])
                .build()
            ),
            movie_db.catalog,
        )
        optimized = optimize(plan, movie_db.catalog)
        assert_plans_equivalent(movie_db, plan, optimized)

    def test_disabled_config_is_identity(self, movie_db, example_preferences):
        plan = example12_plan(movie_db, example_preferences)
        optimizer = PreferenceOptimizer(movie_db.catalog, OptimizerConfig.none())
        assert optimizer.optimize(plan) == plan

    @pytest.mark.parametrize(
        "disabled",
        [
            "push_selections",
            "push_projections",
            "push_prefers",
            "reorder_prefers",
            "match_join_order",
            "left_deep",
        ],
    )
    def test_each_rule_alone_preserves_semantics(
        self, movie_db, example_preferences, disabled
    ):
        """Every rule subset yields an equivalent plan (ablation soundness)."""
        config = OptimizerConfig(**{disabled: False})
        plan = example12_plan(movie_db, example_preferences)
        optimized = PreferenceOptimizer(movie_db.catalog, config).optimize(plan)
        assert_plans_equivalent(movie_db, plan, optimized)

    def test_topk_plan_optimization(self, movie_db, example_preferences):
        plan = qualify_preferences(
            (
                scan("MOVIES")
                .natural_join(scan("GENRES"), movie_db.catalog)
                .prefer(example_preferences["p1"])
                .top(3, by="score")
                .build()
            ),
            movie_db.catalog,
        )
        optimized = optimize(plan, movie_db.catalog)
        assert_plans_equivalent(movie_db, plan, optimized)

    def test_score_filter_stays_above_prefers(self, movie_db, example_preferences):
        plan = qualify_preferences(
            (
                scan("GENRES")
                .prefer(example_preferences["p1"])
                .select(cmp("conf", ">", 0.5))
                .build()
            ),
            movie_db.catalog,
        )
        optimized = optimize(plan, movie_db.catalog)
        top = optimized
        assert isinstance(top, Select)
        assert top.condition.references_score()
        assert_plans_equivalent(movie_db, plan, optimized)
