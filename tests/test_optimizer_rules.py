"""Unit tests for the preference optimizer's heuristic rules 1–5 (§VI-A)."""

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import TRUE, And, cmp, eq
from repro.optimizer.rules import (
    push_prefers,
    push_projections,
    push_selections,
    reorder_prefers,
)
from repro.optimizer.selectivity import preference_selectivity
from repro.pexec.reference import evaluate_reference
from repro.plan.analysis import qualify_preferences
from repro.plan.builder import natural_join_condition, scan
from repro.plan.nodes import (
    Intersect,
    Join,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)


def qualified(db, plan):
    return qualify_preferences(plan, db.catalog)


class TestRule2Projections:
    def test_projection_inserted_above_relations(self, movie_db, example_preferences):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), movie_db.catalog)
            .prefer(example_preferences["p2"])
            .project(["title"])
            .build()
        )
        plan = qualified(movie_db, plan)
        pruned = push_projections(plan, movie_db.catalog)
        inner = [
            n for n in pruned.walk() if isinstance(n, Project) and isinstance(n.child, Relation)
        ]
        assert inner, "expected pushed-down projections above base relations"
        movies_proj = next(p for p in inner if p.child.name == "MOVIES")
        kept = {a.lower() for a in movies_proj.attrs}
        assert "movies.duration" not in kept  # unused column pruned

    def test_needed_attributes_survive(self, movie_db, example_preferences):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), movie_db.catalog)
            .prefer(example_preferences["p2"])
            .project(["title"])
            .build()
        )
        plan = qualified(movie_db, plan)
        pruned = push_projections(plan, movie_db.catalog)
        before = evaluate_reference(plan, movie_db.catalog)
        after = evaluate_reference(pruned, movie_db.catalog)
        assert before.same_contents(after)

    def test_no_projection_means_no_pruning(self, movie_db):
        plan = scan("MOVIES").select(eq("year", 2008)).build()
        assert push_projections(plan, movie_db.catalog) == plan

    def test_union_under_project_reports_blocked_pushdown(self, movie_db):
        # Regression: the pushdown used to stop silently at set operations;
        # it must leave the subtree intact AND say so (PV201, info).
        plan = Project(
            Union(Relation("MOVIES"), Relation("MOVIES")), ["title"]
        )
        diagnostics = []
        pruned = push_projections(plan, movie_db.catalog, diagnostics)
        assert pruned == plan  # positional inputs stay at full width
        assert [d.code for d in diagnostics] == ["PV201"]
        assert "positional" in diagnostics[0].message

    def test_blocked_pushdown_is_silent_without_a_sink(self, movie_db):
        plan = Project(
            Union(Relation("MOVIES"), Relation("MOVIES")), ["title"]
        )
        assert push_projections(plan, movie_db.catalog) == plan


class TestRules34PreferPushdown:
    def test_prefer_pushed_to_owning_join_side(self, movie_db, example_preferences):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), movie_db.catalog)
            .prefer(example_preferences["p2"])
            .build()
        )
        plan = qualified(movie_db, plan)
        pushed = push_prefers(plan, movie_db.catalog)
        assert isinstance(pushed, Join)
        prefer_node = next(n for n in pushed.walk() if isinstance(n, Prefer))
        assert isinstance(prefer_node.child, Relation)
        assert prefer_node.child.name == "DIRECTORS"

    def test_prefer_stops_on_top_of_select(self, movie_db, example_preferences):
        plan = (
            scan("GENRES")
            .select(eq("m_id", 4))
            .prefer(example_preferences["p1"])
            .build()
        )
        plan = qualified(movie_db, plan)
        pushed = push_prefers(plan, movie_db.catalog)
        assert isinstance(pushed, Prefer)
        assert isinstance(pushed.child, Select)

    def test_multi_relational_preference_stays(self, movie_db):
        from repro.core.scoring import recency_score

        # p6 reads genre (GENRES) in the condition and year (MOVIES) in the
        # scoring part: neither join side owns all attributes.
        p6 = Preference(
            "p6",
            ("MOVIES", "GENRES"),
            eq("genre", "Action"),
            recency_score("year", 2011),
            0.8,
        )
        plan = (
            scan("MOVIES")
            .natural_join(scan("GENRES"), movie_db.catalog)
            .prefer(p6)
            .build()
        )
        plan = qualified(movie_db, plan)
        pushed = push_prefers(plan, movie_db.catalog)
        assert isinstance(pushed, Prefer)  # cannot sink into either side alone

    def test_membership_preference_stays_on_product(self, movie_db):
        p7 = Preference.membership(("MOVIES", "AWARDS"), 1.0, 0.9)
        plan = (
            scan("MOVIES")
            .join(scan("AWARDS"), on=eq("MOVIES.m_id", 1))
            .prefer(p7)
            .build()
        )
        pushed = push_prefers(qualified(movie_db, plan), movie_db.catalog)
        assert isinstance(pushed, Prefer)

    def test_prefer_not_pushed_through_union(self, movie_db, example_preferences):
        plan = (
            scan("GENRES")
            .union(scan("GENRES"))
            .prefer(example_preferences["p1"])
            .build()
        )
        pushed = push_prefers(qualified(movie_db, plan), movie_db.catalog)
        assert isinstance(pushed, Prefer)
        assert isinstance(pushed.child, Union)

    def test_prefer_pushed_through_intersection(self, movie_db, example_preferences):
        plan = (
            scan("GENRES")
            .intersect(scan("GENRES"))
            .prefer(example_preferences["p1"])
            .build()
        )
        pushed = push_prefers(qualified(movie_db, plan), movie_db.catalog)
        assert isinstance(pushed, Intersect)
        assert isinstance(pushed.children()[0], Prefer)

    def test_chain_sinks_through_sibling_prefers(self, movie_db, example_preferences):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), movie_db.catalog)
            .prefer(example_preferences["p2"])
            .prefer(
                Preference("pm", "MOVIES", cmp("year", ">", 2005), 0.5, 0.5)
            )
            .build()
        )
        pushed = push_prefers(qualified(movie_db, plan), movie_db.catalog)
        prefer_nodes = [n for n in pushed.walk() if isinstance(n, Prefer)]
        assert len(prefer_nodes) == 2
        children = {n.child.name for n in prefer_nodes if isinstance(n.child, Relation)}
        assert children == {"MOVIES", "DIRECTORS"}

    def test_semantics_preserved(self, movie_db, example_preferences):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), movie_db.catalog)
            .natural_join(scan("GENRES"), movie_db.catalog)
            .prefer(example_preferences["p1"])
            .prefer(example_preferences["p2"])
            .build()
        )
        plan = qualified(movie_db, plan)
        pushed = push_prefers(plan, movie_db.catalog)
        assert evaluate_reference(plan, movie_db.catalog).same_contents(
            evaluate_reference(pushed, movie_db.catalog)
        )


class TestRule5Reordering:
    def test_more_selective_preference_goes_lower(self, movie_db):
        broad = Preference("broad", "GENRES", eq("genre", "Drama"), 0.5, 0.5)
        narrow = Preference("narrow", "GENRES", eq("genre", "Comedy"), 0.5, 0.5)
        base = Relation("GENRES")
        assert preference_selectivity(narrow, base, movie_db.catalog) < (
            preference_selectivity(broad, base, movie_db.catalog)
        )
        plan = Prefer(Prefer(base, narrow), broad)  # narrow evaluated first: OK
        plan2 = Prefer(Prefer(base, broad), narrow)  # wrong order
        ordered = reorder_prefers(plan2, movie_db.catalog)
        chain = [n.preference.name for n in ordered.walk() if isinstance(n, Prefer)]
        assert chain == ["broad", "narrow"]  # outermost first ⇒ narrow deepest

    def test_single_prefer_untouched(self, movie_db, example_preferences):
        plan = Prefer(Relation("GENRES"), example_preferences["p1"])
        assert reorder_prefers(plan, movie_db.catalog) == plan

    def test_semantics_preserved(self, movie_db):
        a = Preference("a", "GENRES", eq("genre", "Drama"), 0.4, 0.6)
        b = Preference("b", "GENRES", eq("genre", "Comedy"), 0.9, 0.2)
        plan = Prefer(Prefer(Relation("GENRES"), a), b)
        ordered = reorder_prefers(plan, movie_db.catalog)
        assert evaluate_reference(plan, movie_db.catalog).same_contents(
            evaluate_reference(ordered, movie_db.catalog)
        )
