"""The paper's running examples (Sections III–VI), end to end.

One test per numbered example, asserting the behaviour the text describes —
this file is the guided tour of the reproduction.
"""

import pytest

from repro import (
    Database,
    ExecutionEngine,
    F_MAX,
    F_S,
    PRelation,
    Preference,
    ScorePair,
    around_score,
    cmp,
    eq,
    prefer,
    rating_score,
    recency_score,
    scan,
    weighted,
)
from repro.core.scorepair import IDENTITY
from repro.query import Session


class TestExample1AtomicPreferences:
    """Alice rated Million Dollar Baby 8/10 and Gran Torino 3/10."""

    def test_p1_p2(self, movie_db):
        p1 = Preference.atomic("MOVIES", "m_id", 3, 0.8)
        p2 = Preference.atomic("MOVIES", "m_id", 1, 0.3)
        relation = PRelation.from_table(movie_db.table("MOVIES"))
        out = prefer(prefer(relation, p1), p2)
        by_id = {row[0]: pair for row, pair in out}
        assert by_id[3] == ScorePair(0.8, 1.0)   # explicitly provided: conf 1
        assert by_id[1] == ScorePair(0.3, 1.0)
        assert by_id[2] == IDENTITY               # unaffected tuples keep ⟨⊥,0⟩


class TestExample2GenericPreference:
    """p3[GENRES] = (σ_{genre='Comedy'}, 1, 0.8): all comedies get max score."""

    def test_p3(self, movie_db):
        p3 = Preference("p3", "GENRES", eq("genre", "Comedy"), 1.0, 0.8)
        out = prefer(PRelation.from_table(movie_db.table("GENRES")), p3)
        comedies = [pair for row, pair in out if row[1] == "Comedy"]
        others = [pair for row, pair in out if row[1] != "Comedy"]
        assert all(p == ScorePair(1.0, 0.8) for p in comedies)
        assert all(p == IDENTITY for p in others)


class TestExample3ElaboratePreferences:
    def test_p4_rating_with_votes_condition(self, movie_db):
        """p4[RATINGS] = (σ_{votes>50}, S_r(rating), 0.8)."""
        p4 = Preference("p4", "RATINGS", cmp("votes", ">", 50), rating_score("rating"), 0.8)
        out = prefer(PRelation.from_table(movie_db.table("RATINGS")), p4)
        by_id = {row[0]: pair for row, pair in out}
        assert by_id[1].score == pytest.approx(0.81)  # 8.1 → 0.81
        assert by_id[2] == IDENTITY                   # only 40 votes
        assert by_id[5] == IDENTITY                   # only 30 votes

    def test_p5_multi_attribute(self, movie_db):
        """p5 = (0.5·S_m(year,2011) + 0.5·S_d(duration,120), 0.9)."""
        scoring = weighted(
            [(0.5, recency_score("year", 2011)), (0.5, around_score("duration", 120))]
        )
        from repro.engine.expressions import TRUE

        p5 = Preference("p5", "MOVIES", TRUE, scoring, 0.9)
        out = prefer(PRelation.from_table(movie_db.table("MOVIES")), p5)
        gran = next(pair for row, pair in out if row[0] == 1)
        expected = 0.5 * (2008 / 2011) + 0.5 * (1 - 4 / 120)
        assert gran.score == pytest.approx(expected)
        assert gran.conf == pytest.approx(0.9)

    def test_p6_multi_relational(self, movie_db):
        """p6[MOVIES×GENRES] = (σ_{genre='Action'}, S_m(year,2011), 0.8)."""
        p6 = Preference(
            "p6", ("MOVIES", "GENRES"), eq("genre", "Drama"), recency_score("year", 2011), 0.8
        )
        plan = scan("MOVIES").natural_join(scan("GENRES"), movie_db.catalog).prefer(p6).build()
        result = ExecutionEngine(movie_db).run(plan, "gbu").relation
        dramas = [(row, pair) for row, pair in result if "Drama" in row]
        assert dramas
        assert all(pair.conf == pytest.approx(0.8) for _, pair in dramas)

    def test_p7_membership(self, movie_db):
        """p7[MOVIES×AWARDS] = (σ_true, 1, 0.9): awarded movies preferred."""
        from repro.engine.expressions import Attr, Comparison

        p7 = Preference.membership(("MOVIES", "AWARDS"), 1.0, 0.9, name="p7")
        plan = (
            scan("MOVIES")
            .join(scan("AWARDS"), on=Comparison("=", Attr("MOVIES.m_id"), Attr("AWARDS.m_id")))
            .prefer(p7)
            .build()
        )
        result = ExecutionEngine(movie_db).run(plan, "gbu").relation
        assert all(pair == ScorePair(1.0, 0.9) for _, pair in result)


class TestExample4And5Aggregates:
    def test_f_s_weights_by_confidence(self):
        """F_S: scores with lower confidence contribute less."""
        confident = ScorePair(1.0, 0.9)
        doubtful = ScorePair(0.0, 0.1)
        out = F_S.combine(confident, doubtful)
        assert out.score == pytest.approx(0.9)
        assert out.conf == pytest.approx(1.0)  # total credibility is the sum

    def test_f_max_takes_most_confident(self):
        out = F_MAX.combine(ScorePair(0.2, 0.9), ScorePair(1.0, 0.5))
        assert out == ScorePair(0.2, 0.9)


class TestExample6UnionOfUsers:
    """Movies Alice and Bob could see jointly: R1 ∪_{F_S} R2."""

    def test_union(self, movie_db):
        from repro.core import algebra

        schema = movie_db.table("MOVIES").schema
        rows = movie_db.table("MOVIES").rows
        alice = PRelation(schema, rows[:3], [ScorePair(0.8, 1.0)] * 3)
        bob = PRelation(schema, rows[1:], [ScorePair(0.4, 1.0)] * 4)
        both = algebra.union(alice, bob)
        assert len(both) == 5
        shared = {row[0]: pair for row, pair in both}
        assert shared[2].score == pytest.approx(0.6)   # in both: combined
        assert shared[2].conf == pytest.approx(2.0)
        assert shared[1] == ScorePair(0.8, 1.0)        # Alice only
        assert shared[5] == ScorePair(0.4, 1.0)        # Bob only


class TestExample7JoinOnPRelations:
    def test_movies_join_directors(self, movie_db):
        """Fig. 3(c): join passes director pairs onto movies."""
        from repro.core import algebra
        from repro.engine.expressions import Attr, Comparison

        movies = PRelation.from_table(movie_db.table("MOVIES"))
        directors = PRelation.from_table(movie_db.table("DIRECTORS"))
        directors.pairs[0] = ScorePair(0.8, 1.0)
        directors.pairs[1] = ScorePair(0.9, 0.9)
        out = algebra.join(
            movies, directors, Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id"))
        )
        pairs = {row[0]: pair for row, pair in out}
        assert pairs[1] == ScorePair(0.8, 1.0)
        assert pairs[3] == ScorePair(0.8, 1.0)
        assert pairs[4] == ScorePair(0.9, 0.9)
        assert pairs[2] == IDENTITY


class TestExample8PreferChain:
    """λ_pb(λ_pa(MOVIES)) — covered numerically in test_prefer; here the
    operator-level claims."""

    def test_scores_accumulate_and_nothing_is_filtered(self, movie_db):
        pa = Preference("pa", "MOVIES", cmp("year", ">=", 2000), recency_score("year", 2011), 1.0)
        pb = Preference("pb", "MOVIES", cmp("duration", ">=", 120), around_score("duration", 120), 0.5)
        out = prefer(prefer(PRelation.from_table(movie_db.table("MOVIES")), pa), pb)
        assert len(out) == 5
        both = [p for p in out.pairs if p.conf == pytest.approx(1.5)]
        assert len(both) == 3  # Wall Street, Million Dollar Baby, Match Point


class TestExamples9To11Queries:
    """The three preferential-query flavours of Section V (Q1, Q2, Q3)."""

    @pytest.fixture
    def session(self, movie_db, example_preferences):
        s = Session(movie_db)
        s.register_all(example_preferences.values())
        return s

    def test_q1_top_k(self, session):
        rows = session.rows(
            """
            SELECT title, director FROM MOVIES
              NATURAL JOIN GENRES NATURAL JOIN DIRECTORS
              NATURAL JOIN CAST NATURAL JOIN ACTORS
            WHERE year >= 2005
            PREFERRING p1, p2, p3
            TOP 2 BY score
            """
        )
        assert len(rows) == 2
        # Scarlett (a_id 1, conf 1, score 1) movies dominate: Match Point & Scoop.
        assert {r[0] for r in rows} <= {"Match Point", "Scoop", "Gran Torino"}
        assert rows[0][2] >= rows[1][2]  # ordered by score

    def test_q2_confidence_threshold(self, session):
        safe = session.rows(
            """
            SELECT title FROM MOVIES
              NATURAL JOIN GENRES NATURAL JOIN DIRECTORS
            WHERE year >= 2005 AND conf >= 1.7
            PREFERRING p1, p2
            """
        )
        assert safe == []  # nothing satisfies both preferences at once here
        lenient = session.rows(
            """
            SELECT title FROM MOVIES
              NATURAL JOIN GENRES NATURAL JOIN DIRECTORS
            WHERE year >= 2005 AND conf >= 0.8
            PREFERRING p1, p2
            """
        )
        assert {r[0] for r in lenient} == {"Match Point", "Scoop", "Gran Torino"}

    def test_q3_blending(self, session):
        """Alice's mandatory preferences enriched with Bob's (Example 11)."""
        rows = session.rows(
            """
            SELECT title, MOVIES.m_id FROM MOVIES NATURAL JOIN DIRECTORS
            WHERE conf > 0 PREFERRING p2
            UNION
            SELECT title, MOVIES.m_id FROM MOVIES NATURAL JOIN DIRECTORS
            WHERE score > 0 PREFERRING p4, p5
            ORDER BY score
            """
        )
        titles = [r[0] for r in rows]
        assert "Gran Torino" in titles            # Alice's p2 (Eastwood) + Bob's p5
        assert {"Match Point", "Scoop"} <= set(titles)  # Bob's p4 (Allen)
        # Gran Torino satisfies preferences from both users: highest ranked.
        assert titles[0] == "Gran Torino"


class TestExample12OptimizedPlan:
    """Fig. 7: the optimizer pushes σ and λ down and reorders the prefers."""

    def test_prefer_ordering_by_selectivity(self, movie_db):
        from repro.optimizer import optimize
        from repro.plan.analysis import qualify_preferences
        from repro.plan.nodes import Prefer

        broad = Preference("p1", "GENRES", eq("genre", "Drama"), 0.5, 0.5)
        narrow = Preference("p2", "GENRES", eq("genre", "Comedy"), 0.5, 0.5)
        plan = scan("GENRES").prefer(broad).prefer(narrow).build()
        optimized = optimize(qualify_preferences(plan, movie_db.catalog), movie_db.catalog)
        chain = [n.preference.name for n in optimized.walk() if isinstance(n, Prefer)]
        # Walk is outermost-first: the more restrictive p2 must be evaluated
        # first, i.e. sit deepest (last in the walk).
        assert chain == ["p1", "p2"]
