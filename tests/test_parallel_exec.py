"""Partition-parallel execution is byte-identical to the row engine.

The partition count must be invisible: for every plan and every partition
count the merged result equals the serial reference bit-for-bit.  Evidence:

* Hypothesis: random generated plans × partitions ∈ {1, 2, 3, 8} — exact
  equality against the reference evaluator.
* The full IMDB/DBLP workload × all six strategies in both modes.
* Partition planning unit tests: filters above a TopK never run inside
  workers, a LeftJoin's right side is never partitioned.
* Merge laws: :func:`merge_score_maps` is partition-order independent;
  shuffled in-process partition orders produce the same contents.
* Faults: a `pexec.partition` fault inside a worker surfaces as a typed
  error with its site intact; the engine degrades to the row strategy and
  records the cause; corruption is detected, never silently merged.
* Teardown: no worker processes and no shared-memory segments survive the
  module (autouse fixture asserts both).
"""

from __future__ import annotations

import multiprocessing
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import evaluate_columnar
from repro.columnar.shm import active_segments
from repro.core.aggregates import F_MAX, F_S
from repro.core.prelation import PRelation
from repro.core.preference import Preference
from repro.core.scorepair import ScorePair
from repro.engine.expressions import cmp, eq
from repro.errors import DataCorruption, QueryCancelled, TransientFault
from repro.pexec.engine import STRATEGIES, ExecutionEngine
from repro.pexec.parallel import (
    PARTITION_SITE,
    active_pools,
    execute_parallel,
    merge_score_maps,
    partition_ranges,
    plan_partitions,
    shutdown_pools,
)
from repro.plan.nodes import (
    LeftJoin,
    Materialized,
    Prefer,
    Relation,
    Select,
    TopK,
)
from repro.resilience import (
    CancellationToken,
    FaultPlan,
    QueryGuard,
    use_faults,
    use_guard,
)
from repro.workloads.queries import all_queries

from tests.conformance import assert_identical
from tests.conftest import build_movie_db
from tests.test_strategy_conformance import generated_plan

MOVIE_DB = build_movie_db()
MOVIE_ENGINE = ExecutionEngine(MOVIE_DB)

PARTITIONS = (1, 2, 3, 8)


@pytest.fixture(autouse=True, scope="module")
def _no_leaked_workers_or_segments():
    """Module teardown: every pool reaped, every shm segment released."""
    yield
    shutdown_pools()
    assert active_pools() == 0
    assert active_segments() == []
    leftovers = [
        p for p in multiprocessing.active_children() if p.is_alive()
    ]
    assert leftovers == [], f"orphaned worker processes: {leftovers}"


# ---------------------------------------------------------------------------
# Byte identity across partition counts
# ---------------------------------------------------------------------------


@given(seed=st.integers(0, 200), partitions=st.sampled_from(PARTITIONS))
@settings(max_examples=25, deadline=None)
def test_random_plans_partition_invariant(seed, partitions):
    plan = generated_plan(seed)
    reference = MOVIE_ENGINE.run(plan, "reference")
    parallel = MOVIE_ENGINE.run(plan, "reference", partitions=partitions)
    assert_identical(
        reference,
        parallel,
        context=f"seed {seed}, partitions {partitions}",
        labels=("reference", f"parallel[{partitions}]"),
    )


@pytest.mark.parametrize("workload_query", all_queries(), ids=lambda q: q.name)
def test_workload_all_strategies_all_partition_counts(
    workload_query, imdb_tiny, dblp_tiny
):
    db = imdb_tiny if workload_query.dataset == "imdb" else dblp_tiny
    session = workload_query.session(db)
    compiled = session.compile(workload_query.sql)
    reference = session.execute(compiled, strategy="reference")
    for partitions in PARTITIONS:
        parallel = session.execute(
            compiled, strategy="reference", partitions=partitions
        )
        assert_identical(
            reference,
            parallel,
            context=f"{workload_query.name} partitions={partitions}",
            labels=("reference", f"parallel[{partitions}]"),
        )
    for strategy in STRATEGIES:
        row = session.execute(compiled, strategy=strategy)
        parallel = session.execute(compiled, strategy=strategy, partitions=3)
        # identical no matter which row strategy the call named
        assert_identical(
            row,
            parallel,
            exact=False,
            context=f"{workload_query.name} {strategy} vs parallel",
            labels=(strategy, "parallel[3]"),
        )


def test_in_process_matches_pool():
    plan = MOVIE_ENGINE.prepare(generated_plan(11))
    pooled, info_pool = execute_parallel(plan, MOVIE_DB, F_S, 3, in_process=False)
    inproc, info_in = execute_parallel(plan, MOVIE_DB, F_S, 3, in_process=True)
    assert info_pool["pool"] is True
    assert info_in["pool"] is False
    assert pooled.rows == inproc.rows
    assert pooled.pairs == inproc.pairs


# ---------------------------------------------------------------------------
# Partition planning
# ---------------------------------------------------------------------------


def test_select_above_topk_stays_in_merge():
    pref = Preference("pa", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
    plan = Select(
        TopK(Prefer(Relation("GENRES"), pref), 3, "score"),
        cmp("score", ">=", 0.1),
    )
    split = plan_partitions(MOVIE_ENGINE.prepare(plan), MOVIE_DB.catalog)
    assert split is not None
    # The outer select must NOT run inside workers (it would filter
    # candidates before the global top-k cut): worker side ends at the TopK.
    assert isinstance(split.worker_plan, TopK)
    kinds = [type(node).__name__ for node in split.merge_nodes]
    assert kinds == ["TopK", "Select"]


def test_innermost_score_filter_runs_in_workers_too():
    pref = Preference("pb", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
    plan = TopK(
        Select(Prefer(Relation("GENRES"), pref), cmp("conf", ">=", 0.1)),
        3,
        "score",
    )
    split = plan_partitions(MOVIE_ENGINE.prepare(plan), MOVIE_DB.catalog)
    assert split is not None
    # workers pre-apply conf-filter then local TopK; driver re-cuts globally
    assert isinstance(split.worker_plan, TopK)
    assert isinstance(split.worker_plan.child, Select)
    assert [type(n).__name__ for n in split.merge_nodes] == ["TopK"]


def test_leftjoin_right_side_never_partitioned():
    from repro.engine.expressions import Attr, Comparison

    condition = Comparison("=", Attr("MOVIES.m_id"), Attr("RATINGS.m_id"))
    plan = LeftJoin(Relation("MOVIES"), Relation("RATINGS"), condition)
    split = plan_partitions(plan, MOVIE_DB.catalog)
    assert split is not None
    # only the left leaf is a candidate, whatever the table sizes
    assert split.leaf_path == (0,)


def test_unpartitionable_plan_returns_none():
    from repro.plan.nodes import Union

    plan = Union(Relation("GENRES"), Relation("GENRES"))
    assert plan_partitions(plan, MOVIE_DB.catalog) is None


def test_partition_ranges_cover_exactly():
    for total in (0, 1, 2, 7, 100):
        for parts in (1, 2, 3, 8):
            ranges = partition_ranges(total, parts)
            covered = [i for lo, hi in ranges for i in range(lo, hi)]
            assert covered == list(range(total))
            if total:
                sizes = [hi - lo for lo, hi in ranges]
                assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Merge laws
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(0, 10**6),
    parts=st.integers(2, 5),
    aggregate=st.sampled_from([F_S, F_MAX]),
)
@settings(max_examples=40, deadline=None)
def test_merge_score_maps_order_independent(seed, parts, aggregate):
    rng = random.Random(seed)
    keys = [f"k{i}" for i in range(8)]
    maps = [
        {
            key: ScorePair(round(rng.random(), 6), round(rng.random(), 6))
            for key in rng.sample(keys, rng.randint(0, len(keys)))
        }
        for _ in range(parts)
    ]
    merged = merge_score_maps(maps, aggregate)
    shuffled = list(maps)
    rng.shuffle(shuffled)
    remerged = merge_score_maps(shuffled, aggregate)
    assert set(merged) == set(remerged)
    for key in merged:
        a, b = merged[key], remerged[key]
        assert a.conf == pytest.approx(b.conf, abs=1e-9)
        assert (a.score is None) == (b.score is None)
        if a.score is not None:
            assert a.score == pytest.approx(b.score, abs=1e-9)


def test_shuffled_partition_order_same_contents():
    plan = MOVIE_ENGINE.prepare(generated_plan(17))
    split = plan_partitions(plan, MOVIE_DB.catalog)
    if split is None:
        pytest.skip("seed 17 produced an unpartitionable plan")
    serial = evaluate_columnar(plan, MOVIE_DB)
    # evaluate partitions in a shuffled order and concatenate
    ranges = partition_ranges(split.leaf_rows, 3)
    order = list(range(len(ranges)))
    random.Random(5).shuffle(order)
    from repro.plan.analysis import node_at_path, replace_at_path

    leaf = node_at_path(split.worker_plan, split.leaf_path)
    by_index = {}
    for index in order:
        lo, hi = ranges[index]
        sliced = Materialized(
            leaf.schema(MOVIE_DB.catalog),
            MOVIE_DB.catalog.table(leaf.name).rows[lo:hi],
            name=leaf.effective_name,
        )
        fragment = replace_at_path(split.worker_plan, split.leaf_path, sliced)
        by_index[index] = evaluate_columnar(fragment, MOVIE_DB)
    rows, pairs = [], []
    for index in range(len(ranges)):
        part = by_index[index]
        rows.extend(part.rows)
        pairs.extend(part.pairs)
    merged = PRelation(split.worker_plan.schema(MOVIE_DB.catalog), rows, pairs)
    from repro.core import algebra
    from repro.filtering import topk

    for node in split.merge_nodes:
        if isinstance(node, TopK):
            merged = topk(merged, node.k, node.by)
        else:
            merged = algebra.select(merged, node.condition)
    assert merged.same_contents(serial)


# ---------------------------------------------------------------------------
# Faults, guards, shared memory
# ---------------------------------------------------------------------------

FAULT_PLAN = TopK(
    Prefer(
        Relation("GENRES"),
        Preference("pf", "GENRES", eq("genre", "Comedy"), 0.8, 0.9),
    ),
    3,
    "score",
)


def test_worker_transient_fault_surfaces_typed():
    plan = MOVIE_ENGINE.prepare(FAULT_PLAN)
    with use_faults(FaultPlan.transient(PARTITION_SITE)):
        with pytest.raises(TransientFault) as excinfo:
            execute_parallel(plan, MOVIE_DB, F_S, 3)
    assert excinfo.value.site == PARTITION_SITE


def test_worker_corruption_detected():
    plan = MOVIE_ENGINE.prepare(FAULT_PLAN)
    with use_faults(FaultPlan.corrupting(PARTITION_SITE)):
        with pytest.raises(DataCorruption):
            execute_parallel(plan, MOVIE_DB, F_S, 3)


@pytest.mark.parametrize("kind", ["transient", "corrupt"])
def test_engine_degrades_to_row_on_partition_fault(kind):
    faults = (
        FaultPlan.transient(PARTITION_SITE)
        if kind == "transient"
        else FaultPlan.corrupting(PARTITION_SITE)
    )
    result = MOVIE_ENGINE.run(FAULT_PLAN, "reference", partitions=3, faults=faults)
    assert result.stats.mode == "row"
    assert result.stats.degraded
    assert any("columnar" in failure for failure in result.stats.failures)
    reference = MOVIE_ENGINE.run(FAULT_PLAN, "reference")
    assert result.relation.same_contents(reference.relation)


def test_precancelled_guard_propagates():
    token = CancellationToken()
    token.cancel()
    plan = MOVIE_ENGINE.prepare(FAULT_PLAN)
    with use_guard(QueryGuard(token=token)):
        with pytest.raises(QueryCancelled):
            execute_parallel(plan, MOVIE_DB, F_S, 3)


def test_materialized_leaf_ships_through_shared_memory():
    schema = Relation("GENRES").schema(MOVIE_DB.catalog)
    rows = [(i, "Comedy" if i % 2 else "Drama") for i in range(40)]
    pref = Preference("pm", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
    plan = TopK(Prefer(Materialized(schema, rows), pref), 5, "score")
    serial = evaluate_columnar(plan, MOVIE_DB)
    parallel, info = execute_parallel(plan, MOVIE_DB, F_S, 4, in_process=False)
    assert info["mode"] == "columnar-parallel"
    assert parallel.rows == serial.rows
    assert parallel.pairs == serial.pairs
    assert active_segments() == []  # released as soon as the query finished


def test_single_partition_degenerates_to_serial():
    plan = MOVIE_ENGINE.prepare(generated_plan(2))
    result, info = execute_parallel(plan, MOVIE_DB, F_S, 1)
    assert info["mode"] == "columnar"
    serial = evaluate_columnar(plan, MOVIE_DB)
    assert result.rows == serial.rows
    assert result.pairs == serial.pairs


def test_pool_retired_on_database_mutation():
    db = build_movie_db()
    engine = ExecutionEngine(db)
    plan = engine.prepare(FAULT_PLAN)
    shutdown_pools()  # isolate the pool count from earlier tests' pools
    first, info = execute_parallel(plan, db, F_S, 2, in_process=False)
    assert info["pool"] is True
    assert active_pools() == 1
    db.insert("GENRES", (1, "Comedy"))  # bump version: forked rows are stale
    second, _ = execute_parallel(plan, db, F_S, 2, in_process=False)
    reference = evaluate_columnar(plan, db)
    assert second.rows == reference.rows
    assert second.pairs == reference.pairs


class _StubPool:
    """Records the terminate/join a retired cache entry must receive."""

    def __init__(self):
        self.terminated = False
        self.joined = False

    def terminate(self):
        self.terminated = True

    def join(self):
        self.joined = True


def test_pool_aliased_by_id_reuse_is_retired():
    # Regression: _POOLS was keyed by (id(db), version, workers) with no
    # reference to the database itself.  Once the owner was collected,
    # CPython could hand a new database the same address — and a cache hit
    # then returned a pool whose forked children still held (and served
    # rows from) the *dead* database.  The cache now pins a weakref and
    # validates identity on every hit.
    import weakref

    from repro.pexec import parallel as parallel_module

    db = build_movie_db()
    impostor = build_movie_db()  # stands in for the prior owner of the address
    shutdown_pools()
    stub = _StubPool()
    key = (id(db), db.version, 2)
    parallel_module._POOLS[key] = (stub, weakref.ref(impostor))
    try:
        pool = parallel_module._pool_for(db, 2)
        assert pool is not stub  # the aliased pool must never be reused
        assert stub.terminated and stub.joined  # ...and is reaped, not leaked
        assert parallel_module._POOLS[key][1]() is db
    finally:
        shutdown_pools()


def test_orphaned_pools_are_swept():
    # Companion leak fix: a pool whose owning database has been collected
    # (weakref dead) is reaped on the next pool request instead of
    # surviving until the atexit hook.
    import gc
    import weakref

    from repro.pexec import parallel as parallel_module

    shutdown_pools()
    stub = _StubPool()
    doomed = build_movie_db()
    parallel_module._POOLS[(id(doomed), doomed.version, 2)] = (
        stub,
        weakref.ref(doomed),
    )
    del doomed
    gc.collect()
    live = build_movie_db()
    try:
        parallel_module._pool_for(live, 2)
        assert stub.terminated and stub.joined
        assert active_pools() == 1
    finally:
        shutdown_pools()
