"""PV3xx: the partition-split verifier re-derives what the planner promised.

The positive sweep runs every Table-II workload query at partition counts
{1, 2, 3, 8} and expects a verifier-silent split — the same property the
strict engine enforces before fanning workers out.  The negative tests
corrupt a genuine split one invariant at a time and expect the exact code:

* PV301 — the partitioned leaf is reached through a non-row-local edge
  (the right side of a LeftJoin, whose NULL padding is global).
* PV302 — the driver's merge suffix is not the filtering suffix of the
  original plan (dropped TopK / wrong k).
* PV303 — the partition ranges are not a disjoint contiguous cover.
* PV304 — the split is stale or dangling (leaf_rows mismatch, dead path).
"""

from __future__ import annotations

import pytest

from repro.analysis_static import verify_partition_plan
from repro.analysis_static.diagnostics import Severity
from repro.engine.expressions import Attr, Comparison
from repro.errors import RewriteViolation
from repro.pexec.parallel import (
    PartitionPlan,
    _audit_split,
    partition_ranges,
    plan_partitions,
)
from repro.plan.nodes import LeftJoin, Relation, Union
from repro.workloads import all_queries

PARTITION_COUNTS = (1, 2, 3, 8)


def _split_for(session, sql, catalog):
    query = session.compile(sql)
    prepared = session.engine.prepare(query.plan)
    split = plan_partitions(prepared, catalog)
    assert split is not None, "workload query must be partitionable"
    return prepared, split


@pytest.fixture(scope="module")
def workload_sessions(imdb_tiny, dblp_tiny):
    databases = {"imdb": imdb_tiny, "dblp": dblp_tiny}
    return [(query, query.session(databases[query.dataset])) for query in all_queries()]


class TestPositiveSweep:
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_all_workload_queries_verify_clean(self, workload_sessions, partitions):
        for query, session in workload_sessions:
            findings = session.verify(
                query.sql, columnar=True, partitions=partitions
            )
            errors = [f for f in findings if f.severity is Severity.ERROR]
            assert not errors, f"{query.name} @ {partitions}: {errors}"

    def test_ranges_are_disjoint_contiguous_cover(self):
        for total in (0, 1, 5, 17, 100):
            for parts in PARTITION_COUNTS:
                ranges = partition_ranges(total, parts)
                position = 0
                for lo, hi in ranges:
                    assert lo == position and hi >= lo
                    position = hi
                assert position == total


class TestMutatedSplits:
    @pytest.fixture()
    def genuine(self, imdb_tiny):
        query = next(q for q in all_queries() if q.dataset == "imdb")
        session = query.session(imdb_tiny)
        prepared, split = _split_for(session, query.sql, imdb_tiny.catalog)
        return imdb_tiny, prepared, split

    def test_genuine_split_is_clean(self, genuine):
        db, prepared, split = genuine
        assert verify_partition_plan(prepared, db.catalog, split=split) == []

    def test_dropped_merge_suffix_is_pv302(self, genuine):
        db, prepared, split = genuine
        mutated = PartitionPlan(
            split.worker_plan, split.leaf_path, (), split.leaf_rows
        )
        findings = verify_partition_plan(prepared, db.catalog, split=mutated)
        assert "PV302" in [f.code for f in findings]

    def test_stale_leaf_rows_is_pv304(self, genuine):
        db, prepared, split = genuine
        mutated = PartitionPlan(
            split.worker_plan, split.leaf_path, split.merge_nodes,
            split.leaf_rows + 5,
        )
        findings = verify_partition_plan(prepared, db.catalog, split=mutated)
        assert "PV304" in [f.code for f in findings]

    def test_dangling_leaf_path_is_pv304(self, genuine):
        db, prepared, split = genuine
        mutated = PartitionPlan(
            split.worker_plan, split.leaf_path + (4,), split.merge_nodes,
            split.leaf_rows,
        )
        findings = verify_partition_plan(prepared, db.catalog, split=mutated)
        assert "PV304" in [f.code for f in findings]

    def test_overlapping_ranges_are_pv303(self, genuine):
        db, prepared, split = genuine
        bad = [(0, 10), (5, split.leaf_rows)]
        findings = verify_partition_plan(
            prepared, db.catalog, split=split, ranges=bad
        )
        assert "PV303" in [f.code for f in findings]

    def test_range_gap_is_pv303(self, genuine):
        db, prepared, split = genuine
        bad = [(0, 10), (12, split.leaf_rows)]
        findings = verify_partition_plan(
            prepared, db.catalog, split=split, ranges=bad
        )
        assert "PV303" in [f.code for f in findings]

    def test_leftjoin_right_side_leaf_is_pv301(self, movie_db):
        condition = Comparison("=", Attr("MOVIES.m_id"), Attr("GENRES.m_id"))
        plan = LeftJoin(Relation("MOVIES"), Relation("GENRES"), condition)
        rows = len(movie_db.catalog.table("GENRES").rows)
        # Partitioning the RIGHT side of a left join is wrong: NULL padding
        # of unmatched left rows is decided against the whole right input.
        bad = PartitionPlan(plan, (1,), (), rows)
        findings = verify_partition_plan(plan, movie_db.catalog, split=bad)
        assert [f.code for f in findings] == ["PV301"]

    def test_planner_chooses_left_side(self, movie_db):
        condition = Comparison("=", Attr("MOVIES.m_id"), Attr("GENRES.m_id"))
        plan = LeftJoin(Relation("MOVIES"), Relation("GENRES"), condition)
        split = plan_partitions(plan, movie_db.catalog)
        assert split is not None and split.leaf_path == (0,)
        assert verify_partition_plan(plan, movie_db.catalog, split=split) == []

    def test_unpartitionable_plan_is_pv202_info(self, movie_db):
        plan = Union(Relation("MOVIES"), Relation("MOVIES"))
        findings = verify_partition_plan(plan, movie_db.catalog)
        assert [f.code for f in findings] == ["PV202"]
        assert findings[0].severity is Severity.INFO


class TestStrictRejection:
    def test_audit_split_raises_rewrite_violation(self, imdb_tiny):
        query = next(q for q in all_queries() if q.dataset == "imdb")
        session = query.session(imdb_tiny)
        prepared, split = _split_for(session, query.sql, imdb_tiny.catalog)
        mutated = PartitionPlan(
            split.worker_plan, split.leaf_path, (), split.leaf_rows
        )
        with pytest.raises(RewriteViolation):
            _audit_split(prepared, mutated, imdb_tiny.catalog, 2, True)

    def test_audit_split_accepts_genuine_split(self, imdb_tiny):
        query = next(q for q in all_queries() if q.dataset == "imdb")
        session = query.session(imdb_tiny)
        prepared, split = _split_for(session, query.sql, imdb_tiny.catalog)
        _audit_split(prepared, split, imdb_tiny.catalog, 2, True)

    def test_strict_execution_still_answers(self, imdb_tiny):
        # End to end: a strict session running partition-parallel must pass
        # its own split audit and produce the row-engine answer.
        query = next(q for q in all_queries() if q.dataset == "imdb")
        session = query.session(imdb_tiny, strict=True)
        parallel = session.execute(query.sql, partitions=2)
        serial = session.execute(query.sql)
        parallel_rows = sorted(map(repr, parallel.presented().triples()))
        serial_rows = sorted(map(repr, serial.presented().triples()))
        assert parallel_rows == serial_rows
