"""Tests for database save/load and CSV import."""

import os

import pytest

from repro.engine.database import Database
from repro.engine.persist import load_csv_table, load_database, save_database
from repro.engine.types import DataType
from repro.errors import CatalogError, ReproError


class TestRoundTrip:
    def test_schema_and_data_survive(self, movie_db, tmp_path):
        save_database(movie_db, str(tmp_path))
        loaded = load_database(str(tmp_path))
        assert loaded.catalog.table_names() == movie_db.catalog.table_names()
        for name in movie_db.catalog.table_names():
            assert loaded.table(name).rows == movie_db.table(name).rows
            assert loaded.table(name).schema.primary_key == (
                movie_db.table(name).schema.primary_key
            )

    def test_indexes_survive(self, movie_db_indexed, tmp_path):
        save_database(movie_db_indexed, str(tmp_path))
        loaded = load_database(str(tmp_path))
        assert loaded.catalog.find_index("GENRES", "genre") is not None
        assert loaded.catalog.find_index("MOVIES", "year", kind="btree") is not None

    def test_nulls_survive(self, tmp_path):
        db = Database()
        db.create_table("N", [("id", DataType.INT), ("v", DataType.TEXT)], primary_key=["id"])
        db.insert_many("N", [(1, None), (2, "x")])
        save_database(db, str(tmp_path))
        loaded = load_database(str(tmp_path), analyze=False)
        assert loaded.table("N").rows == [(1, None), (2, "x")]

    def test_loaded_database_answers_queries(self, movie_db, tmp_path):
        from repro.core.preference import Preference
        from repro.engine.expressions import eq
        from repro.pexec.engine import ExecutionEngine
        from repro.plan.builder import scan

        save_database(movie_db, str(tmp_path))
        loaded = load_database(str(tmp_path))
        p = Preference("p", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
        plan = scan("GENRES").prefer(p).top(2, by="score").build()
        result = ExecutionEngine(loaded).run(plan, "gbu")
        assert result.stats.rows == 2

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_database(str(tmp_path))

    def test_bad_format_raises(self, tmp_path):
        (tmp_path / "schema.json").write_text('{"format": 99, "tables": []}')
        with pytest.raises(ReproError):
            load_database(str(tmp_path))


class TestAtomicWrite:
    def test_failed_write_leaves_no_temp_litter(self, tmp_path):
        from repro.engine.persist import _atomic_write
        from repro.errors import DurabilityError
        from repro.resilience.vfs import FaultyVFS, VfsFault, use_vfs

        target = str(tmp_path / "schema.json")
        with use_vfs(FaultyVFS(VfsFault(0, "eio-write"))):
            with pytest.raises(DurabilityError):
                _atomic_write(target, "payload")
        assert not os.path.exists(target)
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_failed_fsync_leaves_no_temp_litter(self, tmp_path):
        from repro.engine.persist import _atomic_write
        from repro.errors import DurabilityError
        from repro.resilience.vfs import FaultyVFS, VfsFault, use_vfs

        with use_vfs(FaultyVFS(VfsFault(1, "eio-fsync"))):
            with pytest.raises(DurabilityError):
                _atomic_write(str(tmp_path / "schema.json"), "payload")
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []

    def test_temp_names_carry_pid_and_never_collide(self, tmp_path):
        from repro.engine.persist import _atomic_write
        from repro.resilience.vfs import FaultyVFS, use_vfs

        target = str(tmp_path / "schema.json")
        probe = FaultyVFS()
        with use_vfs(probe):
            _atomic_write(target, "one")
            _atomic_write(target, "two")
        temp_names = {path for op, path in probe.ops if op == "write"}
        assert len(temp_names) == 2  # a concurrent sibling can never collide
        for name in temp_names:
            assert f".{os.getpid()}." in name and name.endswith(".tmp")

    def test_goes_through_the_ambient_vfs(self, tmp_path):
        from repro.engine.persist import _atomic_write
        from repro.resilience.vfs import FaultyVFS, use_vfs

        probe = FaultyVFS()
        with use_vfs(probe):
            _atomic_write(str(tmp_path / "schema.json"), "payload")
        assert [op for op, _ in probe.ops] == [
            "write",
            "fsync",
            "replace",
            "fsync_dir",
        ]


class TestCsvImport:
    @pytest.fixture
    def db(self):
        database = Database()
        database.create_table(
            "T",
            [
                ("id", DataType.INT),
                ("name", DataType.TEXT),
                ("v", DataType.FLOAT),
                ("flag", DataType.BOOL),
            ],
            primary_key=["id"],
        )
        return database

    def test_with_header(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,name,v,flag\n1,alpha,1.5,true\n2,beta,2.0,0\n")
        assert load_csv_table(db, "T", str(path)) == 2
        assert db.table("T").rows == [(1, "alpha", 1.5, True), (2, "beta", 2.0, False)]

    def test_header_reorders_columns(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("name,id,flag,v\nalpha,1,false,0.5\n")
        load_csv_table(db, "T", str(path))
        assert db.table("T").rows == [(1, "alpha", 0.5, False)]

    def test_without_header(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,alpha,1.5,true\n")
        assert load_csv_table(db, "T", str(path), has_header=False) == 1

    def test_null_token(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,name,v,flag\n1,,1.0,true\n")
        load_csv_table(db, "T", str(path))
        assert db.table("T").rows[0][1] is None

    def test_bad_bool_raises(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,name,v,flag\n1,a,1.0,maybe\n")
        with pytest.raises(CatalogError):
            load_csv_table(db, "T", str(path))

    def test_field_count_checked(self, db, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("id,name,v,flag\n1,a\n")
        with pytest.raises(CatalogError):
            load_csv_table(db, "T", str(path))

    def test_indexes_rebuilt(self, db, tmp_path):
        db.create_index("T", "name")
        path = tmp_path / "t.csv"
        path.write_text("id,name,v,flag\n1,alpha,1.0,true\n")
        load_csv_table(db, "T", str(path))
        assert db.catalog.find_index("T", "name").lookup("alpha")
