"""Durable persistence: atomicity, checksums, corruption detection, salvage."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, DataType
from repro.engine.persist import (
    SCHEMA_FILE,
    load_csv_table,
    load_database,
    save_database,
)
from repro.errors import CatalogError, DataCorruption, ReproError


def make_db(rows) -> Database:
    db = Database()
    db.create_table(
        "ITEMS",
        [
            ("i_id", DataType.INT),
            ("label", DataType.TEXT),
            ("weight", DataType.FLOAT),
            ("active", DataType.BOOL),
        ],
        primary_key=["i_id"],
    )
    db.insert_many("ITEMS", rows)
    db.analyze()
    return db


SAMPLE_ROWS = [
    (1, "alpha", 1.5, True),
    (2, "beta", None, False),
    (3, "gamma, with commas", 0.0, None),
]


def items_file(directory) -> str:
    return os.path.join(str(directory), "ITEMS.jsonl")


# ---------------------------------------------------------------------------
# Round-trip property
# ---------------------------------------------------------------------------

row_values = st.tuples(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.one_of(st.none(), st.text(max_size=20)),
    st.one_of(
        st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)
    ),
    st.one_of(st.none(), st.booleans()),
)


@settings(max_examples=30, deadline=None)
@given(st.lists(row_values, max_size=25, unique_by=lambda r: r[0]))
def test_roundtrip_preserves_every_row(tmp_path_factory, rows):
    directory = tmp_path_factory.mktemp("rt")
    db = make_db(rows)
    save_database(db, str(directory))
    loaded = load_database(str(directory))
    assert loaded.table("ITEMS").rows == db.table("ITEMS").rows
    assert loaded.recovery is None


# ---------------------------------------------------------------------------
# Atomic save + manifest contents
# ---------------------------------------------------------------------------


class TestSave:
    def test_no_temp_files_left_behind(self, tmp_path):
        save_database(make_db(SAMPLE_ROWS), str(tmp_path))
        assert not [name for name in os.listdir(tmp_path) if name.endswith(".tmp")]

    def test_manifest_records_counts_and_checksums(self, tmp_path):
        save_database(make_db(SAMPLE_ROWS), str(tmp_path))
        manifest = json.loads((tmp_path / SCHEMA_FILE).read_text())
        assert manifest["format"] == 2
        (entry,) = manifest["tables"]
        assert entry["rows"] == 3
        assert entry["checksum"].startswith("sha256:")

    def test_resave_overwrites_cleanly(self, tmp_path):
        save_database(make_db(SAMPLE_ROWS), str(tmp_path))
        save_database(make_db(SAMPLE_ROWS[:1]), str(tmp_path))
        assert len(load_database(str(tmp_path)).table("ITEMS")) == 1


# ---------------------------------------------------------------------------
# Corruption detection (strict mode)
# ---------------------------------------------------------------------------


@pytest.fixture
def saved(tmp_path):
    save_database(make_db(SAMPLE_ROWS), str(tmp_path))
    return tmp_path


class TestCorruptionDetection:
    def test_truncated_file_names_file_and_line(self, saved):
        path = items_file(saved)
        lines = open(path).readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-1])
        with pytest.raises(DataCorruption) as excinfo:
            load_database(str(saved))
        assert excinfo.value.path == path
        assert path in str(excinfo.value)

    def test_garbage_line_is_located_exactly(self, saved):
        path = items_file(saved)
        lines = open(path).readlines()
        lines[1] = "{{{ not json\n"
        open(path, "w").writelines(lines)
        with pytest.raises(DataCorruption) as excinfo:
            load_database(str(saved))
        assert excinfo.value.line == 2
        assert f"{path}:2" in str(excinfo.value)

    def test_arity_mismatch_detected(self, saved):
        path = items_file(saved)
        lines = open(path).readlines()
        lines[0] = "[1]\n"
        open(path, "w").writelines(lines)
        with pytest.raises(DataCorruption) as excinfo:
            load_database(str(saved))
        assert "schema expects 4" in str(excinfo.value)

    def test_content_tamper_trips_checksum(self, saved):
        path = items_file(saved)
        text = open(path).read().replace("alpha", "ALPHA")
        open(path, "w").write(text)
        with pytest.raises(DataCorruption) as excinfo:
            load_database(str(saved))
        assert "checksum mismatch" in str(excinfo.value)

    def test_missing_data_file_detected(self, saved):
        os.remove(items_file(saved))
        with pytest.raises(DataCorruption) as excinfo:
            load_database(str(saved))
        assert "data file missing" in str(excinfo.value)

    def test_unknown_manifest_format_rejected(self, saved):
        manifest = json.loads((saved / SCHEMA_FILE).read_text())
        manifest["format"] = 99
        (saved / SCHEMA_FILE).write_text(json.dumps(manifest))
        with pytest.raises(ReproError, match="unsupported database format"):
            load_database(str(saved))

    def test_unparseable_manifest_is_corruption(self, saved):
        (saved / SCHEMA_FILE).write_text("not json {")
        with pytest.raises(DataCorruption, match="manifest is not valid JSON"):
            load_database(str(saved))

    def test_format_1_manifest_still_loads(self, saved):
        manifest = json.loads((saved / SCHEMA_FILE).read_text())
        manifest["format"] = 1
        for entry in manifest["tables"]:
            del entry["rows"], entry["checksum"]
        (saved / SCHEMA_FILE).write_text(json.dumps(manifest))
        assert len(load_database(str(saved)).table("ITEMS")) == 3


# ---------------------------------------------------------------------------
# Salvage mode
# ---------------------------------------------------------------------------


class TestSalvage:
    def test_clean_load_reports_clean(self, saved):
        db = load_database(str(saved), salvage=True)
        assert db.recovery.clean
        assert db.recovery.rows_loaded == 3
        assert db.recovery.rows_skipped == 0

    def test_bad_rows_are_skipped_and_counted(self, saved):
        path = items_file(saved)
        lines = open(path).readlines()
        lines[1] = "%% garbage %%\n"
        lines.append("[9]\n")
        open(path, "w").writelines(lines)
        db = load_database(str(saved), salvage=True)
        report = db.recovery
        assert len(db.table("ITEMS")) == 2
        assert report.rows_loaded == 2
        assert report.rows_skipped == 2
        assert not report.clean
        assert any("line 2" in p for p in report.tables[0].problems)
        text = report.describe()
        assert "2 loaded" in text and "salvaged" in text

    def test_schema_violating_row_is_skipped(self, saved):
        path = items_file(saved)
        with open(path, "a") as handle:
            handle.write('[1, "duplicate pk", 0.5, true]\n')
        db = load_database(str(saved), salvage=True)
        assert len(db.table("ITEMS")) == 3
        assert db.recovery.rows_skipped == 1
        assert any("rejected" in p for p in db.recovery.tables[0].problems)

    def test_missing_file_salvages_to_empty_table(self, saved):
        os.remove(items_file(saved))
        db = load_database(str(saved), salvage=True)
        assert len(db.table("ITEMS")) == 0
        assert db.recovery.rows_skipped == 3


# ---------------------------------------------------------------------------
# CSV staging (all-or-nothing)
# ---------------------------------------------------------------------------


class TestCsvStaging:
    def write_csv(self, tmp_path, body: str):
        path = tmp_path / "items.csv"
        path.write_text("i_id,label,weight,active\n" + body)
        return str(path)

    def test_good_file_loads_fully(self, tmp_path):
        db = make_db([])
        path = self.write_csv(tmp_path, "1,one,1.0,true\n2,two,,false\n")
        assert load_csv_table(db, "ITEMS", path) == 2
        assert db.table("ITEMS").rows[1] == (2, "two", None, False)

    def test_coercion_error_leaves_table_untouched(self, tmp_path):
        db = make_db(SAMPLE_ROWS)
        before = list(db.table("ITEMS").rows)
        path = self.write_csv(tmp_path, "10,ok,1.0,true\n11,bad,not-a-float,true\n")
        with pytest.raises(ValueError):
            load_csv_table(db, "ITEMS", path)
        assert db.table("ITEMS").rows == before

    def test_insert_error_rolls_back_partial_progress(self, tmp_path):
        db = make_db(SAMPLE_ROWS)
        table = db.table("ITEMS")
        before_rows = list(table.rows)
        before_pk = dict(table._pk_map)
        # Row 10 would insert fine; row 1 collides with an existing key.
        path = self.write_csv(tmp_path, "10,ok,1.0,true\n1,dup,1.0,true\n")
        with pytest.raises(CatalogError):
            load_csv_table(db, "ITEMS", path)
        assert table.rows == before_rows
        assert table._pk_map == before_pk
        assert table.get((10,)) is None

    def test_rollback_keeps_point_lookups_working(self, tmp_path):
        db = make_db(SAMPLE_ROWS)
        path = self.write_csv(tmp_path, "1,dup,1.0,true\n")
        with pytest.raises(CatalogError):
            load_csv_table(db, "ITEMS", path)
        assert db.table("ITEMS").get((1,)) == SAMPLE_ROWS[0]
        db.insert_many("ITEMS", [(4, "delta", 2.0, True)])
        assert db.table("ITEMS").get((4,)) == (4, "delta", 2.0, True)
