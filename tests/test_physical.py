"""Unit tests for the native physical executor."""

import pytest

from repro.engine.expressions import TRUE, And, cmp, eq
from repro.engine.iosim import CostModel
from repro.engine.physical import execute_native
from repro.errors import ExecutionError
from repro.plan.nodes import (
    Difference,
    Intersect,
    Join,
    Materialized,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from repro.core.preference import Preference


def run(plan, db):
    return execute_native(plan, db.catalog, CostModel())


class TestLeaves:
    def test_relation_scan(self, movie_db):
        schema, rows = run(Relation("MOVIES"), movie_db)
        assert len(rows) == 5
        assert schema.has("title")

    def test_alias_renames(self, movie_db):
        schema, _ = run(Relation("MOVIES", alias="M"), movie_db)
        assert schema.has("M.title")
        assert not schema.has("MOVIES.title")

    def test_materialized(self, movie_db):
        base = movie_db.table("MOVIES")
        node = Materialized(base.schema, list(base.rows))
        _, rows = run(node, movie_db)
        assert len(rows) == 5


class TestSelect:
    def test_filter(self, movie_db):
        _, rows = run(Select(Relation("MOVIES"), cmp("year", ">=", 2006)), movie_db)
        assert {r[0] for r in rows} == {1, 2, 5}

    def test_score_condition_rejected(self, movie_db):
        plan = Select(Relation("MOVIES"), cmp("score", ">", 0.5))
        with pytest.raises(ExecutionError):
            run(plan, movie_db)

    def test_index_equality_access(self, movie_db_indexed):
        cost = CostModel()
        plan = Select(Relation("GENRES"), eq("genre", "Comedy"))
        _, rows = execute_native(plan, movie_db_indexed.catalog, cost)
        assert {r[0] for r in rows} == {4, 5}
        assert cost.index_lookups == 1
        assert cost.tuples_scanned == 0

    def test_index_range_access(self, movie_db_indexed):
        cost = CostModel()
        plan = Select(Relation("MOVIES"), cmp("year", ">", 2005))
        _, rows = execute_native(plan, movie_db_indexed.catalog, cost)
        assert {r[0] for r in rows} == {1, 2, 5}
        assert cost.index_lookups == 1

    def test_index_with_residual_condition(self, movie_db_indexed):
        plan = Select(
            Relation("MOVIES"),
            And(cmp("year", ">", 2004), cmp("duration", "<", 120)),
        )
        _, rows = run(plan, movie_db_indexed)
        assert {r[0] for r in rows} == {1, 5}

    def test_no_index_falls_back_to_scan(self, movie_db):
        cost = CostModel()
        plan = Select(Relation("MOVIES"), eq("year", 2008))
        _, rows = execute_native(plan, movie_db.catalog, cost)
        assert len(rows) == 1
        assert cost.index_lookups == 0


class TestProject:
    def test_projection(self, movie_db):
        schema, rows = run(Project(Relation("MOVIES"), ["title", "year"]), movie_db)
        assert schema.attribute_names == ("MOVIES.title", "MOVIES.year")
        assert ("Scoop", 2006) in rows


class TestJoin:
    def test_hash_join(self, movie_db):
        plan = Join(
            Relation("MOVIES"),
            Relation("DIRECTORS"),
            eq("MOVIES.d_id", 0) | TRUE,  # dummy to check next test separately
        )

    def test_equi_join(self, movie_db):
        from repro.engine.expressions import Comparison, Attr

        plan = Join(
            Relation("MOVIES"),
            Relation("DIRECTORS"),
            Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id")),
        )
        schema, rows = run(plan, movie_db)
        assert len(rows) == 5
        director = schema.index_of("director")
        title = schema.index_of("title")
        pairs = {(r[title], r[director]) for r in rows}
        assert ("Gran Torino", "C. Eastwood") in pairs

    def test_cross_product(self, movie_db):
        plan = Join(Relation("MOVIES"), Relation("DIRECTORS"), TRUE)
        _, rows = run(plan, movie_db)
        assert len(rows) == 15

    def test_theta_join(self, movie_db):
        from repro.engine.expressions import Comparison, Attr

        plan = Join(
            Relation("MOVIES"),
            Relation("AWARDS"),
            Comparison("<", Attr("MOVIES.year"), Attr("AWARDS.year")),
        )
        _, rows = run(plan, movie_db)
        # award years: 2005 (1 earlier movie) and 2009 (4 earlier movies)
        assert len(rows) == 5

    def test_join_null_keys_do_not_match(self, movie_db):
        movie_db.insert("MOVIES", (9, "No Director", 2000, 100, None))
        from repro.engine.expressions import Comparison, Attr

        plan = Join(
            Relation("MOVIES"),
            Relation("DIRECTORS"),
            Comparison("=", Attr("MOVIES.d_id"), Attr("DIRECTORS.d_id")),
        )
        _, rows = run(plan, movie_db)
        assert all(r[0] != 9 for r in rows)


class TestSetOps:
    def _titles(self, db, condition):
        return Project(Select(Relation("MOVIES"), condition), ["title"])

    def test_union_dedups(self, movie_db):
        plan = Union(
            self._titles(movie_db, cmp("year", ">=", 2005)),
            self._titles(movie_db, cmp("year", "<=", 2006)),
        )
        _, rows = run(plan, movie_db)
        assert len(rows) == 5

    def test_intersect(self, movie_db):
        plan = Intersect(
            self._titles(movie_db, cmp("year", ">=", 2005)),
            self._titles(movie_db, cmp("year", "<=", 2006)),
        )
        _, rows = run(plan, movie_db)
        assert {r[0] for r in rows} == {"Match Point", "Scoop"}

    def test_difference(self, movie_db):
        plan = Difference(
            self._titles(movie_db, TRUE),
            self._titles(movie_db, cmp("year", ">=", 2005)),
        )
        _, rows = run(plan, movie_db)
        assert {r[0] for r in rows} == {"Million Dollar Baby"}

    def test_incompatible_inputs_rejected(self, movie_db):
        plan = Union(Relation("MOVIES"), Relation("DIRECTORS"))
        with pytest.raises(ExecutionError):
            run(plan, movie_db)


class TestPreferenceNodesRejected:
    def test_prefer_rejected(self, movie_db, example_preferences):
        plan = Prefer(Relation("GENRES"), example_preferences["p1"])
        with pytest.raises(ExecutionError):
            run(plan, movie_db)

    def test_topk_rejected(self, movie_db):
        with pytest.raises(ExecutionError):
            run(TopK(Relation("MOVIES"), 3), movie_db)
