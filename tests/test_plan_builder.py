"""Unit tests for the fluent plan builder and the plan printer."""

import pytest

from repro.engine.expressions import TRUE, eq
from repro.errors import PlanError
from repro.plan.builder import natural_join_condition, scan
from repro.plan.nodes import (
    Difference,
    Intersect,
    Join,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)
from repro.plan.printer import compact, explain


class TestBuilder:
    def test_scan(self):
        assert scan("MOVIES").build() == Relation("MOVIES")

    def test_alias(self):
        assert scan("MOVIES", "M").build() == Relation("MOVIES", "M")

    def test_chaining(self, example_preferences):
        plan = (
            scan("GENRES")
            .select(eq("genre", "Comedy"))
            .prefer(example_preferences["p1"])
            .project(["m_id"])
            .top(3)
            .build()
        )
        kinds = [node.kind for node in plan.walk()]
        assert kinds == ["topk", "project", "prefer", "select", "relation"]

    def test_prefer_all(self, example_preferences):
        prefs = [example_preferences["p1"], example_preferences["p2"]]
        plan = scan("GENRES").prefer_all(prefs).build()
        assert [p.name for p in plan.preferences()] == ["p2", "p1"]

    def test_binary_builders(self):
        a, b = scan("MOVIES"), scan("MOVIES")
        assert isinstance(a.join(b, on=TRUE).build(), Join)
        assert isinstance(a.union(b).build(), Union)
        assert isinstance(a.intersect(b).build(), Intersect)
        assert isinstance(a.difference(b).build(), Difference)

    def test_builder_is_immutable(self):
        base = scan("MOVIES")
        base.select(eq("year", 2008))
        assert base.build() == Relation("MOVIES")


class TestNaturalJoin:
    def test_shared_attribute_found(self, movie_db):
        condition = natural_join_condition(
            movie_db.catalog, Relation("MOVIES"), Relation("DIRECTORS")
        )
        assert condition.attributes() == {"movies.d_id", "directors.d_id"}

    def test_multiple_shared_attributes(self, movie_db):
        condition = natural_join_condition(
            movie_db.catalog, Relation("MOVIES"), Relation("AWARDS")
        )
        # m_id AND year are shared.
        assert len(condition.attributes()) == 4

    def test_no_common_attributes_raises(self, movie_db):
        with pytest.raises(PlanError):
            natural_join_condition(
                movie_db.catalog, Relation("DIRECTORS"), Relation("GENRES")
            )

    def test_builder_method(self, movie_db):
        plan = scan("MOVIES").natural_join(scan("DIRECTORS"), movie_db.catalog).build()
        assert isinstance(plan, Join)


class TestPrinter:
    def test_explain_tree_shape(self, movie_db, example_preferences):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS").prefer(example_preferences["p2"]), movie_db.catalog)
            .project(["title"])
            .build()
        )
        text = explain(plan)
        lines = text.splitlines()
        assert lines[0].startswith("π[title]")
        assert any("λ[p2]" in line for line in lines)
        assert any("MOVIES" in line for line in lines)
        assert "└─" in text

    def test_compact(self, example_preferences):
        plan = Prefer(Relation("GENRES"), example_preferences["p1"])
        assert compact(plan) == "λ[p1](GENRES)"
