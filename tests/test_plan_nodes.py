"""Unit tests for logical plan nodes."""

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import TRUE, cmp, eq
from repro.errors import PlanError
from repro.plan.nodes import (
    Difference,
    Intersect,
    Join,
    Materialized,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)


@pytest.fixture
def p1(example_preferences):
    return example_preferences["p1"]


class TestSchemas:
    def test_relation_schema(self, movie_db):
        schema = Relation("MOVIES").schema(movie_db.catalog)
        assert schema.has("title")

    def test_alias_schema(self, movie_db):
        schema = Relation("MOVIES", "M").schema(movie_db.catalog)
        assert schema.has("M.title")

    def test_select_preserves_schema(self, movie_db):
        node = Select(Relation("MOVIES"), eq("year", 2008))
        assert node.schema(movie_db.catalog) == Relation("MOVIES").schema(movie_db.catalog)

    def test_project_schema(self, movie_db):
        node = Project(Relation("MOVIES"), ["title"])
        assert node.schema(movie_db.catalog).attribute_names == ("MOVIES.title",)

    def test_join_schema_concatenates(self, movie_db):
        node = Join(Relation("MOVIES"), Relation("DIRECTORS"), TRUE)
        assert len(node.schema(movie_db.catalog)) == 7

    def test_union_requires_compatibility(self, movie_db):
        node = Union(Relation("MOVIES"), Relation("DIRECTORS"))
        with pytest.raises(PlanError):
            node.schema(movie_db.catalog)

    def test_prefer_schema_unchanged(self, movie_db, p1):
        node = Prefer(Relation("GENRES"), p1)
        assert node.schema(movie_db.catalog) == Relation("GENRES").schema(movie_db.catalog)

    def test_materialized_schema(self, movie_db):
        schema = movie_db.table("MOVIES").schema
        node = Materialized(schema, [])
        assert node.schema(movie_db.catalog) is schema


class TestValidation:
    def test_project_requires_attrs(self):
        with pytest.raises(PlanError):
            Project(Relation("MOVIES"), [])

    def test_topk_validates_k(self):
        with pytest.raises(PlanError):
            TopK(Relation("MOVIES"), 0)

    def test_topk_validates_by(self):
        with pytest.raises(PlanError):
            TopK(Relation("MOVIES"), 3, by="title")


class TestTreeUtilities:
    def test_walk_preorder(self, p1):
        plan = Select(Prefer(Relation("GENRES"), p1), eq("genre", "Drama"))
        kinds = [node.kind for node in plan.walk()]
        assert kinds == ["select", "prefer", "relation"]

    def test_contains_prefer(self, p1):
        assert Prefer(Relation("GENRES"), p1).contains_prefer()
        assert not Select(Relation("GENRES"), TRUE).contains_prefer()

    def test_relations(self):
        plan = Join(Relation("MOVIES"), Relation("DIRECTORS"), TRUE)
        assert plan.relations() == {"MOVIES", "DIRECTORS"}

    def test_preferences_listed(self, example_preferences):
        plan = Prefer(
            Prefer(Relation("GENRES"), example_preferences["p1"]),
            example_preferences["p2"],
        )
        names = [p.name for p in plan.preferences()]
        assert names == ["p2", "p1"]  # pre-order: outermost first

    def test_with_children_rebuilds(self, p1):
        plan = Select(Relation("MOVIES"), eq("year", 2008))
        rebuilt = plan.with_children([Relation("GENRES")])
        assert isinstance(rebuilt, Select)
        assert rebuilt.child == Relation("GENRES")
        assert rebuilt.condition == plan.condition

    def test_structural_equality(self, p1):
        a = Prefer(Select(Relation("GENRES"), TRUE), p1)
        b = Prefer(Select(Relation("GENRES"), TRUE), p1)
        assert a == b and hash(a) == hash(b)

    def test_materialized_identity_equality(self, movie_db):
        schema = movie_db.table("MOVIES").schema
        a = Materialized(schema, [])
        b = Materialized(schema, [])
        assert a == a
        assert a != b

    def test_labels(self, p1):
        assert Relation("MOVIES", "M").label() == "MOVIES AS M"
        assert Prefer(Relation("GENRES"), p1).label() == "λ[p1]"
        assert TopK(Relation("MOVIES"), 3, "conf").label() == "top(3, conf)"
