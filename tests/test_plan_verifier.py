"""Static plan verifier tests: one triggering plan per diagnostic code.

Every negative-path test hand-builds an illegal plan and asserts the exact
diagnostic code(s); the acceptance half checks that all six workload queries
verify clean — parsed and optimized — and that verifier-approved optimizer
output agrees with the unoptimized reference executor.
"""

from __future__ import annotations

import pytest

from repro.analysis_static import Severity, verify_plan
from repro.core.aggregates import F_MAX, F_MIN, F_S
from repro.core.preference import Preference
from repro.engine.expressions import TRUE, cmp, eq
from repro.errors import PlanError
from repro.plan.nodes import (
    Difference,
    Intersect,
    Join,
    LeftJoin,
    Prefer,
    Project,
    Relation,
    Select,
    TopK,
    Union,
)

P_YEAR = Preference("p_year", "MOVIES", cmp("year", ">=", 2005), 0.8, 0.9)
P_GENRE = Preference("p_genre", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
P_MID = Preference("p_mid", "MOVIES", eq("m_id", 1), 1.0, 1.0)
P_ALL = Preference("p_all", "MOVIES", TRUE, 0.5, 0.5)


def codes(diagnostics):
    return [d.code for d in diagnostics]


@pytest.fixture
def catalog(movie_db):
    return movie_db.catalog


class TestSchemaFaults:
    def test_unknown_relation_is_pv100(self, catalog):
        found = verify_plan(Relation("NO_SUCH_TABLE"), catalog)
        assert codes(found) == ["PV100"]

    def test_projection_of_missing_attribute_is_pv100(self, catalog):
        plan = Project(Relation("MOVIES"), ["title", "no_such_attr"])
        found = verify_plan(plan, catalog)
        assert codes(found) == ["PV100"]

    def test_join_condition_on_reserved_attribute_is_pv100(self, catalog):
        plan = Join(
            Relation("MOVIES"), Relation("GENRES"), cmp("score", ">=", 0.5)
        )
        assert "PV100" in codes(verify_plan(plan, catalog))

    def test_broken_subtree_reports_once_not_per_ancestor(self, catalog):
        # Manual schema derivation: the bad leaf yields one PV100, the
        # Select/Project ancestors do not cascade.
        plan = Project(
            Select(Relation("NO_SUCH_TABLE"), cmp("year", ">", 2000)), ["title"]
        )
        assert codes(verify_plan(plan, catalog)) == ["PV100"]


class TestFilteringOrder:
    def test_score_selection_below_prefer_is_pv101(self, catalog):
        plan = Prefer(
            Select(Prefer(Relation("MOVIES"), P_YEAR), cmp("score", ">=", 0.5)),
            P_MID,
        )
        assert codes(verify_plan(plan, catalog)) == ["PV101"]

    def test_topk_below_prefer_is_pv102(self, catalog):
        plan = Prefer(TopK(Prefer(Relation("MOVIES"), P_YEAR), 3), P_MID)
        assert codes(verify_plan(plan, catalog)) == ["PV102"]

    def test_score_selection_above_prefer_is_clean(self, catalog):
        plan = Select(Prefer(Relation("MOVIES"), P_YEAR), cmp("score", ">=", 0.5))
        assert verify_plan(plan, catalog) == []

    def test_score_filter_without_any_prefer_is_pv110(self, catalog):
        plan = Select(Relation("MOVIES"), cmp("conf", ">=", 0.5))
        assert codes(verify_plan(plan, catalog)) == ["PV110"]

    def test_topk_without_any_prefer_is_pv110(self, catalog):
        plan = TopK(Relation("MOVIES"), 5, "score")
        assert codes(verify_plan(plan, catalog)) == ["PV110"]


class TestPreferPlacement:
    def test_prefer_on_wrong_input_is_pv103(self, catalog):
        # P_YEAR needs MOVIES.year but sits over DIRECTORS.
        plan = Prefer(Relation("DIRECTORS"), P_YEAR)
        found = verify_plan(plan, catalog)
        assert codes(found) == ["PV103"]
        assert found[0].severity is Severity.ERROR

    def test_ambiguous_owner_under_join_is_pv104(self, catalog):
        # m_id resolves in GENRES too, so the owning side is ambiguous.
        plan = Join(
            Prefer(Relation("MOVIES"), P_MID),
            Relation("GENRES"),
            cmp("year", ">", 0),
        )
        found = verify_plan(plan, catalog)
        assert "PV104" in codes(found)

    def test_single_owner_under_join_is_clean(self, catalog):
        plan = Join(
            Prefer(Relation("MOVIES"), P_YEAR),
            Relation("DIRECTORS"),
            cmp("year", ">", 0),
        )
        assert verify_plan(plan, catalog) == []


class TestSetOperations:
    def test_incompatible_union_is_pv106(self, catalog):
        plan = Union(Relation("MOVIES"), Relation("DIRECTORS"))
        assert codes(verify_plan(plan, catalog)) == ["PV106"]

    def test_prefer_in_subtracted_input_is_pv107(self, catalog):
        plan = Difference(Relation("MOVIES"), Prefer(Relation("MOVIES"), P_YEAR))
        found = verify_plan(plan, catalog)
        assert codes(found) == ["PV107"]
        assert found[0].severity is Severity.WARNING

    def test_prefer_in_kept_input_is_clean(self, catalog):
        plan = Intersect(Prefer(Relation("MOVIES"), P_YEAR), Relation("MOVIES"))
        assert verify_plan(plan, catalog) == []

    def test_prefer_in_unpreserved_leftjoin_input_is_pv109(self, catalog):
        plan = LeftJoin(
            Relation("MOVIES"),
            Prefer(Relation("GENRES"), P_GENRE),
            cmp("year", ">", 0),
        )
        assert codes(verify_plan(plan, catalog)) == ["PV109"]


class TestAggregateAgreement:
    def test_conflicting_overrides_are_pv108(self, catalog):
        plan = Prefer(Prefer(Relation("MOVIES"), P_YEAR, F_MAX), P_MID, F_MIN)
        assert codes(verify_plan(plan, catalog)) == ["PV108"]

    def test_override_conflicting_with_query_default_is_pv108(self, catalog):
        plan = Prefer(Relation("MOVIES"), P_YEAR, F_MAX)
        found = verify_plan(plan, catalog, default_aggregate=F_S)
        assert codes(found) == ["PV108"]

    def test_matching_overrides_are_clean(self, catalog):
        plan = Prefer(Prefer(Relation("MOVIES"), P_YEAR, F_MAX), P_MID, F_MAX)
        assert verify_plan(plan, catalog, default_aggregate=F_MAX) == []


class TestChainOrder:
    def chain(self):
        # Selective condition (m_id = 1) on top, unconditional below:
        # execution runs the expensive preference first — out of order.
        return Prefer(Prefer(Relation("MOVIES"), P_ALL), P_MID)

    def test_out_of_order_chain_is_pv105_when_opted_in(self, catalog):
        found = verify_plan(self.chain(), catalog, ordered_chains=True)
        assert codes(found) == ["PV105"]
        assert found[0].severity is Severity.WARNING

    def test_chain_order_not_checked_by_default(self, catalog):
        # User-written plans may order chains any way (Property 4.3).
        assert verify_plan(self.chain(), catalog) == []

    def test_ascending_chain_is_clean(self, catalog):
        plan = Prefer(Prefer(Relation("MOVIES"), P_MID), P_ALL)
        assert verify_plan(plan, catalog, ordered_chains=True) == []


class TestCatalog:
    def test_every_code_is_documented(self):
        # The catalog docstring promises docs/STATIC_ANALYSIS.md membership.
        import os

        from repro.analysis_static.diagnostics import CATALOG

        doc = os.path.join(
            os.path.dirname(__file__), os.pardir, "docs", "STATIC_ANALYSIS.md"
        )
        with open(doc, encoding="utf-8") as handle:
            text = handle.read()
        undocumented = sorted(code for code in CATALOG if code not in text)
        assert undocumented == []

    def test_unknown_code_raises(self):
        from repro.analysis_static.diagnostics import make_diagnostic

        with pytest.raises(KeyError):
            make_diagnostic("PV999", "nope")

    def test_rendering_includes_location(self):
        from repro.analysis_static.diagnostics import make_diagnostic

        rendered = str(make_diagnostic("PV106", "mismatch", where="∪"))
        assert rendered == "PV106 [error] at ∪: mismatch"


class TestDispatch:
    def test_unknown_node_class_raises(self, catalog):
        class Mystery:
            pass

        with pytest.raises(PlanError, match="unknown plan node"):
            verify_plan(Mystery(), catalog)


class TestWorkloadAcceptance:
    """All six workload queries verify clean, parsed and optimized, and the
    verifier-approved optimizer output agrees with the reference executor."""

    @pytest.fixture(scope="class")
    def sessions(self, imdb_tiny, dblp_tiny):
        from repro.workloads import all_queries

        out = []
        for query in all_queries():
            db = imdb_tiny if query.dataset == "imdb" else dblp_tiny
            out.append((query, query.session(db, strict=True), db))
        return out

    def test_parsed_plans_verify_clean(self, sessions):
        for query, session, _db in sessions:
            assert session.verify(query.sql) == [], query.name

    def test_optimized_plans_verify_clean_in_strict_session(self, sessions):
        # strict=True: every optimizer rule fire is audited on the way.
        for query, session, _db in sessions:
            assert session.verify(query.sql, optimized=True) == [], query.name

    def test_verified_optimizer_output_matches_reference(self, sessions):
        from repro.pexec.conform import conform
        from repro.pexec.reference import evaluate_reference

        for query, session, db in sessions:
            compiled = session.compile(query.sql)
            prepared = session.engine.prepare(compiled.plan)
            optimized = session.engine.optimizer.optimize(prepared)
            baseline = evaluate_reference(prepared, db.catalog)
            rewritten = conform(
                evaluate_reference(optimized, db.catalog),
                prepared.schema(db.catalog),
            )
            assert baseline.same_contents(rewritten), query.name

    def test_strict_execution_runs_without_violations(self, sessions):
        for query, session, _db in sessions:
            result = session.execute(query.sql)
            assert result.stats.rows == len(result.relation)


class TestVerifiedRewritesProperty:
    """Property: on random plans, the strictly-audited optimizer output is
    verifier-approved and agrees with the unoptimized reference executor."""

    def test_random_plans(self):
        from hypothesis import HealthCheck, given, settings

        from repro.optimizer import PreferenceOptimizer
        from repro.pexec.conform import conform
        from repro.pexec.reference import evaluate_reference
        from repro.plan.analysis import qualify_preferences
        from tests.test_strategy_fuzz import DB, plans

        optimizer = PreferenceOptimizer(DB.catalog, strict=True)

        @settings(
            max_examples=40,
            deadline=None,
            suppress_health_check=[HealthCheck.too_slow],
        )
        @given(plans())
        def check(plan):
            qualified = qualify_preferences(plan, DB.catalog)
            optimized = optimizer.optimize(qualified)  # audits every fire
            errors = [
                d
                for d in verify_plan(optimized, DB.catalog, ordered_chains=True)
                if d.severity is Severity.ERROR
            ]
            assert errors == [], f"verifier rejected optimizer output: {errors}"
            before = evaluate_reference(qualified, DB.catalog)
            after = conform(
                evaluate_reference(optimized, DB.catalog),
                qualified.schema(DB.catalog),
            )
            assert before.same_contents(after)

        check()
