"""White-box tests for the plug-in baselines and strategy cost profiles."""

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import cmp, eq
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import scan
from repro.workloads import preference_pool


def run_and_count(db, plan, strategy):
    engine = ExecutionEngine(db)
    before = dict(db.cost.operator_calls)
    result = engine.run(plan, strategy)
    after = db.cost.operator_calls
    delta = {k: after.get(k, 0) - before.get(k, 0) for k in after}
    return result, delta


@pytest.fixture
def three_pref_plan(movie_db, example_preferences):
    return (
        scan("MOVIES")
        .natural_join(scan("GENRES").prefer(example_preferences["p1"]), movie_db.catalog)
        .natural_join(scan("DIRECTORS").prefer(example_preferences["p2"]), movie_db.catalog)
        .prefer(Preference("pm", "MOVIES", cmp("year", ">", 2005), 0.7, 0.8))
        .build()
    )


class TestPluginCostProfile:
    def test_rma_issues_one_query_per_preference(self, movie_db, three_pref_plan):
        _, delta = run_and_count(movie_db, three_pref_plan, "plugin-rma")
        assert delta.get("plugin-query", 0) == 3

    def test_shared_also_counts_per_preference(self, movie_db, three_pref_plan):
        _, delta = run_and_count(movie_db, three_pref_plan, "plugin-shared")
        assert delta.get("plugin-query", 0) == 3

    def _join_plan(self, db, preferences):
        return (
            scan("MOVIES")
            .natural_join(scan("GENRES"), db.catalog)
            .natural_join(scan("DIRECTORS"), db.catalog)
            .prefer_all(preferences)
            .build()
        )

    def _extra_prefs(self):
        return [
            Preference("a", "GENRES", eq("genre", "Drama"), 0.5, 0.5),
            Preference("b", "MOVIES", cmp("year", ">", 2005), 0.5, 0.5),
        ]

    def test_rma_join_work_scales_with_preferences(self, movie_db, example_preferences):
        """Each rewritten query re-runs the join: materializations scale with |λ|."""
        engine = ExecutionEngine(movie_db)
        p1 = example_preferences["p1"]
        one = engine.run(self._join_plan(movie_db, [p1]), "plugin-rma").stats.cost
        three = engine.run(
            self._join_plan(movie_db, [p1] + self._extra_prefs()), "plugin-rma"
        ).stats.cost
        assert three["tuples_materialized"] > 1.8 * one["tuples_materialized"]

    def test_ftp_join_work_stays_flat(self, movie_db, example_preferences):
        """FtP runs the join once; extra preferences only add in-memory folds."""
        engine = ExecutionEngine(movie_db)
        p1 = example_preferences["p1"]
        one = engine.run(self._join_plan(movie_db, [p1]), "ftp").stats.cost
        three = engine.run(
            self._join_plan(movie_db, [p1] + self._extra_prefs()), "ftp"
        ).stats.cost
        assert three["tuples_materialized"] == one["tuples_materialized"]


class TestMaterializationProfile:
    def test_gbu_materializes_less_than_bu(self, imdb_tiny):
        """The Fig.-14 claim at test scale: fewer intermediate tuples."""
        pool = preference_pool(imdb_tiny, 3)
        movie_prefs = [p for p in pool if p.relations == ("MOVIES",)]
        plan = (
            scan("MOVIES")
            .natural_join(scan("GENRES"), imdb_tiny.catalog)
            .natural_join(scan("DIRECTORS"), imdb_tiny.catalog)
            .prefer_all(pool[:3])
            .build()
        )
        engine = ExecutionEngine(imdb_tiny)
        bu = engine.run(plan, "bu").stats.cost["tuples_materialized"]
        gbu = engine.run(plan, "gbu").stats.cost["tuples_materialized"]
        assert gbu < bu

    def test_prefer_counted_per_operator(self, movie_db, three_pref_plan):
        _, delta = run_and_count(movie_db, three_pref_plan, "gbu")
        assert delta.get("prefer", 0) == 3
