"""Unit tests for the prefer operator λ_{p,F} (Section IV-C)."""

import pytest

from repro.core.aggregates import F_MAX, F_S
from repro.core.prefer import make_combiner, prefer
from repro.core.preference import Preference
from repro.core.prelation import PRelation
from repro.core.scorepair import IDENTITY, ScorePair
from repro.core.scoring import around_score, recency_score
from repro.engine.expressions import TRUE, cmp, eq


@pytest.fixture
def movies(movie_db):
    return PRelation.from_table(movie_db.table("MOVIES"))


def pair_for(prel, m_id):
    for row, p in prel:
        if row[0] == m_id:
            return p
    raise AssertionError(f"movie {m_id} not found")


class TestExample8:
    """The paper's Example 8: p_a then p_b over MOVIES."""

    P_A = Preference(
        "p_a", "MOVIES", cmp("year", ">=", 2000), recency_score("year", 2011), 1.0
    )
    P_B = Preference(
        "p_b", "MOVIES", cmp("duration", ">=", 120), around_score("duration", 120), 0.5
    )

    def test_lambda_pa(self, movies):
        out = prefer(movies, self.P_A)
        # All five example movies are from ≥ 2000, all get S_m with conf 1.
        for row, p in out:
            assert p.score == pytest.approx(row[2] / 2011)
            assert p.conf == 1.0

    def test_lambda_pb_after_pa(self, movies):
        out = prefer(prefer(movies, self.P_A), self.P_B)
        # Gran Torino (116 min) fails p_b: keeps its p_a pair.
        gran = pair_for(out, 1)
        assert gran.conf == 1.0
        assert gran.score == pytest.approx(2008 / 2011)
        # Wall Street (133 min, 2010) satisfies both: F_S-combined.
        wall = pair_for(out, 2)
        s_a = 2010 / 2011
        s_b = 1 - 13 / 120
        assert wall.conf == pytest.approx(1.5)
        assert wall.score == pytest.approx((1.0 * s_a + 0.5 * s_b) / 1.5)

    def test_prefer_does_not_filter(self, movies):
        """Preference evaluation is not tuple filtering (Section I)."""
        narrow = Preference("narrow", "MOVIES", eq("m_id", 1), 1.0, 1.0)
        out = prefer(movies, narrow)
        assert len(out) == len(movies)
        assert sum(1 for _, p in out if not p.is_default) == 1

    def test_input_not_mutated(self, movies):
        before = list(movies.pairs)
        prefer(movies, self.P_A)
        assert movies.pairs == before


class TestSemantics:
    def test_true_condition_scores_everything(self, movies):
        p = Preference("all", "MOVIES", TRUE, 0.5, 0.8)
        out = prefer(movies, p)
        assert all(pr == ScorePair(0.5, 0.8) for pr in out.pairs)

    def test_bottom_scoring_keeps_confidence(self, movies):
        # Scoring over a NULL attribute yields ⊥; the matched preference
        # still contributes its confidence (evidence without a score) —
        # dropping it would break F's identity law for ⟨⊥, c⟩ pairs.
        movie_db_rows = list(movies.rows)
        movies.rows[0] = movie_db_rows[0][:2] + (None,) + movie_db_rows[0][3:]
        p = Preference("rec", "MOVIES", TRUE, recency_score("year", 2011), 0.9)
        out = prefer(movies, p)
        assert out.pairs[0].is_bottom
        assert out.pairs[0].conf == pytest.approx(0.9)
        assert not out.pairs[1].is_default

    def test_aggregate_choice_respected(self, movies):
        p1 = Preference("a", "MOVIES", TRUE, 0.2, 0.9)
        p2 = Preference("b", "MOVIES", TRUE, 0.9, 0.3)
        out = prefer(prefer(movies, p1, F_MAX), p2, F_MAX)
        assert all(p == ScorePair(0.2, 0.9) for p in out.pairs)

    def test_commutativity_property_4_3(self, movies):
        """λ_p1(λ_p2(R)) = λ_p2(λ_p1(R)) (Property 4.3)."""
        p1 = Preference("a", "MOVIES", cmp("year", ">", 2005), 0.7, 0.6)
        p2 = Preference(
            "b", "MOVIES", cmp("duration", "<", 125), recency_score("year", 2011), 0.9
        )
        order1 = prefer(prefer(movies, p1), p2)
        order2 = prefer(prefer(movies, p2), p1)
        assert order1.same_contents(order2)

    def test_same_preference_twice_reinforces(self, movies):
        p = Preference("a", "MOVIES", TRUE, 0.5, 0.4)
        out = prefer(prefer(movies, p), p)
        assert all(pr.conf == pytest.approx(0.8) for pr in out.pairs)
        assert all(pr.score == pytest.approx(0.5) for pr in out.pairs)


class TestMakeCombiner:
    def test_combiner_matches_prefer(self, movies):
        p = Preference("rec", "MOVIES", cmp("year", ">", 2005), 0.9, 0.5)
        combiner = make_combiner(movies.schema, p, F_S)
        expected = prefer(movies, p)
        for row, before, after in zip(movies.rows, movies.pairs, expected.pairs):
            assert combiner(row, before).approx_equal(after)
