"""Unit tests for the preference triple (Definition 1)."""

import pytest

from repro.core.preference import Preference
from repro.core.scoring import ConstantScore, recency_score
from repro.engine.expressions import TRUE, cmp, eq
from repro.errors import PreferenceError


class TestConstruction:
    def test_example1_atomic(self):
        """p1[MOVIES] = (σ_{m_id=m3}, 0.8, 1) — an explicit user rating."""
        p = Preference.atomic("MOVIES", "m_id", 3, 0.8)
        assert p.relations == ("MOVIES",)
        assert p.confidence == 1.0
        assert isinstance(p.scoring, ConstantScore)
        assert p.scoring.value == 0.8
        assert not p.is_multi_relational

    def test_example2_generic(self):
        """p3[GENRES] = (σ_{genre='Comedy'}, 1, 0.8)."""
        p = Preference("p3", "GENRES", eq("genre", "Comedy"), 1.0, 0.8)
        assert p.condition == eq("genre", "Comedy")
        assert p.confidence == 0.8

    def test_float_scoring_shorthand(self):
        p = Preference("x", "R", TRUE, 0.5, 0.5)
        assert isinstance(p.scoring, ConstantScore)

    def test_confidence_range_validated(self):
        with pytest.raises(PreferenceError):
            Preference("x", "R", TRUE, 0.5, 1.5)
        with pytest.raises(PreferenceError):
            Preference("x", "R", TRUE, 0.5, -0.1)

    def test_relations_required(self):
        with pytest.raises(PreferenceError):
            Preference("x", [], TRUE, 0.5, 0.5)

    def test_relation_names_uppercased(self):
        p = Preference("x", "movies", TRUE, 0.5, 0.5)
        assert p.relations == ("MOVIES",)


class TestFlavours:
    def test_multi_relational_p6(self):
        """p6[MOVIES × GENRES] = (σ_{genre='Action'}, S_m(year,2011), 0.8)."""
        p = Preference(
            "p6", ("MOVIES", "GENRES"), eq("genre", "Action"), recency_score(), 0.8
        )
        assert p.is_multi_relational
        assert not p.is_membership

    def test_membership_p7(self):
        """p7[MOVIES × AWARDS] = (σ_true, 1, 0.9)."""
        p = Preference.membership(("MOVIES", "AWARDS"), 1.0, 0.9, name="p7")
        assert p.is_membership
        assert p.is_multi_relational
        assert p.confidence == 0.9

    def test_single_relation_true_condition_is_not_membership(self):
        p = Preference("x", "MOVIES", TRUE, 1.0, 1.0)
        assert not p.is_membership


class TestIntrospection:
    def test_attributes_union_condition_and_scoring(self):
        p = Preference(
            "p", "MOVIES", cmp("duration", "<", 120), recency_score("year"), 0.5
        )
        assert p.attributes() == {"duration", "year"}
        assert p.condition_attributes() == {"duration"}

    def test_describe_mentions_parts(self):
        p = Preference("p9", "GENRES", eq("genre", "Horror"), 0.0, 0.7)
        text = p.describe()
        assert "p9" in text and "GENRES" in text and "0.7" in text

    def test_equality_and_hash(self):
        a = Preference("p", "R", eq("x", 1), 0.5, 0.5)
        b = Preference("p", "R", eq("x", 1), 0.5, 0.5)
        assert a == b and hash(a) == hash(b)
        assert a != Preference("p", "R", eq("x", 2), 0.5, 0.5)


class TestQualification:
    def test_bare_attrs_qualified(self, movie_db):
        p = Preference("p", "DIRECTORS", eq("d_id", 1), 0.9, 0.8)
        q = p.qualify(movie_db.catalog)
        assert q.condition_attributes() == {"directors.d_id"}

    def test_scoring_attrs_qualified(self, movie_db):
        p = Preference("p", "MOVIES", TRUE, recency_score("year"), 0.9)
        q = p.qualify(movie_db.catalog)
        assert q.attributes() == {"movies.year"}

    def test_already_qualified_untouched(self, movie_db):
        p = Preference("p", "MOVIES", eq("MOVIES.year", 2008), 0.9, 0.8)
        assert p.qualify(movie_db.catalog) == p

    def test_multi_relational_resolution(self, movie_db):
        p = Preference(
            "p", ("MOVIES", "GENRES"), eq("genre", "Action"), recency_score("year"), 0.8
        )
        q = p.qualify(movie_db.catalog)
        assert q.attributes() == {"genres.genre", "movies.year"}

    def test_shared_attr_left_bare(self, movie_db):
        # m_id exists in both MOVIES and GENRES: no unique owner, stays bare.
        p = Preference("p", ("MOVIES", "GENRES"), eq("m_id", 1), 0.9, 0.8)
        q = p.qualify(movie_db.catalog)
        assert "m_id" in q.condition_attributes()

    def test_unknown_relation_tolerated(self, movie_db):
        p = Preference("p", "NOT_A_TABLE", eq("x", 1), 0.9, 0.8)
        assert p.qualify(movie_db.catalog) == p
