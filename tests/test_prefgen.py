"""Tests for preference generation with controlled selectivity."""

import pytest

from repro.errors import PreferenceError
from repro.workloads.prefgen import (
    equality_preference,
    measured_selectivity,
    preference_pool,
    range_preference,
)


class TestEqualityPreference:
    @pytest.mark.parametrize("target", [0.05, 0.2, 0.5])
    def test_hits_target_roughly(self, imdb_tiny, target):
        p = equality_preference(imdb_tiny, "GENRES", "genre", target)
        measured = measured_selectivity(imdb_tiny, p)
        # Categorical attributes quantize: allow a generous band.
        assert target * 0.4 <= measured <= min(1.0, target * 2.5)

    def test_invalid_selectivity(self, imdb_tiny):
        with pytest.raises(PreferenceError):
            equality_preference(imdb_tiny, "GENRES", "genre", 0.0)
        with pytest.raises(PreferenceError):
            equality_preference(imdb_tiny, "GENRES", "genre", 1.5)

    def test_confidence_and_score_carried(self, imdb_tiny):
        p = equality_preference(
            imdb_tiny, "GENRES", "genre", 0.1, score=0.3, confidence=0.4
        )
        assert p.confidence == 0.4


class TestRangePreference:
    @pytest.mark.parametrize("target", [0.1, 0.3, 0.7])
    def test_hits_target(self, imdb_tiny, target):
        p = range_preference(imdb_tiny, "MOVIES", "year", target)
        measured = measured_selectivity(imdb_tiny, p)
        assert measured == pytest.approx(target, abs=0.12)

    def test_condition_is_range(self, imdb_tiny):
        p = range_preference(imdb_tiny, "MOVIES", "year", 0.2)
        from repro.engine.expressions import Comparison

        assert isinstance(p.condition, Comparison)
        assert p.condition.op == ">="


class TestPreferencePool:
    def test_requested_count(self, imdb_tiny):
        pool = preference_pool(imdb_tiny, 8)
        assert len(pool) == 8

    def test_distinct_names(self, imdb_tiny):
        pool = preference_pool(imdb_tiny, 10)
        assert len({p.name for p in pool}) == 10

    def test_conditions_have_bounded_selectivity(self, imdb_tiny):
        pool = preference_pool(imdb_tiny, 6, selectivity=0.05)
        for p in pool:
            measured = measured_selectivity(imdb_tiny, p)
            assert 0.0 < measured <= 0.4

    def test_pool_usable_in_queries(self, imdb_tiny):
        from repro.pexec.engine import ExecutionEngine
        from repro.plan.builder import scan

        pool = preference_pool(imdb_tiny, 4)
        movie_prefs = [p for p in pool if p.relations == ("MOVIES",)]
        plan = scan("MOVIES").prefer_all(movie_prefs).build()
        engine = ExecutionEngine(imdb_tiny)
        gbu = engine.run(plan, "gbu")
        ref = engine.run(plan, "reference")
        assert gbu.relation.same_contents(ref.relation)


class TestMeasuredSelectivity:
    def test_multi_relational_rejected(self, imdb_tiny):
        from repro.core.preference import Preference

        p = Preference.membership(("MOVIES", "AWARDS"))
        with pytest.raises(PreferenceError):
            measured_selectivity(imdb_tiny, p)
