"""Unit tests for the preference dispatch index (repro.core.prefgroup)."""

import pytest

from repro.core.aggregates import F_MAX, F_S
from repro.core.preference import Preference
from repro.core.prefgroup import (
    MEMO_MAX_ATTRS,
    CompiledGroup,
    PreferenceGroup,
    dispatch_probe,
)
from repro.core.scorepair import IDENTITY, ScorePair
from repro.core.scoring import ConstantScore
from repro.engine.expressions import (
    TRUE,
    And,
    InList,
    cmp,
    col,
    eq,
)
from repro.errors import PreferenceError
from repro.plan.builder import scan


def genres_schema(movie_db):
    return scan("GENRES").build().schema(movie_db.catalog)


def pref(name, condition, score=0.5, conf=0.8):
    return Preference(name, "GENRES", condition, ConstantScore(score), conf)


class TestDispatchProbe:
    def test_equality_is_probeable(self):
        assert dispatch_probe(eq("GENRES.genre", "Drama")) == (
            "GENRES.genre",
            ("Drama",),
            None,
        )

    def test_reversed_operands_probe_too(self):
        from repro.engine.expressions import Comparison, lit

        condition = Comparison("=", lit("Drama"), col("GENRES.genre"))
        assert dispatch_probe(condition) == ("GENRES.genre", ("Drama",), None)

    def test_in_list_probes_every_value(self):
        condition = InList(col("GENRES.genre"), ("Drama", "Comedy"))
        attr, values, residual = dispatch_probe(condition)
        assert attr == "GENRES.genre"
        assert set(values) == {"Drama", "Comedy"}
        assert residual is None

    def test_in_list_with_null_is_not_probeable(self):
        # IN (..., NULL) matches NULL rows; a hash probe keyed on the row
        # value cannot reproduce that, so the preference must stay residual.
        condition = InList(col("GENRES.genre"), ("Drama", None))
        assert dispatch_probe(condition) is None

    def test_equals_null_matches_nothing(self):
        from repro.engine.expressions import Comparison, lit

        condition = Comparison("=", col("GENRES.genre"), lit(None))
        assert dispatch_probe(condition) == ("GENRES.genre", (), None)

    def test_range_condition_is_not_probeable(self):
        assert dispatch_probe(cmp("GENRES.m_id", ">=", 2)) is None

    def test_residual_conjunct_is_kept(self):
        condition = And(eq("GENRES.genre", "Drama"), cmp("GENRES.m_id", ">=", 2))
        attr, values, residual = dispatch_probe(condition)
        assert (attr, values) == ("GENRES.genre", ("Drama",))
        assert residual is not None  # the range conjunct survives as residual


class TestCompiledGroup:
    def test_indexed_vs_residual_partition(self, movie_db):
        group = PreferenceGroup(
            [
                pref("a", eq("GENRES.genre", "Drama")),
                pref("b", InList(col("GENRES.genre"), ("Comedy", "Action"))),
                pref("c", cmp("GENRES.m_id", ">=", 2)),  # no equality conjunct
                pref("d", TRUE),
            ],
            F_S,
        )
        compiled = group.compile(genres_schema(movie_db))
        assert compiled.indexed_count == 2
        assert compiled.residual_count == 2

    def test_dispatch_skips_non_matching_rows(self, movie_db):
        schema = genres_schema(movie_db)
        compiled = PreferenceGroup(
            [pref("a", eq("GENRES.genre", "Drama"))], F_S
        ).compile(schema)
        drama = (1, "Drama")
        comedy = (2, "Comedy")
        assert [i for i, _ in compiled.matches(drama)] == [0]
        assert compiled.matches(comedy) == []
        # One probe per row, but only the Drama row produced a hit.
        assert compiled.stats.probes == 2
        assert compiled.stats.dispatch_hits == 1

    def test_null_row_value_never_matches_equality(self, movie_db):
        schema = genres_schema(movie_db)
        compiled = PreferenceGroup(
            [pref("a", eq("GENRES.genre", "Drama"))], F_S
        ).compile(schema)
        assert compiled.matches((1, None)) == []

    def test_residual_conjunct_filters_dispatch_hits(self, movie_db):
        schema = genres_schema(movie_db)
        condition = And(eq("GENRES.genre", "Drama"), cmp("GENRES.m_id", ">=", 2))
        compiled = PreferenceGroup([pref("a", condition)], F_S).compile(schema)
        assert compiled.indexed_count == 1
        assert compiled.matches((5, "Drama"))
        assert compiled.matches((1, "Drama")) == []
        assert compiled.stats.residual_checks == 2

    def test_matches_preserve_group_order(self, movie_db):
        schema = genres_schema(movie_db)
        compiled = PreferenceGroup(
            [
                pref("late", TRUE),  # residual, but index 0
                pref("early", eq("GENRES.genre", "Drama")),  # indexed, index 1
            ],
            F_S,
        ).compile(schema)
        assert [i for i, _ in compiled.matches((1, "Drama"))] == [0, 1]

    def test_memo_caches_repeated_projections(self, movie_db):
        schema = genres_schema(movie_db)
        compiled = PreferenceGroup(
            [pref("a", eq("GENRES.genre", "Drama"))], F_S
        ).compile(schema)
        assert compiled.memo_enabled
        rows = [(1, "Drama"), (2, "Drama"), (3, "Comedy"), (4, "Drama")]
        for row in rows:
            compiled.matches(row)
        # m_id is not preference-relevant, so rows 2 and 4 hit row 1's entry.
        assert compiled.stats.memo_hits == 2

    def test_memo_disabled_for_wide_projections(self):
        from repro.engine.schema import Column, TableSchema
        from repro.engine.types import DataType

        width = MEMO_MAX_ATTRS + 1
        schema = TableSchema(
            "W", [Column(f"a{i}", DataType.INT, "W") for i in range(width)]
        )
        preferences = [
            Preference(f"p{i}", "W", cmp(f"W.a{i}", ">=", 0), ConstantScore(0.5), 0.5)
            for i in range(width)
        ]
        compiled = PreferenceGroup(preferences, F_S).compile(schema)
        assert not compiled.memo_enabled
        # The dispatch/residual machinery still answers correctly.
        row = tuple(range(width))
        assert len(compiled.matches(row)) == width

    def test_attribute_free_group_memoizes_trivially(self, movie_db):
        schema = genres_schema(movie_db)
        compiled = PreferenceGroup([pref("a", TRUE), pref("b", TRUE)], F_S).compile(
            schema
        )
        assert compiled.memo_enabled
        compiled.matches((1, "Drama"))
        compiled.matches((2, "Comedy"))
        # Every row projects to the empty tuple: one compute, then cache.
        assert compiled.stats.memo_hits == 1

    def test_empty_group_rejected(self):
        with pytest.raises(PreferenceError):
            PreferenceGroup([], F_S)

    def test_unlawful_aggregate_rejected(self):
        class Broken:
            name = "broken"
            identity = IDENTITY

            def combine(self, a, b):  # not commutative, no identity
                return ScorePair(1.0, 1.0)

        with pytest.raises(PreferenceError):
            PreferenceGroup([pref("a", TRUE)], Broken())


class TestScoreRows:
    def test_default_pairs_are_popped(self, movie_db):
        schema = genres_schema(movie_db)
        # Scoring to ⟨0, conf⟩ via F_MAX over a base of IDENTITY keeps the
        # pair non-default, so craft a base entry that collapses instead.
        compiled = PreferenceGroup([pref("a", eq("GENRES.genre", "Drama"))], F_S).compile(
            schema
        )
        rows = [(1, "Drama")]
        scores = compiled.score_rows(rows, lambda r: (r[0],), None)
        assert (1,) in scores
        assert not scores[(1,)].is_default

    def test_rows_sharing_a_key_fold_in_sequential_order(self, movie_db):
        from repro.pexec.scorerel import Intermediate, apply_prefer

        schema = genres_schema(movie_db)
        preferences = [
            pref("a", eq("GENRES.genre", "Drama"), score=0.3, conf=0.9),
            pref("b", cmp("GENRES.m_id", ">=", 0), score=0.7, conf=0.4),
        ]
        rows = [(1, "Drama"), (2, "Drama"), (3, "Comedy")]
        # Key on genre so several rows share one score-relation key.
        inter = Intermediate(schema, rows, ["GENRES.genre"], {})
        sequential = inter
        for preference in preferences:  # noqa: LN201 — reference fold
            sequential = apply_prefer(sequential, preference, F_S)
        compiled = PreferenceGroup(preferences, F_S).compile(schema)
        fused = compiled.score_rows(rows, inter.key_fn(), inter.scores)
        assert fused == sequential.scores

    def test_score_pairs_matches_sequential_for_fmax(self, movie_db):
        from repro.core.prefer import prefer
        from repro.core.prelation import PRelation

        schema = genres_schema(movie_db)
        preferences = [
            pref("a", eq("GENRES.genre", "Drama"), score=0.3, conf=0.9),
            pref("b", TRUE, score=0.7, conf=0.4),
        ]
        rows = [(1, "Drama"), (2, "Comedy")]
        relation = PRelation(schema, rows)
        sequential = relation
        for preference in preferences:  # noqa: LN201 — reference fold
            sequential = prefer(sequential, preference, F_MAX)
        compiled = PreferenceGroup(preferences, F_MAX).compile(schema)
        assert compiled.score_pairs(rows, relation.pairs) == sequential.pairs
