"""Unit tests for p-relations and score relations (Definition 2, §VI)."""

import pytest

from repro.core.prelation import PRelation, ScoreRelation
from repro.core.scorepair import IDENTITY, ScorePair
from repro.errors import ExecutionError


class TestPRelation:
    def test_from_table_defaults(self, movie_db):
        prel = PRelation.from_table(movie_db.table("MOVIES"))
        assert len(prel) == 5
        assert all(p == IDENTITY for p in prel.pairs)

    def test_pairs_length_checked(self, movie_db):
        schema = movie_db.table("MOVIES").schema
        with pytest.raises(ExecutionError):
            PRelation(schema, [(1,) * 5], [IDENTITY, IDENTITY])

    def test_from_triples(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        prel = PRelation.from_triples(
            schema, [((1, "A"), 0.5, 0.9), ((2, "B"), None, 0.0)]
        )
        assert prel.pairs[0] == ScorePair(0.5, 0.9)
        assert prel.pairs[1].is_default

    def test_triples_iteration(self, movie_db):
        prel = PRelation.from_table(movie_db.table("DIRECTORS"))
        triples = list(prel.triples())
        assert len(triples) == 3
        assert triples[0][1] is None and triples[0][2] == 0.0

    def test_scored_fraction(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        prel = PRelation(
            schema,
            [(1, "A"), (2, "B")],
            [ScorePair(0.5, 0.5), IDENTITY],
        )
        assert prel.scored_fraction() == 0.5
        assert PRelation(schema).scored_fraction() == 0.0

    def test_sorted_by_score_bottom_last(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        prel = PRelation(
            schema,
            [(1, "A"), (2, "B"), (3, "C")],
            [IDENTITY, ScorePair(0.9, 1.0), ScorePair(0.4, 1.0)],
        )
        ordered = prel.sorted_by("score")
        assert [r[0] for r in ordered.rows] == [2, 3, 1]

    def test_sorted_by_conf_ascending(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        prel = PRelation(
            schema,
            [(1, "A"), (2, "B")],
            [ScorePair(0.9, 0.2), ScorePair(0.1, 0.8)],
        )
        ordered = prel.sorted_by("conf", descending=False)
        assert [r[0] for r in ordered.rows] == [1, 2]

    def test_sorted_invalid_key(self, movie_db):
        prel = PRelation.from_table(movie_db.table("DIRECTORS"))
        with pytest.raises(ExecutionError):
            prel.sorted_by("title")

    def test_same_contents_order_insensitive(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        a = PRelation(schema, [(1, "A"), (2, "B")], [IDENTITY, ScorePair(0.5, 1.0)])
        b = PRelation(schema, [(2, "B"), (1, "A")], [ScorePair(0.5, 1.0), IDENTITY])
        assert a.same_contents(b)

    def test_same_contents_detects_pair_difference(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        a = PRelation(schema, [(1, "A")], [ScorePair(0.5, 1.0)])
        b = PRelation(schema, [(1, "A")], [ScorePair(0.6, 1.0)])
        assert not a.same_contents(b)

    def test_same_contents_tolerates_rounding(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        a = PRelation(schema, [(1, "A")], [ScorePair(0.5, 1.0)])
        b = PRelation(schema, [(1, "A")], [ScorePair(0.5 + 1e-12, 1.0)])
        assert a.same_contents(b)

    def test_multiset_counts_duplicates(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        a = PRelation(schema, [(1, "A"), (1, "A")], [IDENTITY, IDENTITY])
        b = PRelation(schema, [(1, "A")], [IDENTITY])
        assert not a.same_contents(b)


class TestScoreRelation:
    def test_default_for_missing_key(self):
        sr = ScoreRelation(["m_id"])
        assert sr.get((1,)) == IDENTITY

    def test_put_and_get(self):
        sr = ScoreRelation(["m_id"])
        sr.put((1,), ScorePair(0.5, 0.5))
        assert sr.get((1,)) == ScorePair(0.5, 0.5)
        assert len(sr) == 1

    def test_default_pairs_not_stored(self):
        """R_P contains only tuples with non-default pairs (|R_P| ≤ |R|)."""
        sr = ScoreRelation(["m_id"])
        sr.put((1,), IDENTITY)
        assert len(sr) == 0
        sr.put((1,), ScorePair(0.5, 0.5))
        sr.put((1,), IDENTITY)  # overwrite back to default removes the entry
        assert len(sr) == 0

    def test_requires_key(self):
        with pytest.raises(ExecutionError):
            ScoreRelation([])

    def test_copy_is_independent(self):
        sr = ScoreRelation(["k"], {(1,): ScorePair(0.1, 0.1)})
        clone = sr.copy()
        clone.put((2,), ScorePair(0.2, 0.2))
        assert len(sr) == 1 and len(clone) == 2

    def test_key_extractor(self, movie_db):
        schema = movie_db.table("MOVIES").schema
        sr = ScoreRelation(["m_id"])
        extract = sr.key_extractor(schema)
        assert extract((7, "T", 2000, 100, 1)) == (7,)
