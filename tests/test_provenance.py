"""Tests for answer provenance (why was this tuple recommended?)."""

import pytest

from repro.core.preference import Preference
from repro.core.scorepair import ScorePair
from repro.engine.expressions import cmp, eq
from repro.errors import ExecutionError
from repro.pexec.provenance import explain_relation, explain_tuple
from repro.query.session import Session


@pytest.fixture
def session(movie_db, example_preferences):
    s = Session(movie_db)
    s.register_all(example_preferences.values())
    return s


class TestExplainTuple:
    def test_matched_and_unmatched(self, session):
        result = session.execute(
            "SELECT title, genre FROM MOVIES NATURAL JOIN GENRES "
            "NATURAL JOIN DIRECTORS PREFERRING p1, p2 ORDER BY score"
        )
        explanation = session.why(result, index=0)
        by_name = {c.preference.name: c for c in explanation.contributions}
        assert set(by_name) == {"p1", "p2"}
        assert explanation.matched  # the top tuple matched something

    def test_combined_pair_matches_actual(self, session):
        result = session.execute(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES "
            "NATURAL JOIN DIRECTORS PREFERRING p1, p2"
        )
        for index, (row, pair) in enumerate(result.relation):
            explanation = session.why(result, index)
            assert explanation.combined.approx_equal(pair, 1e-9), row

    def test_comedy_explanation(self, session):
        result = session.execute(
            "SELECT title, genre FROM MOVIES NATURAL JOIN GENRES PREFERRING p1"
        )
        comedy_index = next(
            i for i, row in enumerate(result.relation.rows) if "Comedy" in row
        )
        explanation = session.why(result, comedy_index)
        (contribution,) = explanation.matched
        assert contribution.preference.name == "p1"
        assert contribution.score == pytest.approx(0.8)
        assert contribution.confidence == pytest.approx(0.9)
        assert "matched" in contribution.describe()

    def test_describe_renders(self, session):
        result = session.execute(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING p1"
        )
        text = session.why(result, 0).describe()
        assert "p1" in text
        assert "tuple" in text

    def test_unmatched_tuple_has_identity_pair(self, session):
        result = session.execute(
            "SELECT title, genre FROM MOVIES NATURAL JOIN GENRES PREFERRING p1"
        )
        drama_index = next(
            i for i, row in enumerate(result.relation.rows) if "Drama" in row
        )
        explanation = session.why(result, drama_index)
        assert explanation.matched == ()
        assert explanation.combined.is_default


class TestExplainRelation:
    def test_limit(self, session):
        result = session.execute(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING p1"
        )
        preferences = [p.qualify(session.db.catalog) for p in result.plan.preferences()]
        explanations = explain_relation(result.relation, preferences, limit=3)
        assert len(explanations) == 3

    def test_missing_attribute_raises(self, movie_db):
        from repro.core.prelation import PRelation

        relation = PRelation.from_table(movie_db.table("DIRECTORS"))
        foreign = Preference("odd", "MOVIES", eq("title", "x"), 0.5, 0.5)
        with pytest.raises(ExecutionError, match="cannot explain"):
            explain_tuple(relation.schema, relation.rows[0], [foreign])
