"""Unit tests for the query compiler (SQL → extended plan)."""

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import eq
from repro.errors import ParseError
from repro.plan.nodes import Join, Prefer, Project, Relation, Select, TopK, Union
from repro.query.model import QueryCompiler


@pytest.fixture
def compiler(movie_db, example_preferences):
    registry = {name: p for name, p in example_preferences.items()}
    return QueryCompiler(movie_db.catalog, registry)


class TestPlanShape:
    def test_simple_select(self, compiler):
        plan = compiler.compile("SELECT title FROM MOVIES WHERE year = 2008").plan
        kinds = [n.kind for n in plan.walk()]
        assert kinds == ["project", "select", "relation"]

    def test_star_has_no_projection(self, compiler):
        plan = compiler.compile("SELECT * FROM MOVIES").plan
        assert isinstance(plan, Relation)

    def test_preferring_named(self, compiler):
        plan = compiler.compile("SELECT * FROM GENRES PREFERRING p1").plan
        assert isinstance(plan, Prefer)
        assert plan.preference.name == "p1"

    def test_unknown_preference_rejected(self, compiler):
        with pytest.raises(ParseError, match="unknown preference"):
            compiler.compile("SELECT * FROM GENRES PREFERRING nope")

    def test_inline_preference_compiled(self, compiler):
        plan = compiler.compile(
            "SELECT * FROM GENRES PREFERRING (genre = 'Comedy') SCORE 0.8 CONFIDENCE 0.9"
        ).plan
        assert isinstance(plan, Prefer)
        assert plan.preference.confidence == 0.9
        assert plan.preference.relations == ("GENRES",)

    def test_inline_relations_inferred_from_attrs(self, compiler):
        plan = compiler.compile(
            "SELECT * FROM MOVIES NATURAL JOIN DIRECTORS "
            "PREFERRING (director = 'W. Allen') SCORE 0.9"
        ).plan
        assert plan.preference.relations == ("DIRECTORS",)

    def test_score_filter_hoisted_above_prefers(self, compiler):
        plan = compiler.compile(
            "SELECT * FROM GENRES WHERE conf > 0.5 AND m_id > 1 PREFERRING p1"
        ).plan
        # Top: score select; below: prefer; below: ordinary select.
        assert isinstance(plan, Select)
        assert plan.condition.references_score()
        assert isinstance(plan.child, Prefer)
        assert isinstance(plan.child.child, Select)
        assert not plan.child.child.condition.references_score()

    def test_topk_on_top(self, compiler):
        plan = compiler.compile("SELECT title FROM MOVIES TOP 3 BY score").plan
        assert isinstance(plan, TopK)
        assert plan.k == 3

    def test_order_by_recorded(self, compiler):
        q = compiler.compile("SELECT title FROM MOVIES ORDER BY conf")
        assert q.order_by == "conf"

    def test_union_statement(self, compiler):
        plan = compiler.compile(
            "SELECT title FROM MOVIES UNION SELECT title FROM MOVIES"
        ).plan
        assert isinstance(plan, Union)

    def test_natural_join_condition_built(self, compiler):
        plan = compiler.compile("SELECT * FROM MOVIES NATURAL JOIN DIRECTORS").plan
        assert isinstance(plan, Join)
        assert plan.condition.attributes() == {"movies.d_id", "directors.d_id"}

    def test_alias_in_from(self, compiler, movie_db):
        plan = compiler.compile("SELECT M.title FROM MOVIES AS M WHERE M.year = 2008").plan
        schema = plan.schema(movie_db.catalog)
        assert schema.attribute_names == ("M.title",)

    def test_comma_join_is_cross(self, compiler):
        plan = compiler.compile(
            "SELECT * FROM DIRECTORS, GENRES WHERE DIRECTORS.d_id = 1"
        ).plan
        join = next(n for n in plan.walk() if isinstance(n, Join))
        from repro.engine.expressions import is_true

        assert is_true(join.condition)
