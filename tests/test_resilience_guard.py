"""Tests for query guards: deadlines, budgets, cancellation, plumbing."""

import pytest

from repro.errors import (
    PreferenceError,
    QueryCancelled,
    QueryTimeout,
    ResourceExhausted,
)
from repro.query.session import Session
from repro.resilience import CancellationToken, QueryGuard, use_guard
from repro.resilience.guard import NULL_GUARD, current_guard


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCancellationToken:
    def test_starts_unset(self):
        token = CancellationToken()
        assert not token.cancelled

    def test_cancel_is_sticky(self):
        token = CancellationToken()
        token.cancel()
        token.cancel()
        assert token.cancelled


class TestQueryGuard:
    def test_unbounded_guard_never_trips(self):
        guard = QueryGuard()
        guard.check()
        guard.note_tuples(10**9)
        guard.note_rows(10**9)
        assert guard.remaining() is None

    def test_deadline_spans_from_construction(self):
        clock = FakeClock()
        guard = QueryGuard(timeout=5.0, clock=clock)
        clock.advance(4.9)
        guard.check()  # still inside the budget
        clock.advance(0.2)
        with pytest.raises(QueryTimeout) as excinfo:
            guard.check()
        assert excinfo.value.timeout == 5.0
        assert excinfo.value.elapsed == pytest.approx(5.1)

    def test_remaining_clamps_to_zero(self):
        clock = FakeClock()
        guard = QueryGuard(timeout=1.0, clock=clock)
        assert guard.remaining() == pytest.approx(1.0)
        clock.advance(3.0)
        assert guard.remaining() == 0.0

    def test_tuple_budget(self):
        guard = QueryGuard(max_tuples=100)
        guard.note_tuples(60)
        with pytest.raises(ResourceExhausted) as excinfo:
            guard.note_tuples(60)
        assert excinfo.value.kind == "tuples"
        assert excinfo.value.limit == 100
        assert excinfo.value.used == 120

    def test_row_ceiling(self):
        guard = QueryGuard(max_rows=5)
        guard.note_rows(5)
        with pytest.raises(ResourceExhausted) as excinfo:
            guard.note_rows(6)
        assert excinfo.value.kind == "rows"

    def test_cancellation_checked_first(self):
        token = CancellationToken()
        guard = QueryGuard(token=token)
        guard.check()
        token.cancel()
        with pytest.raises(QueryCancelled):
            guard.check()

    def test_null_guard_is_disabled_noop(self):
        assert NULL_GUARD.enabled is False
        NULL_GUARD.check()
        NULL_GUARD.note_tuples(10**9)
        NULL_GUARD.note_rows(10**9)
        assert NULL_GUARD.remaining() is None

    def test_ambient_guard_contextvar(self):
        assert current_guard() is NULL_GUARD
        guard = QueryGuard(timeout=1.0)
        with use_guard(guard):
            assert current_guard() is guard
            with use_guard(None):
                assert current_guard() is NULL_GUARD
            assert current_guard() is guard
        assert current_guard() is NULL_GUARD


SQL = "SELECT title FROM MOVIES PREFERRING p5 TOP 3 BY score"


@pytest.fixture
def session(movie_db, example_preferences) -> Session:
    session = Session(movie_db)
    session.register(example_preferences["p5"])
    return session


class TestSessionIntegration:
    @pytest.mark.parametrize("strategy", ["gbu", "bu", "ftp", "plugin-rma", "plugin-shared", "reference"])
    def test_expired_deadline_raises_in_every_strategy(self, session, strategy):
        with pytest.raises(QueryTimeout):
            session.execute(SQL, strategy=strategy, timeout=0.0)

    def test_max_rows_enforced_on_result(self, session):
        with pytest.raises(ResourceExhausted) as excinfo:
            session.execute("SELECT title FROM MOVIES PREFERRING p5", max_rows=2)
        assert excinfo.value.kind == "rows"

    def test_max_rows_allows_small_results(self, session):
        result = session.execute(SQL, max_rows=10)
        assert 0 < result.stats.rows <= 10

    def test_tuple_budget_via_explicit_guard(self, session):
        with pytest.raises(ResourceExhausted) as excinfo:
            session.execute(SQL, guard=QueryGuard(max_tuples=1))
        assert excinfo.value.kind == "tuples"

    def test_cancelled_token_stops_the_query(self, session):
        token = CancellationToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            session.execute(SQL, guard=QueryGuard(token=token))

    def test_guard_and_shorthand_are_exclusive(self, session):
        with pytest.raises(PreferenceError):
            session.execute(SQL, guard=QueryGuard(), timeout=1.0)

    def test_untimed_query_unaffected(self, session):
        plain = session.execute(SQL)
        guarded = session.execute(SQL, timeout=60.0, max_rows=1000)
        assert plain.relation.same_contents(guarded.relation)

    def test_guard_trips_are_not_retried(self, session):
        from repro.resilience import ResiliencePolicy, RetryPolicy

        calls = []
        policy = ResiliencePolicy(
            retry=RetryPolicy(base_delay=0.0, sleep=calls.append)
        )
        with pytest.raises(QueryTimeout):
            session.execute(SQL, timeout=0.0, resilience=policy)
        assert calls == []  # no backoff pause: the deadline is absolute
