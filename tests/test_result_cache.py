"""Unit tests for the digest-keyed result cache and its key components.

Covers the three key ingredients (plan fingerprint, profile digest, table
digest memoization), the :class:`~repro.cache.result_cache.ResultCache`
container semantics (LRU byte budget, targeted invalidation, single-flight
deduplication), and the :class:`~repro.cache.service.CachedQueryService`
behaviour the serving layer relies on (hits, commit-feed invalidation,
bypass of uncacheable profiles).  Byte-identity against the cache-off
oracle across random interleavings lives in
``tests/test_cache_conformance.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.cache import CachedQueryService, ResultCache
from repro.core.preference import Preference
from repro.core.scoring import CallableScore
from repro.engine.database import Database
from repro.engine.expressions import eq
from repro.engine.types import DataType
from repro.errors import PreferenceError
from repro.plan import UncacheablePlan, plan_fingerprint
from repro.plan.nodes import Materialized
from repro.serve.server import PreferenceServer, state_digest, table_digest
from repro.serve.net.server import namespaced  # noqa: F401 - fixture parity

SQL = """
    SELECT name, colour FROM ITEMS
    PREFERRING {names}
    TOP 3 BY score
"""


def small_db() -> Database:
    db = Database()
    db.create_table(
        "ITEMS",
        [("i_id", DataType.INT), ("name", DataType.TEXT), ("colour", DataType.TEXT)],
        primary_key=["i_id"],
    )
    db.insert_many(
        "ITEMS",
        [(1, "apple", "red"), (2, "pear", "green"), (3, "plum", "purple"),
         (4, "grape", "green")],
    )
    return db


def green() -> Preference:
    return Preference("likes_green", "ITEMS", eq("colour", "green"), 0.9, 0.9)


def red() -> Preference:
    return Preference("likes_red", "ITEMS", eq("colour", "red"), 0.8, 0.8)


def opaque() -> Preference:
    return Preference(
        "opaque",
        "ITEMS",
        eq("colour", "red"),
        CallableScore(lambda colour: 0.5, ["colour"]),
        0.9,
    )


@pytest.fixture()
def server():
    return PreferenceServer(small_db())


def compiled(server, names="likes_green", strategy="gbu"):
    session = server.snapshot().session_for("u1", strategy=strategy)
    return session.compile(SQL.format(names=names))


# -- plan fingerprints ---------------------------------------------------------


class TestPlanFingerprint:
    def test_recompiles_fingerprint_identically(self, server):
        server.add_preference("u1", green())
        a = plan_fingerprint(compiled(server).plan, strategy="gbu")
        b = plan_fingerprint(compiled(server).plan, strategy="gbu")
        assert a == b

    def test_strategy_and_oracle_flag_change_the_fingerprint(self, server):
        server.add_preference("u1", green())
        plan = compiled(server).plan
        base = plan_fingerprint(plan, strategy="gbu")
        assert plan_fingerprint(plan, strategy="bu") != base
        assert plan_fingerprint(plan, strategy="gbu", extra={"oracle": True}) != base

    def test_different_preferences_change_the_fingerprint(self, server):
        server.add_preference("u1", green())
        server.add_preference("u1", red())
        one = plan_fingerprint(compiled(server, "likes_green").plan, strategy="gbu")
        two = plan_fingerprint(
            compiled(server, "likes_green, likes_red").plan, strategy="gbu"
        )
        assert one != two

    def test_materialized_leaf_is_uncacheable(self, server):
        table = small_db().table("ITEMS")
        leaf = Materialized(table.schema, table.rows, name="tmp")
        with pytest.raises(UncacheablePlan):
            plan_fingerprint(leaf, strategy="gbu")


# -- profile digests -----------------------------------------------------------


class TestProfileDigest:
    def test_stable_and_memoized(self, server):
        server.add_preference("u1", green())
        store = server.store
        assert store.profile_digest("u1") == store.profile_digest("u1")

    def test_mutations_move_the_digest_and_removal_restores_it(self, server):
        store = server.store
        empty = store.profile_digest("u1")
        server.add_preference("u1", green())
        with_green = store.profile_digest("u1")
        assert with_green != empty
        server.add_preference("u1", red())
        assert store.profile_digest("u1") != with_green
        server.remove_preference("u1", "likes_red")
        assert store.profile_digest("u1") == with_green
        server.clear_preferences("u1")
        assert store.profile_digest("u1") == empty

    def test_order_insensitive(self):
        a = PreferenceServer(small_db())
        b = PreferenceServer(small_db())
        a.add_preference("u1", green())
        a.add_preference("u1", red())
        b.add_preference("u1", red())
        b.add_preference("u1", green())
        assert a.store.profile_digest("u1") == b.store.profile_digest("u1")

    def test_snapshot_keeps_the_digest_of_its_instant(self, server):
        server.add_preference("u1", green())
        snapshot = server.snapshot()
        before = snapshot.store.profile_digest("u1")
        server.add_preference("u1", red())
        assert snapshot.store.profile_digest("u1") == before
        assert server.store.profile_digest("u1") != before

    def test_unserializable_profile_raises_typed(self, server):
        server.add_preference("u1", opaque())
        with pytest.raises(PreferenceError):
            server.store.profile_digest("u1")


# -- table digests and snapshot digest memoization -----------------------------


class TestDigestMemoization:
    def test_frozen_table_memoizes_its_content_digest(self, server):
        snapshot = server.snapshot()
        table = snapshot.db.table("ITEMS")
        first = table_digest(table)
        assert getattr(table, "_content_digest", None) == first
        assert table_digest(table) == first

    def test_live_mutation_changes_the_table_digest(self, server):
        before = table_digest(server.db.table("ITEMS"))
        server.insert("ITEMS", (5, "lime", "green"))
        assert table_digest(server.db.table("ITEMS")) != before

    def test_snapshot_digest_is_cached_and_stable(self, server):
        server.add_preference("u1", green())
        snapshot = server.snapshot()
        first = snapshot.digest()
        assert snapshot.__dict__.get("_digest") == first
        assert snapshot.digest() == first
        # The live server moves on; the frozen snapshot's digest does not.
        server.insert("ITEMS", (5, "lime", "green"))
        assert snapshot.digest() == first
        assert state_digest(server.db, server.store) != first


# -- the ResultCache container -------------------------------------------------


class TestResultCache:
    def test_lru_evicts_by_byte_budget(self):
        cache = ResultCache(max_bytes=220)
        payload = {"filler": "x" * 60}
        for index in range(4):
            cache.get_or_compute(("k", index), lambda: dict(payload))
        stats = cache.stats_snapshot()
        assert stats["evictions"] >= 1
        assert stats["bytes"] <= 220
        # The cold end was evicted; the hot end still hits.
        before = cache.stats_snapshot()["hits"]
        cache.get_or_compute(("k", 3), lambda: dict(payload))
        assert cache.stats_snapshot()["hits"] == before + 1

    def test_invalidate_by_user_is_targeted(self):
        cache = ResultCache()
        cache.get_or_compute("a", lambda: {"r": 1}, user="u1", relations=("ITEMS",))
        cache.get_or_compute("b", lambda: {"r": 2}, user="u2", relations=("ITEMS",))
        cache.invalidate(user="u1", reason="test")
        stats = cache.stats_snapshot()
        assert stats["entries"] == 1
        assert stats["invalidations"] == 1
        calls = []
        cache.get_or_compute("b", lambda: calls.append(1) or {"r": 2}, user="u2")
        assert calls == []  # u2's entry survived

    def test_invalidate_by_table_and_lsn(self):
        cache = ResultCache()
        cache.get_or_compute("a", lambda: {"r": 1}, relations=("ITEMS",), lsn=1)
        cache.get_or_compute("b", lambda: {"r": 2}, relations=("OTHER",), lsn=2)
        cache.invalidate(table="ITEMS", reason="test")
        assert cache.stats_snapshot()["entries"] == 1
        cache.invalidate(below_lsn=3, reason="test")
        assert cache.stats_snapshot()["entries"] == 0

    def test_single_flight_deduplicates_concurrent_misses(self):
        cache = ResultCache()
        computes = []
        gate = threading.Event()

        def compute():
            computes.append(1)
            gate.wait(2.0)
            return {"r": 42}

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_compute("k", compute))
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert len(computes) == 1
        assert all(r == {"r": 42} for r in results)
        assert cache.stats_snapshot()["single_flight_waits"] >= 1

    def test_leader_failure_lets_a_waiter_recompute(self):
        cache = ResultCache()
        attempts = []
        first_entered = threading.Event()
        release_first = threading.Event()

        def compute():
            attempts.append(threading.current_thread().name)
            if len(attempts) == 1:
                first_entered.set()
                release_first.wait(2.0)
                raise RuntimeError("leader died")
            return {"r": "recovered"}

        outcomes = {}

        def leader():
            try:
                cache.get_or_compute("k", compute)
            except RuntimeError:
                outcomes["leader"] = "raised"

        def waiter():
            outcomes["waiter"] = cache.get_or_compute("k", compute)

        t1 = threading.Thread(target=leader, name="leader")
        t1.start()
        assert first_entered.wait(2.0)
        t2 = threading.Thread(target=waiter, name="waiter")
        t2.start()
        # Give the waiter a moment to park on the in-flight event, then fail
        # the leader: the error must reach only the leader.
        import time

        time.sleep(0.05)
        release_first.set()
        t1.join()
        t2.join()
        assert outcomes["leader"] == "raised"
        assert outcomes["waiter"] == {"r": "recovered"}
        assert len(attempts) == 2


# -- the cached query service --------------------------------------------------


class TestCachedQueryService:
    def test_repeat_query_hits_and_stays_byte_identical(self, server):
        server.add_preference("u1", green())
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        oracle = CachedQueryService(server, None, default_sql=SQL)
        first = cached.query("u1")
        second = cached.query("u1")
        assert first == second == oracle.query("u1")
        stats = cached.stats_snapshot()
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_identical_profiles_share_one_entry(self, server):
        # Same profile, same data, same plan → same digests → same key: the
        # second user's first query is already a hit.  Every key component
        # is a value digest, so the shared entry can never be wrong for
        # either user.
        server.add_preference("u1", green())
        server.add_preference("u2", green())
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        cached.query("u1")
        cached.query("u2")
        stats = cached.stats_snapshot()
        assert stats["entries"] == 1
        assert stats["hits"] == 1

    def test_pref_mutation_invalidates_only_that_user(self, server):
        server.add_preference("u1", green())
        server.add_preference("u2", red())  # distinct profile, distinct key
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        cached.query("u1")
        cached.query("u2")
        server.add_preference("u1", red())
        stats = cached.stats_snapshot()
        assert stats["invalidations"] == 1
        assert stats["entries"] == 1  # u2's entry survived
        oracle = CachedQueryService(server, None, default_sql=SQL)
        assert cached.query("u1") == oracle.query("u1")

    def test_row_insert_invalidates_readers_of_that_table(self, server):
        server.add_preference("u1", green())
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        stale = cached.query("u1")
        server.insert("ITEMS", (5, "lime", "green"))
        fresh = cached.query("u1")
        assert fresh != stale
        oracle = CachedQueryService(server, None, default_sql=SQL)
        assert fresh == oracle.query("u1")

    def test_unserializable_profile_bypasses_but_still_answers(self, server):
        # No WAL on this server, so an opaque CallableScore preference is
        # storable — it just has no stable profile digest to cache under.
        server.add_preference("u1", opaque())
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        oracle = CachedQueryService(server, None, default_sql=SQL)
        assert cached.query("u1") == oracle.query("u1")
        stats = cached.stats_snapshot()
        assert stats["bypasses"] == 1
        assert stats["entries"] == 0

    def test_empty_profile_short_circuits_uncached(self, server):
        cached = CachedQueryService(server, ResultCache(), default_sql=SQL)
        reply = cached.query("nobody")
        assert reply["rows"] == 0
        assert reply["triples"] == []
        assert cached.stats_snapshot()["entries"] == 0
