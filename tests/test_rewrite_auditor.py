"""Rewrite auditor tests: RW001–RW004 on hand-built (before, after) pairs,
plus the optimizer integration — strict mode raising RewriteViolation and
default mode recording diagnostics on the rule's tracer span."""

from __future__ import annotations

import pytest

from repro.analysis_static import RewriteAuditor
from repro.core.preference import Preference
from repro.engine.expressions import TRUE, cmp, eq
from repro.errors import RewriteViolation
from repro.obs import Tracer
from repro.optimizer import PreferenceOptimizer
from repro.plan.nodes import (
    Intersect,
    Join,
    Prefer,
    Project,
    Relation,
    Select,
)

P_YEAR = Preference("p_year", "MOVIES", cmp("year", ">=", 2005), 0.8, 0.9)
P_MID = Preference("p_mid", "MOVIES", eq("m_id", 1), 1.0, 1.0)


def codes(diagnostics):
    return [d.code for d in diagnostics]


@pytest.fixture
def auditor(movie_db):
    return RewriteAuditor(movie_db.catalog)


class TestInvariants:
    def test_introducing_a_verifier_error_is_rw001(self, auditor):
        # A "pushdown" landing the preference on the wrong join input.
        before = Prefer(
            Join(Relation("MOVIES"), Relation("DIRECTORS"), cmp("year", ">", 0)),
            P_YEAR,
        )
        after = Join(
            Relation("MOVIES"),
            Prefer(Relation("DIRECTORS"), P_YEAR),
            cmp("year", ">", 0),
        )
        found = auditor.audit("push_prefers", before, after)
        assert "RW001" in codes(found)
        assert any("PV103" in d.message for d in found if d.code == "RW001")

    def test_changing_output_attributes_is_rw002(self, auditor):
        before = Relation("MOVIES")
        after = Project(Relation("MOVIES"), ["title"])
        found = auditor.audit("push_projections", before, after)
        assert codes(found) == ["RW002"]
        assert "lost" in found[0].message

    def test_column_permutation_is_not_rw002(self, auditor):
        # Join reordering permutes column order; the attribute *set* is the
        # invariant, not the tuple.
        before = Join(Relation("MOVIES"), Relation("DIRECTORS"), cmp("year", ">", 0))
        after = Join(Relation("DIRECTORS"), Relation("MOVIES"), cmp("year", ">", 0))
        assert auditor.audit("match_join_order", before, after) == []

    def test_dropping_a_prefer_is_rw003(self, auditor):
        before = Prefer(Relation("MOVIES"), P_YEAR)
        after = Relation("MOVIES")
        found = auditor.audit("push_prefers", before, after)
        assert codes(found) == ["RW003"]
        assert "p_year" in found[0].message

    def test_duplicating_a_prefer_is_rw003(self, auditor):
        before = Prefer(Relation("MOVIES"), P_YEAR)
        after = Prefer(Prefer(Relation("MOVIES"), P_YEAR), P_YEAR)
        assert codes(auditor.audit("push_prefers", before, after)) == ["RW003"]

    def test_changing_relation_leaves_is_rw004(self, auditor):
        before = Relation("MOVIES")
        after = Intersect(Relation("MOVIES"), Relation("MOVIES"))
        found = auditor.audit("left_deep", before, after)
        assert codes(found) == ["RW004"]

    def test_legal_pushdown_is_clean(self, auditor):
        before = Prefer(Select(Relation("MOVIES"), cmp("year", ">", 2000)), P_YEAR)
        after = Select(Prefer(Relation("MOVIES"), P_YEAR), cmp("year", ">", 2000))
        assert auditor.audit("push_prefers", before, after) == []


def _dropping_rule(plan, catalog):
    """A deliberately broken rewrite: silently drops the top prefer."""
    if isinstance(plan, Prefer):
        return plan.child
    return plan


class TestOptimizerIntegration:
    @pytest.fixture
    def plan(self):
        return Prefer(Relation("MOVIES"), P_MID)

    def test_strict_mode_raises_on_bad_rewrite(self, movie_db, plan, monkeypatch):
        monkeypatch.setattr(
            "repro.optimizer.optimizer.push_prefers", _dropping_rule
        )
        optimizer = PreferenceOptimizer(movie_db.catalog, strict=True)
        with pytest.raises(RewriteViolation) as err:
            optimizer.optimize(plan)
        assert err.value.rule == "push_prefers"
        assert "RW003" in [d.code for d in err.value.diagnostics]

    def test_default_mode_records_on_span_and_counter(
        self, movie_db, plan, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.optimizer.optimizer.push_prefers", _dropping_rule
        )
        optimizer = PreferenceOptimizer(movie_db.catalog)
        tracer = Tracer()
        out = optimizer.optimize(plan, tracer=tracer)
        assert out.preferences() == []  # the bad rewrite went through
        assert tracer.counters.get("optimizer.rewrite_violation", 0) >= 1
        rule_spans = [
            span
            for span in tracer.root.walk()
            if span.name == "optimize.rule" and span.label == "push_prefers"
        ]
        assert rule_spans, "no span recorded for the audited rule"
        recorded = rule_spans[0].attrs.get("diagnostics", [])
        assert any("RW003" in line for line in recorded)

    def test_strict_mode_accepts_sound_rules(self, movie_db):
        plan = Prefer(
            Select(
                Join(Relation("MOVIES"), Relation("DIRECTORS"), cmp("year", ">", 0)),
                cmp("year", ">=", 2005),
            ),
            P_YEAR,
        )
        optimizer = PreferenceOptimizer(movie_db.catalog, strict=True)
        out = optimizer.optimize(plan)
        assert [p.name for p in out.preferences()] == ["p_year"]
