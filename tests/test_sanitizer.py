"""The concurrency sanitizer: lock order, COW discipline, WAL protocol.

Three kinds of evidence:

* **Seeded negatives** — each SAN family has a test that plants the exact
  bug the sanitizer exists for (a lock inversion, a write to a
  snapshot-captured table without forking, an append acknowledged without
  its fsync) and asserts the exact diagnostic code comes out.
* **Clean positives** — the disciplined versions of the same interactions
  (ordered nesting, copy-on-write insert through the Database API, sync
  appends) produce zero findings, so the sanitizer can gate CI without
  crying wolf.
* **Plumbing** — install/use/restore semantics, dedup, the env switch.
"""

from __future__ import annotations

import threading

from repro.analysis_static.sanitizer import (
    NULL_SANITIZER,
    Sanitizer,
    current_sanitizer,
    env_sanitize_enabled,
    use_sanitizer,
)
from repro.serve.rwlock import RWLock
from repro.serve.wal import PreferenceWAL


def codes(sanitizer: Sanitizer) -> list[str]:
    return [finding.code for finding in sanitizer.findings]


# ---------------------------------------------------------------------------
# Lock-order graph (SAN1xx)
# ---------------------------------------------------------------------------


class TestLockOrder:
    def test_clean_nested_acquisition_has_no_findings(self):
        with use_sanitizer() as sanitizer:
            outer, inner = RWLock("outer"), RWLock("inner")
            for _ in range(3):
                with outer.write_locked(), inner.write_locked():
                    pass
        assert sanitizer.findings == []

    def test_lock_inversion_is_san101(self):
        # a→b in one critical section, b→a in a later one: no deadlock
        # happened on this run, but the interleaving that takes both first
        # hops concurrently deadlocks — that is the lockdep argument.
        with use_sanitizer() as sanitizer:
            a, b = RWLock("db.rwlock"), RWLock("server.rwlock")
            with a.write_locked(), b.write_locked():
                pass
            with b.write_locked(), a.write_locked():
                pass
        assert "SAN101" in codes(sanitizer)

    def test_inversion_across_threads_is_san101(self):
        with use_sanitizer() as sanitizer:
            a, b = RWLock("a"), RWLock("b")
            with a.read_locked(), b.read_locked():
                pass

            def inverted():
                with b.read_locked(), a.read_locked():
                    pass

            thread = threading.Thread(target=inverted)
            thread.start()
            thread.join()
        assert "SAN101" in codes(sanitizer)

    def test_reacquisition_is_san102_before_blocking(self):
        # The real acquire would deadlock (the lock is not reentrant), so
        # the test drives the hook the way acquire_write does: the report
        # must come from lock_acquiring — i.e. BEFORE the thread blocks —
        # or the sanitizer would hang right along with the bug.
        with use_sanitizer() as sanitizer:
            lock = RWLock("db.rwlock")
            lock.acquire_write()
            sanitizer.lock_acquiring(lock, "write", lock.name)
            lock.release_write()
        assert "SAN102" in codes(sanitizer)

    def test_release_without_hold_is_san103(self):
        with use_sanitizer() as sanitizer:
            lock = RWLock("orphan")
            sanitizer.lock_released(lock, "write")
        assert codes(sanitizer) == ["SAN103"]

    def test_duplicate_violations_reported_once(self):
        with use_sanitizer() as sanitizer:
            lock = RWLock("orphan")
            sanitizer.lock_released(lock, "write")
            sanitizer.lock_released(lock, "write")
        assert codes(sanitizer) == ["SAN103"]


# ---------------------------------------------------------------------------
# COW snapshot discipline (SAN2xx)
# ---------------------------------------------------------------------------


class TestSnapshotDiscipline:
    def test_cow_insert_through_database_api_is_clean(self, movie_db):
        with use_sanitizer() as sanitizer:
            snapshot = movie_db.snapshot()
            movie_db.insert("MOVIES", (99, "New Movie", 2024, 101, 1))
            assert len(snapshot.catalog.table("MOVIES").rows) == 5
            assert len(movie_db.catalog.table("MOVIES").rows) == 6
        assert sanitizer.findings == []

    def test_write_to_captured_table_is_san201(self, movie_db):
        with use_sanitizer() as sanitizer:
            movie_db.snapshot()
            table = movie_db.catalog.table("MOVIES")
            # Simulate the fork discipline failing: the freeze flag is the
            # first line of defense, so a buggy path that cleared it (or
            # never set it) is exactly what the sanitizer must catch.
            table._frozen = False
            table.insert((99, "Torn Write", 2024, 101, 1))
        assert "SAN201" in codes(sanitizer)

    def test_mutation_of_captured_index_is_san202(self, movie_db_indexed):
        with use_sanitizer() as sanitizer:
            movie_db_indexed.snapshot()
            index = movie_db_indexed.catalog.indexes_on("MOVIES")[0]
            index.add((99, "Torn Index", 2024, 101, 1))
        assert "SAN202" in codes(sanitizer)

    def test_fresh_tables_after_fork_are_not_captured(self, movie_db):
        with use_sanitizer() as sanitizer:
            movie_db.snapshot()
            movie_db.insert("MOVIES", (98, "A", 2020, 90, 1))
            # The first insert forked MOVIES; the live side now owns a
            # fresh table object that later writes may mutate freely.
            movie_db.insert("MOVIES", (99, "B", 2021, 95, 1))
        assert sanitizer.findings == []


# ---------------------------------------------------------------------------
# WAL protocol (SAN3xx)
# ---------------------------------------------------------------------------


class TestWalProtocol:
    def test_sync_appends_are_clean(self, tmp_path):
        with use_sanitizer() as sanitizer:
            wal = PreferenceWAL(str(tmp_path / "clean.wal"), sync=True)
            for index in range(3):
                wal.append("add", {"n": index})
            wal.close()
        assert sanitizer.findings == []

    def test_nosync_appends_are_clean(self, tmp_path):
        with use_sanitizer() as sanitizer:
            wal = PreferenceWAL(str(tmp_path / "nosync.wal"), sync=False)
            wal.append("add", {"n": 0})
            wal.close()
        assert sanitizer.findings == []

    def test_lsn_gap_is_san301(self, tmp_path):
        with use_sanitizer() as sanitizer:
            wal = PreferenceWAL(str(tmp_path / "gap.wal"), sync=True)
            wal.append("add", {"n": 0})
            wal._lsn += 3  # a buggy assignment path skips LSNs
            wal.append("add", {"n": 1})
            wal.close()
        assert "SAN301" in codes(sanitizer)

    def test_lsn_continues_across_reset(self, tmp_path):
        # A checkpoint truncates the log but LSN assignment continues —
        # the sanitizer must treat the post-reset append as contiguous.
        with use_sanitizer() as sanitizer:
            wal = PreferenceWAL(str(tmp_path / "reset.wal"), sync=True)
            wal.append("add", {"n": 0})
            wal.reset()
            record = wal.append("add", {"n": 1})
            wal.close()
        assert record.lsn == 2
        assert sanitizer.findings == []

    def test_skipped_fsync_is_san302(self, tmp_path):
        class BuggyWAL(PreferenceWAL):
            def _fsync(self, handle):
                pass  # "optimized away" the durability point

        with use_sanitizer() as sanitizer:
            wal = BuggyWAL(str(tmp_path / "buggy.wal"), sync=True)
            wal.append("add", {"n": 0})
            wal.close()
        assert "SAN302" in codes(sanitizer)

    def test_overlapping_appends_are_san303(self):
        sanitizer = Sanitizer()
        wal = object()
        sanitizer.wal_append_begin(wal, 1)

        def overlap():
            sanitizer.wal_append_begin(wal, 2)

        thread = threading.Thread(target=overlap)
        thread.start()
        thread.join()
        assert "SAN303" in codes(sanitizer)


# ---------------------------------------------------------------------------
# Installation semantics and chaos integration
# ---------------------------------------------------------------------------


class TestInstallation:
    def test_use_sanitizer_restores_previous(self):
        before = current_sanitizer()
        with use_sanitizer() as sanitizer:
            assert current_sanitizer() is sanitizer
            assert sanitizer.enabled
        assert current_sanitizer() is before

    def test_null_sanitizer_is_disabled_noop(self):
        assert not NULL_SANITIZER.enabled
        NULL_SANITIZER.lock_released(object(), "write")  # must not raise
        assert NULL_SANITIZER.findings == []

    def test_env_switch_parsing(self, monkeypatch):
        for value, expected in (
            ("1", True),
            ("true", True),
            ("YES", True),
            (" on ", True),
            ("0", False),
            ("", False),
            ("off", False),
        ):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert env_sanitize_enabled() is expected
        monkeypatch.delenv("REPRO_SANITIZE")
        assert env_sanitize_enabled() is False

    def test_describe_mentions_findings(self):
        with use_sanitizer() as sanitizer:
            sanitizer.lock_released(RWLock("x"), "read")
        assert "SAN103" in sanitizer.describe()


class TestChaosIntegration:
    def test_chaos_run_with_sanitizer_is_finding_free(self):
        from repro.resilience.chaos import builtin_scenarios, run_chaos

        scenarios = [s for s in builtin_scenarios() if s.name == "transient-io"]
        report = run_chaos(
            seed=7, scale=0.0005, scenarios=scenarios, sanitize=True
        )
        sanitizer_cells = [c for c in report.cells if c.scenario == "sanitizer"]
        assert report.ok and not sanitizer_cells

    def test_chaos_report_carries_sanitizer_findings(self, monkeypatch):
        # Plant a violation inside the run to prove findings become cells.
        from repro.resilience import chaos as chaos_module

        original = chaos_module._run_all_cells

        def sabotaged(report, db, scenarios, strategies, seed):
            current_sanitizer().lock_released(RWLock("planted"), "write")
            original(report, db, scenarios, strategies, seed)

        monkeypatch.setattr(chaos_module, "_run_all_cells", sabotaged)
        report = chaos_module.run_chaos(
            seed=7, scale=0.0005, scenarios=[], sanitize=True
        )
        assert not report.ok
        assert any(
            cell.outcome == "sanitizer:SAN103" for cell in report.failures
        )
