"""Unit tests for schemas and attribute resolution."""

import pytest

from repro.engine.schema import Column, TableSchema, make_schema
from repro.engine.types import DataType
from repro.errors import SchemaError


@pytest.fixture
def movies_schema() -> TableSchema:
    return make_schema(
        "MOVIES",
        [
            ("m_id", DataType.INT),
            ("title", DataType.TEXT),
            ("year", DataType.INT),
            ("d_id", DataType.INT),
        ],
        primary_key=["m_id"],
    )


@pytest.fixture
def directors_schema() -> TableSchema:
    return make_schema(
        "DIRECTORS",
        [("d_id", DataType.INT), ("director", DataType.TEXT)],
        primary_key=["d_id"],
    )


class TestResolution:
    def test_bare_name(self, movies_schema):
        assert movies_schema.index_of("year") == 2

    def test_qualified_name(self, movies_schema):
        assert movies_schema.index_of("MOVIES.year") == 2

    def test_case_insensitive(self, movies_schema):
        assert movies_schema.index_of("YEAR") == 2
        assert movies_schema.index_of("movies.YEAR") == 2

    def test_unknown_raises(self, movies_schema):
        with pytest.raises(SchemaError):
            movies_schema.index_of("genre")

    def test_unknown_qualified_raises(self, movies_schema):
        with pytest.raises(SchemaError):
            movies_schema.index_of("OTHERS.year")

    def test_ambiguous_bare_name(self, movies_schema, directors_schema):
        joined = movies_schema.join(directors_schema)
        with pytest.raises(SchemaError, match="ambiguous"):
            joined.index_of("d_id")

    def test_ambiguity_resolved_by_qualification(self, movies_schema, directors_schema):
        joined = movies_schema.join(directors_schema)
        assert joined.index_of("MOVIES.d_id") == 3
        assert joined.index_of("DIRECTORS.d_id") == 4

    def test_has(self, movies_schema):
        assert movies_schema.has("title")
        assert not movies_schema.has("votes")

    def test_column(self, movies_schema):
        column = movies_schema.column("title")
        assert column.name == "title"
        assert column.dtype is DataType.TEXT


class TestConstruction:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("X", [])

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "X",
                [Column("a", DataType.INT, "X"), Column("a", DataType.INT, "X")],
            )

    def test_reserved_names_rejected(self):
        with pytest.raises(SchemaError, match="reserved"):
            make_schema("X", [("score", DataType.FLOAT)])
        with pytest.raises(SchemaError, match="reserved"):
            make_schema("X", [("conf", DataType.FLOAT)])

    def test_primary_key_validated(self):
        with pytest.raises(SchemaError):
            make_schema("X", [("a", DataType.INT)], primary_key=["b"])


class TestDerivation:
    def test_project_keeps_requested(self, movies_schema):
        projected = movies_schema.project(["title", "year"])
        assert projected.attribute_names == ("MOVIES.title", "MOVIES.year")

    def test_project_keeps_key_only_if_fully_present(self, movies_schema):
        with_key = movies_schema.project(["m_id", "title"])
        assert with_key.primary_key == ("m_id",)
        without_key = movies_schema.project(["title"])
        assert without_key.primary_key == ()

    def test_rename_requalifies(self, movies_schema):
        renamed = movies_schema.rename("M")
        assert renamed.index_of("M.year") == 2
        assert not renamed.has("MOVIES.year")

    def test_join_concatenates(self, movies_schema, directors_schema):
        joined = movies_schema.join(directors_schema)
        assert len(joined) == 6
        assert joined.primary_key == ("MOVIES.m_id", "DIRECTORS.d_id")

    def test_union_compatibility(self, movies_schema, directors_schema):
        assert movies_schema.union_compatible(movies_schema.rename("M"))
        assert not movies_schema.union_compatible(directors_schema)

    def test_equality_and_hash(self, movies_schema):
        clone = make_schema(
            "MOVIES",
            [
                ("m_id", DataType.INT),
                ("title", DataType.TEXT),
                ("year", DataType.INT),
                ("d_id", DataType.INT),
            ],
            primary_key=["m_id"],
        )
        assert clone == movies_schema
        assert hash(clone) == hash(movies_schema)

    def test_primary_key_indexes(self, movies_schema):
        assert movies_schema.primary_key_indexes() == (0,)
