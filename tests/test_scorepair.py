"""Unit tests for score/confidence pairs."""

import pytest

from repro.core.scorepair import BOTTOM, IDENTITY, ScorePair, pair


class TestBasics:
    def test_identity_is_default(self):
        assert IDENTITY.is_default
        assert IDENTITY.is_bottom
        assert IDENTITY.score is BOTTOM
        assert IDENTITY.conf == 0.0

    def test_known_pair(self):
        p = pair(0.8, 0.9)
        assert not p.is_default
        assert not p.is_bottom

    def test_bottom_with_confidence_not_default(self):
        p = ScorePair(None, 0.5)
        assert p.is_bottom and not p.is_default

    def test_zero_score_is_known(self):
        p = pair(0.0, 1.0)
        assert not p.is_bottom

    def test_negative_confidence_rejected(self):
        with pytest.raises(ValueError):
            pair(0.5, -0.1)


class TestApproxEqual:
    def test_exact(self):
        assert pair(0.5, 0.5).approx_equal(pair(0.5, 0.5))

    def test_tolerance(self):
        assert pair(0.5, 0.5).approx_equal(pair(0.5 + 1e-12, 0.5))

    def test_bottom_vs_known(self):
        assert not ScorePair(None, 0.5).approx_equal(pair(0.0, 0.5))

    def test_both_bottom(self):
        assert ScorePair(None, 0.1).approx_equal(ScorePair(None, 0.1))

    def test_conf_differs(self):
        assert not pair(0.5, 0.5).approx_equal(pair(0.5, 0.6))


class TestRepr:
    def test_bottom_renders_as_bottom(self):
        assert "⊥" in repr(IDENTITY)

    def test_values_render(self):
        assert repr(pair(0.5, 1.0)) == "⟨0.5,1⟩"
