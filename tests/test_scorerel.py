"""Unit tests for the physical score-relation machinery (Intermediate)."""

import pytest

from repro.core.preference import Preference
from repro.core.scorepair import IDENTITY, ScorePair
from repro.engine.expressions import TRUE, cmp, eq
from repro.errors import ExecutionError
from repro.pexec import scorerel
from repro.pexec.scorerel import Intermediate


@pytest.fixture
def movies_inter(movie_db):
    return Intermediate.from_table(movie_db.table("MOVIES"))


@pytest.fixture
def directors_inter(movie_db):
    inter = Intermediate.from_table(movie_db.table("DIRECTORS"))
    inter.scores[(1,)] = ScorePair(0.8, 1.0)
    inter.scores[(2,)] = ScorePair(0.9, 0.9)
    return inter


class TestIntermediate:
    def test_from_table_keys_on_pk(self, movies_inter):
        assert movies_inter.key_attrs == ("MOVIES.m_id",)
        assert movies_inter.key_fn()((7, "T", 2000, 100, 1)) == (7,)

    def test_from_rows_defaults_to_full_row(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        inter = Intermediate.from_rows(schema, [(1, "A")])
        assert len(inter.key_attrs) == 2

    def test_key_attr_must_exist(self, movie_db):
        schema = movie_db.table("DIRECTORS").schema
        with pytest.raises(ExecutionError, match="widened"):
            Intermediate(schema, [], ["missing_key"])

    def test_pair_of(self, directors_inter):
        assert directors_inter.pair_of((1, "C. Eastwood")) == ScorePair(0.8, 1.0)
        assert directors_inter.pair_of((3, "O. Stone")) == IDENTITY

    def test_to_prelation(self, directors_inter):
        prel = directors_inter.to_prelation()
        assert len(prel) == 3
        assert prel.pairs[0] == ScorePair(0.8, 1.0)
        assert prel.pairs[2] == IDENTITY


class TestApplyPrefer:
    def test_inserts_and_updates(self, movies_inter):
        p = Preference("p", "MOVIES", cmp("year", ">", 2005), 0.5, 0.6)
        out = scorerel.apply_prefer(movies_inter, p)
        assert len(out.scores) == 3  # 2008, 2010, 2006
        again = scorerel.apply_prefer(out, p)
        assert again.scores[(1,)].conf == pytest.approx(1.2)

    def test_sparse_storage_invariant(self, movies_inter):
        """Only non-default pairs are stored: |R_P| ≤ |R| (§VI)."""
        p = Preference("p", "MOVIES", eq("m_id", 1), 1.0, 1.0)
        out = scorerel.apply_prefer(movies_inter, p)
        assert len(out.scores) == 1
        assert len(out.rows) == 5

    def test_input_not_mutated(self, movies_inter):
        p = Preference("p", "MOVIES", TRUE, 0.5, 0.5)
        scorerel.apply_prefer(movies_inter, p)
        assert movies_inter.scores == {}

    def test_apply_prefer_to_rows_equivalent(self, movies_inter, movie_db):
        p = Preference("p", "MOVIES", cmp("year", ">", 2005), 0.5, 0.6)
        full = scorerel.apply_prefer(movies_inter, p)
        qualifying = [r for r in movie_db.table("MOVIES").rows if r[2] > 2005]
        via_rows = scorerel.apply_prefer_to_rows(movies_inter, p, qualifying)
        assert full.scores == via_rows.scores


class TestFilterAndProject:
    def test_filter_rows_prunes_scores(self, directors_inter):
        out = scorerel.filter_rows(directors_inter, [(1, "C. Eastwood")])
        assert len(out.rows) == 1
        assert set(out.scores) == {(1,)}

    def test_project_keeps_keys(self, directors_inter, movie_db):
        schema = movie_db.table("DIRECTORS").schema.project(["d_id"])
        out = scorerel.project_rows(
            directors_inter, schema, ["d_id"], [(1,), (2,), (3,)]
        )
        assert out.key_attrs == ("DIRECTORS.d_id",)
        assert out.scores == directors_inter.scores

    def test_project_dropping_keys_rejected(self, directors_inter, movie_db):
        schema = movie_db.table("DIRECTORS").schema.project(["director"])
        with pytest.raises(ExecutionError, match="widen"):
            scorerel.project_rows(
                directors_inter, schema, ["director"], [("A",)]
            )


class TestCombineJoin:
    def test_composite_keys_and_pairs(self, movies_inter, directors_inter, movie_db):
        movies_schema = movie_db.table("MOVIES").schema
        directors_schema = movie_db.table("DIRECTORS").schema
        out_schema = movies_schema.join(directors_schema)
        rows = [
            m + d
            for m in movie_db.table("MOVIES").rows
            for d in movie_db.table("DIRECTORS").rows
            if m[4] == d[0]
        ]
        out = scorerel.combine_join(movies_inter, directors_inter, out_schema, rows)
        assert out.key_attrs == ("MOVIES.m_id", "DIRECTORS.d_id")
        assert out.scores[(1, 1)] == ScorePair(0.8, 1.0)
        assert (2, 3) not in out.scores  # Stone has no pair

    def test_empty_score_relations_short_circuit(self, movies_inter, movie_db):
        other = Intermediate.from_table(movie_db.table("DIRECTORS"))
        out_schema = movie_db.table("MOVIES").schema.join(
            movie_db.table("DIRECTORS").schema
        )
        out = scorerel.combine_join(movies_inter, other, out_schema, [])
        assert out.scores == {}


class TestCombineSetop:
    def _inter(self, movie_db, rows, scores):
        schema = movie_db.table("DIRECTORS").schema
        inter = Intermediate.from_rows(schema, rows)
        inter.scores.update(scores)
        return inter

    def test_union_combines_common_rows(self, movie_db):
        a = self._inter(movie_db, [(1, "A"), (2, "B")], {(1, "A"): ScorePair(0.8, 1.0)})
        b = self._inter(movie_db, [(1, "A")], {(1, "A"): ScorePair(0.4, 1.0)})
        rows = [(1, "A"), (2, "B")]
        out = scorerel.combine_setop("union", a, b, rows)
        assert out.scores[(1, "A")].score == pytest.approx(0.6)
        assert (2, "B") not in out.scores

    def test_intersect(self, movie_db):
        a = self._inter(movie_db, [(1, "A")], {(1, "A"): ScorePair(0.8, 1.0)})
        b = self._inter(movie_db, [(1, "A")], {})
        out = scorerel.combine_setop("intersect", a, b, [(1, "A")])
        assert out.scores[(1, "A")] == ScorePair(0.8, 1.0)

    def test_difference_keeps_left(self, movie_db):
        a = self._inter(movie_db, [(1, "A"), (2, "B")], {(2, "B"): ScorePair(0.3, 0.3)})
        b = self._inter(movie_db, [(1, "A")], {(1, "A"): ScorePair(0.9, 0.9)})
        out = scorerel.combine_setop("difference", a, b, [(2, "B")])
        assert out.scores[(2, "B")] == ScorePair(0.3, 0.3)


class TestScoreSelectAndTopK:
    def test_score_select(self, directors_inter):
        out = scorerel.apply_score_select(directors_inter, cmp("conf", ">=", 0.95))
        assert [r[0] for r in out.rows] == [1]

    def test_topk(self, directors_inter):
        out = scorerel.apply_topk(directors_inter, 1, "score")
        assert [r[0] for r in out.rows] == [2]  # Allen: highest score 0.9


class TestMergeEmbedded:
    def test_pairs_resolved_by_name(self, movies_inter, directors_inter, movie_db):
        out_schema = movie_db.table("MOVIES").schema.join(
            movie_db.table("DIRECTORS").schema
        )
        rows = [
            m + d
            for m in movie_db.table("MOVIES").rows
            for d in movie_db.table("DIRECTORS").rows
            if m[4] == d[0]
        ]
        out = scorerel.merge_embedded(
            out_schema, rows, [directors_inter], ["MOVIES.m_id"]
        )
        assert "MOVIES.m_id" in out.key_attrs
        key = out.key_fn()(rows[0])
        assert out.scores  # Eastwood/Allen pairs survived
        # Every scored entry corresponds to an Eastwood or Allen movie.
        d_id_pos = out_schema.index_of("DIRECTORS.d_id")
        scored_rows = [r for r in rows if out.key_fn()(r) in out.scores]
        assert all(r[d_id_pos] in (1, 2) for r in scored_rows)

    def test_no_embedded_means_empty_scores(self, movie_db):
        schema = movie_db.table("MOVIES").schema
        out = scorerel.merge_embedded(schema, list(movie_db.table("MOVIES").rows), [], ["MOVIES.m_id"])
        assert out.scores == {}
        assert out.key_attrs == ("MOVIES.m_id",)
