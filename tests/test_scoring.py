"""Unit tests for scoring functions (the S part of preferences)."""

import pytest

from repro.core.scoring import (
    CallableScore,
    ConstantScore,
    ExprScore,
    around_score,
    rating_score,
    recency_score,
    weighted,
)
from repro.engine.expressions import Arithmetic, Attr, Literal
from repro.engine.schema import make_schema
from repro.engine.types import DataType
from repro.errors import PreferenceError

SCHEMA = make_schema(
    "MOVIES",
    [
        ("m_id", DataType.INT),
        ("year", DataType.INT),
        ("duration", DataType.INT),
        ("rating", DataType.FLOAT),
    ],
    primary_key=["m_id"],
)


class TestConstantScore:
    def test_value(self):
        fn = ConstantScore(0.8).compile(SCHEMA)
        assert fn((1, 2008, 116, 8.1)) == 0.8

    def test_range_validated(self):
        with pytest.raises(PreferenceError):
            ConstantScore(1.5)
        with pytest.raises(PreferenceError):
            ConstantScore(-0.1)

    def test_no_attributes(self):
        assert ConstantScore(0.5).attributes() == set()

    def test_map_attributes_is_noop(self):
        s = ConstantScore(0.5)
        assert s.map_attributes(str.upper) is s


class TestPaperScoringFunctions:
    def test_rating_score(self):
        """S_r(rating) = 0.1 · rating (Section III)."""
        fn = rating_score("rating").compile(SCHEMA)
        assert fn((1, 2008, 116, 8.0)) == pytest.approx(0.8)

    def test_recency_score(self):
        """S_m(year, x) = year / x."""
        fn = recency_score("year", 2011).compile(SCHEMA)
        assert fn((1, 2008, 116, 8.0)) == pytest.approx(2008 / 2011)

    def test_recency_validates_reference(self):
        with pytest.raises(PreferenceError):
            recency_score("year", 0)

    def test_around_score_peaks_at_target(self):
        """S_d(duration, x) = 1 − |duration − x| / x."""
        fn = around_score("duration", 120).compile(SCHEMA)
        assert fn((1, 2008, 120, 8.0)) == pytest.approx(1.0)
        assert fn((1, 2008, 60, 8.0)) == pytest.approx(0.5)
        assert fn((1, 2008, 180, 8.0)) == pytest.approx(0.5)

    def test_around_symmetric(self):
        fn = around_score("duration", 120).compile(SCHEMA)
        assert fn((1, 0, 100, 0.0)) == pytest.approx(fn((1, 0, 140, 0.0)))

    def test_weighted_p5(self):
        """Preference p5: 0.5·S_m(year, 2011) + 0.5·S_d(duration, 120)."""
        score = weighted(
            [(0.5, recency_score("year", 2011)), (0.5, around_score("duration", 120))]
        )
        fn = score.compile(SCHEMA)
        expected = 0.5 * (2008 / 2011) + 0.5 * (1 - 4 / 120)
        assert fn((1, 2008, 116, 8.0)) == pytest.approx(expected)

    def test_weighted_requires_expr_parts(self):
        with pytest.raises(PreferenceError):
            weighted([(1.0, CallableScore(lambda x: x, ["year"]))])

    def test_weighted_empty_rejected(self):
        with pytest.raises(PreferenceError):
            weighted([])


class TestClamping:
    def test_clamps_above_one(self):
        fn = ExprScore(Arithmetic("*", Attr("rating"), Literal(10.0))).compile(SCHEMA)
        assert fn((1, 0, 0, 0.9)) == 1.0

    def test_clamps_below_zero(self):
        fn = ExprScore(Arithmetic("-", Literal(0.0), Attr("rating"))).compile(SCHEMA)
        assert fn((1, 0, 0, 0.9)) == 0.0

    def test_null_becomes_bottom(self):
        fn = rating_score("rating").compile(SCHEMA)
        assert fn((1, 2008, 116, None)) is None

    def test_division_by_zero_becomes_bottom(self):
        fn = ExprScore(Arithmetic("/", Literal(1.0), Attr("rating"))).compile(SCHEMA)
        assert fn((1, 0, 0, 0.0)) is None


class TestCallableScore:
    def test_single_attribute(self):
        score = CallableScore(lambda year: (year - 2000) / 20, ["year"])
        assert score.compile(SCHEMA)((1, 2010, 0, 0.0)) == pytest.approx(0.5)

    def test_multiple_attributes(self):
        score = CallableScore(
            lambda year, duration: 0.5 if year > 2000 and duration < 120 else 0.1,
            ["year", "duration"],
        )
        assert score.compile(SCHEMA)((1, 2005, 100, 0.0)) == 0.5

    def test_clamped(self):
        score = CallableScore(lambda y: 5.0, ["year"])
        assert score.compile(SCHEMA)((1, 2005, 0, 0.0)) == 1.0

    def test_none_result_is_bottom(self):
        score = CallableScore(lambda y: None, ["year"])
        assert score.compile(SCHEMA)((1, 2005, 0, 0.0)) is None

    def test_attrs_required(self):
        with pytest.raises(PreferenceError):
            CallableScore(lambda: 1.0, [])

    def test_attributes_exposed(self):
        score = CallableScore(lambda a, b: 0.0, ["Year", "duration"])
        assert score.attributes() == {"year", "duration"}

    def test_map_attributes(self):
        score = CallableScore(lambda a: 0.0, ["year"])
        mapped = score.map_attributes(lambda n: f"MOVIES.{n}")
        assert mapped.attributes() == {"movies.year"}


class TestEquality:
    def test_expr_scores_equal_by_tree(self):
        assert recency_score("year", 2011) == recency_score("year", 2011)
        assert recency_score("year", 2011) != recency_score("year", 2010)

    def test_constant_equality(self):
        assert ConstantScore(0.5) == ConstantScore(0.5)
        assert ConstantScore(0.5) != ConstantScore(0.6)

    def test_describe(self):
        assert "S_m" in recency_score().describe()
        assert "S_d" in around_score().describe()
        assert "S_r" in rating_score().describe()
