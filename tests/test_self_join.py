"""Self-joins with aliases: schemas, strategies and preferences."""

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import Attr, Comparison, cmp
from repro.errors import SchemaError
from repro.pexec.engine import STRATEGIES, ExecutionEngine
from repro.plan.builder import scan
from repro.plan.nodes import Join, Relation


def same_director(left="MOVIES", right="M2"):
    return Comparison("=", Attr(f"{left}.d_id"), Attr(f"{right}.d_id")) & Comparison(
        "<", Attr(f"{left}.m_id"), Attr(f"{right}.m_id")
    )


class TestSchemas:
    def test_unaliased_self_join_rejected(self, movie_db):
        plan = Join(Relation("MOVIES"), Relation("MOVIES"), same_director("MOVIES", "MOVIES"))
        with pytest.raises(SchemaError, match="duplicate"):
            plan.schema(movie_db.catalog)

    def test_alias_disambiguates(self, movie_db):
        plan = Join(Relation("MOVIES"), Relation("MOVIES", "M2"), same_director())
        schema = plan.schema(movie_db.catalog)
        assert schema.has("MOVIES.title") and schema.has("M2.title")


class TestExecution:
    def test_same_director_pairs(self, movie_db):
        plan = scan("MOVIES").join(scan("MOVIES", "M2"), on=same_director()).build()
        result = ExecutionEngine(movie_db).run(plan, "reference")
        # Eastwood: (1,3); Allen: (4,5) — two pairs.
        assert result.stats.rows == 2
        title = result.relation.schema.index_of("MOVIES.title")
        other = result.relation.schema.index_of("M2.title")
        pairs = {(r[title], r[other]) for r in result.relation.rows}
        assert pairs == {
            ("Gran Torino", "Million Dollar Baby"),
            ("Match Point", "Scoop"),
        }

    def test_all_strategies_agree(self, movie_db):
        plan = scan("MOVIES").join(scan("MOVIES", "M2"), on=same_director()).build()
        engine = ExecutionEngine(movie_db)
        reference = engine.run(plan, "reference")
        for strategy in STRATEGIES:
            result = engine.run(plan, strategy)
            assert result.relation.same_contents(reference.relation), strategy

    def test_preference_on_aliased_occurrence(self, movie_db):
        """A preference with alias-qualified attributes targets one occurrence."""
        p = Preference("pm2", "M2", cmp("M2.year", ">", 2005), 0.8, 0.9)
        plan = (
            scan("MOVIES")
            .join(scan("MOVIES", "M2").prefer(p), on=same_director())
            .build()
        )
        engine = ExecutionEngine(movie_db)
        reference = engine.run(plan, "reference")
        for strategy in STRATEGIES:
            result = engine.run(plan, strategy)
            assert result.relation.same_contents(reference.relation), strategy
        year = reference.relation.schema.index_of("M2.year")
        for row, pair in reference.relation:
            assert (pair.conf > 0) == (row[year] > 2005)

    def test_sql_self_join(self, movie_db):
        from repro.query.session import Session

        session = Session(movie_db)
        rows = session.rows(
            """
            SELECT MOVIES.title, M2.title FROM MOVIES
              JOIN MOVIES AS M2
              ON MOVIES.d_id = M2.d_id AND MOVIES.m_id < M2.m_id
            PREFERRING (M2.year > 2005) SCORE 0.9 CONFIDENCE 0.8 ON M2
            ORDER BY score
            """
        )
        assert len(rows) == 2
        assert rows[0][1] == "Scoop"  # the 2006 sibling scores; 2004 does not
