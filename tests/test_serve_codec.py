"""WAL/checkpoint codec: preferences round-trip through canonical JSON.

Non-loggable preferences (callable scoring, predicate activation) are
rejected with PreferenceError before anything reaches the log; malformed
records coming *out* of the log raise DataCorruption.
"""

from __future__ import annotations

import json

import pytest

from repro import Preference, cmp, eq, recency_score
from repro.core.context import ContextualPreference
from repro.core.scoring import CallableScore
from repro.engine import expressions as ex
from repro.errors import DataCorruption, PreferenceError
from repro.serve.codec import (
    canonical_json,
    expr_from_dict,
    expr_to_dict,
    preference_from_dict,
    preference_to_dict,
)


def round_trip(preference):
    data = preference_to_dict(preference)
    json.dumps(data)  # must be JSON-compatible as-is
    rebuilt = preference_from_dict(data)
    assert canonical_json(preference_to_dict(rebuilt)) == canonical_json(data)
    return rebuilt


def test_plain_preference_round_trip():
    original = Preference("p1", "GENRES", eq("genre", "Comedy"), 0.8, 0.9)
    rebuilt = round_trip(original)
    assert rebuilt.name == "p1"
    assert list(rebuilt.relations) == ["GENRES"]
    assert rebuilt.confidence == 0.9


def test_expr_scoring_round_trip():
    original = Preference(
        "recent", "MOVIES", cmp("year", ">=", 1990), recency_score("year", 2011), 0.7
    )
    rebuilt = round_trip(original)
    assert rebuilt.scoring.describe() == original.scoring.describe()


def test_contextual_mapping_round_trip():
    inner = Preference("ctx", "MOVIES", eq("m_id", 1), 1.0, 1.0)
    original = ContextualPreference(inner, {"mood": "family"})
    rebuilt = round_trip(original)
    assert isinstance(rebuilt, ContextualPreference)
    assert dict(rebuilt.when) == {"mood": "family"}
    assert rebuilt.preference.name == "ctx"


def test_expr_shapes_round_trip():
    shapes = [
        ex.And(eq("genre", "Comedy"), cmp("year", ">", 2000)),
        ex.Or(eq("d_id", 1), eq("d_id", 2)),
        ex.Not(eq("genre", "Horror")),
        ex.InList(ex.Attr("genre"), ["Comedy", "Drama"]),
        ex.Between(ex.Attr("year"), 1990, 2010),
        ex.IsNull(ex.Attr("duration"), False),
    ]
    for expr in shapes:
        data = expr_to_dict(expr)
        assert canonical_json(expr_to_dict(expr_from_dict(data))) == canonical_json(data)


def test_callable_score_is_rejected():
    pref = Preference(
        "bad",
        "MOVIES",
        eq("m_id", 1),
        CallableScore(lambda year: 1.0, ["year"], label="opaque"),
        1.0,
    )
    with pytest.raises(PreferenceError) as excinfo:
        preference_to_dict(pref)
    assert "CallableScore" in str(excinfo.value)


def test_predicate_contextual_is_rejected():
    inner = Preference("ctx", "MOVIES", eq("m_id", 1), 1.0, 1.0)
    pref = ContextualPreference(inner, lambda context: True)
    with pytest.raises(PreferenceError) as excinfo:
        preference_to_dict(pref)
    assert "predicate" in str(excinfo.value)


def test_malformed_records_raise_corruption():
    with pytest.raises(DataCorruption):
        preference_from_dict({"t": "no-such-kind"})
    with pytest.raises(DataCorruption):
        preference_from_dict({"t": "pref", "name": "p"})  # missing fields
    with pytest.raises(DataCorruption):
        expr_from_dict({"t": "cmp", "op": "="})  # missing operands


def test_canonical_json_is_deterministic():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
    assert canonical_json({"a": 2, "b": 1}) == '{"a":2,"b":1}'
