"""ServeExecutor: admission control, load shedding, drain, context hand-off."""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError

import pytest

from repro.errors import Overloaded
from repro.obs import InMemorySink, Tracer, current_tracer, use_tracer
from repro.resilience import QueryGuard, current_guard, use_guard
from repro.serve.executor import LatencyStats, ServeExecutor, percentile


class Blocker:
    """A job that parks on an event until the test releases it."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self):
        self.entered.set()
        assert self.release.wait(timeout=10)
        return "done"


# -- happy path ----------------------------------------------------------------


def test_run_returns_result_and_records_stats():
    with ServeExecutor(workers=2) as executor:
        assert executor.run(lambda a, b: a + b, 2, 3) == 5
        assert executor.run(str.upper, "ok") == "OK"
    assert executor.stats.completed == 2
    assert executor.stats.failed == 0
    assert executor.stats.p50_ms >= 0.0


def test_job_exception_relayed_and_counted():
    with ServeExecutor(workers=1) as executor:
        future = executor.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result(timeout=5)
    assert executor.stats.failed == 1
    assert executor.stats.completed == 0


# -- load shedding -------------------------------------------------------------


def test_queue_full_sheds_with_typed_overloaded():
    blocker = Blocker()
    executor = ServeExecutor(workers=1, queue_limit=0)
    try:
        running = executor.submit(blocker)
        assert blocker.entered.wait(timeout=5)
        with pytest.raises(Overloaded) as excinfo:
            executor.submit(lambda: "rejected")
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.limit == 0
        assert executor.stats.shed == 1
    finally:
        blocker.release.set()
        assert running.result(timeout=5) == "done"
        executor.shutdown()


def test_queue_limit_zero_still_admits_one_per_worker():
    blockers = [Blocker() for _ in range(2)]
    executor = ServeExecutor(workers=2, queue_limit=0)
    try:
        futures = [executor.submit(b) for b in blockers]
        for b in blockers:
            assert b.entered.wait(timeout=5)  # both admitted, both running
    finally:
        for b in blockers:
            b.release.set()
        for f in futures:
            assert f.result(timeout=5) == "done"
        executor.shutdown()


def test_session_limit_caps_one_client_without_starving_others():
    blocker = Blocker()
    executor = ServeExecutor(workers=2, queue_limit=4, session_limit=1)
    try:
        hog = executor.submit(blocker, session="alice")
        assert blocker.entered.wait(timeout=5)
        with pytest.raises(Overloaded) as excinfo:
            executor.submit(lambda: "no", session="alice")
        assert excinfo.value.reason == "session-limit"
        assert excinfo.value.session == "alice"
        # another session is unaffected by alice's cap
        assert executor.run(lambda: "yes", session="bob") == "yes"
    finally:
        blocker.release.set()
        assert hog.result(timeout=5) == "done"
        executor.shutdown()


def test_shutting_down_sheds_new_arrivals():
    executor = ServeExecutor(workers=1)
    executor.shutdown()
    with pytest.raises(Overloaded) as excinfo:
        executor.submit(lambda: "late")
    assert excinfo.value.reason == "shutting-down"


# -- drain and shutdown --------------------------------------------------------


def test_drain_waits_for_admitted_work():
    blocker = Blocker()
    executor = ServeExecutor(workers=1)
    future = executor.submit(blocker)
    assert blocker.entered.wait(timeout=5)
    assert executor.drain(timeout=0.05) is False  # still running
    assert executor.draining
    blocker.release.set()
    assert executor.drain(timeout=5) is True
    assert future.result(timeout=1) == "done"
    assert executor.pending() == 0
    executor.shutdown()


def test_shutdown_without_wait_cancels_queued_jobs():
    blocker = Blocker()
    executor = ServeExecutor(workers=1, queue_limit=4)
    running = executor.submit(blocker)
    assert blocker.entered.wait(timeout=5)
    queued = executor.submit(lambda: "never ran")
    executor_thread = threading.Thread(
        target=executor.shutdown, kwargs={"wait": False}
    )
    executor_thread.start()
    with pytest.raises(CancelledError):
        queued.result(timeout=5)  # cancelled while the worker is still busy
    blocker.release.set()
    executor_thread.join(timeout=10)
    assert running.result(timeout=5) == "done"


# -- ambient context crosses the thread boundary -------------------------------


def test_guard_and_tracer_propagate_into_workers():
    guard = QueryGuard(timeout=60.0)
    tracer = Tracer()

    def observed():
        return current_guard(), current_tracer()

    with ServeExecutor(workers=1) as executor:
        # Without anything installed, the worker sees the no-op defaults.
        bare_guard, bare_tracer = executor.run(observed)
        assert bare_guard is not guard and bare_tracer is not tracer
        # Installed at submit time, the copied context carries both across.
        with use_guard(guard), use_tracer(tracer):
            seen_guard, seen_tracer = executor.run(observed)
        assert seen_guard is guard
        assert seen_tracer is tracer


def test_context_is_per_submission_not_sticky():
    guard = QueryGuard(timeout=60.0)
    with ServeExecutor(workers=1) as executor:
        with use_guard(guard):
            assert executor.run(current_guard) is guard
        assert executor.run(current_guard) is not guard  # later jobs run clean


# -- latency accounting --------------------------------------------------------


def test_percentile_nearest_rank():
    assert percentile([], 0.95) == 0.0
    assert percentile([7.0], 0.5) == 7.0
    samples = [float(n) for n in range(1, 101)]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 1.0) == 100.0
    assert percentile(samples, 0.5) == 51.0  # nearest rank over 100 samples
    assert percentile(samples, 0.95) in samples  # always an observed value


def test_latency_stats_snapshot_and_span():
    stats = LatencyStats()
    for ms in (1.0, 2.0, 3.0, 4.0):
        stats.observe(ms, queue_ms=0.5, ok=True)
    stats.observe(100.0, queue_ms=50.0, ok=False)
    stats.count_shed()
    snap = stats.snapshot()
    assert snap["admitted"] == 5
    assert snap["completed"] == 4
    assert snap["failed"] == 1
    assert snap["shed"] == 1
    assert snap["p99_ms"] == 100.0
    assert snap["queue_p95_ms"] == 50.0

    span = stats.to_span(label="unit")
    assert span.name == "serve.latency"
    data = span.to_dict()
    assert data["attrs"]["p99_ms"] == 100.0
    assert "p50" in stats.describe()


def test_latency_stats_empty_is_all_zeros():
    stats = LatencyStats()
    snap = stats.snapshot()
    assert snap == {
        "admitted": 0, "completed": 0, "failed": 0, "shed": 0,
        "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "queue_p95_ms": 0.0,
    }
    assert stats.p50_ms == stats.p95_ms == stats.p99_ms == 0.0


def test_latency_stats_single_sample_is_every_percentile():
    stats = LatencyStats()
    stats.observe(42.0, queue_ms=3.0, ok=True)
    assert stats.p50_ms == 42.0
    assert stats.p95_ms == 42.0
    assert stats.p99_ms == 42.0
    assert stats.queue_percentile_ms(0.99) == 3.0


def test_latency_stats_ties_at_percentile_boundaries():
    stats = LatencyStats()
    # Heavy ties: the rank that p50/p95 land on must still be a value some
    # request actually experienced, and ties must not skew the ordering.
    for ms in (5.0, 5.0, 5.0, 5.0, 9.0):
        stats.observe(ms, queue_ms=0.0, ok=True)
    assert stats.p50_ms == 5.0
    assert stats.p95_ms == 9.0  # nearest rank lands on the lone outlier
    all_same = LatencyStats()
    for _ in range(10):
        all_same.observe(2.5, queue_ms=2.5, ok=True)
    for fraction in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert all_same.percentile_ms(fraction) == 2.5


def test_retry_after_hint_bounds_and_scaling():
    stats = LatencyStats()
    # No samples yet: the default service-time estimate stands in.
    assert stats.retry_after_hint(backlog=0, workers=1) == pytest.approx(0.05)
    # Tiny service times clamp to the 10ms floor...
    stats.observe(0.001, queue_ms=0.0, ok=True)
    assert stats.retry_after_hint(backlog=0, workers=8) == 0.01
    # ...huge backlogs clamp to the 5s ceiling...
    slow = LatencyStats()
    slow.observe(2_000.0, queue_ms=0.0, ok=True)
    assert slow.retry_after_hint(backlog=100, workers=1) == 5.0
    # ...and in between the hint scales with backlog over workers.
    mid = LatencyStats()
    mid.observe(100.0, queue_ms=0.0, ok=True)
    assert mid.retry_after_hint(backlog=3, workers=2) == pytest.approx(0.2)
    assert mid.retry_after_hint(backlog=3, workers=4) == pytest.approx(0.1)


def test_queue_full_shed_carries_a_retry_after_hint():
    blocker = Blocker()
    executor = ServeExecutor(workers=1, queue_limit=0)
    try:
        running = executor.submit(blocker)
        assert blocker.entered.wait(timeout=5)
        with pytest.raises(Overloaded) as excinfo:
            executor.submit(lambda: "no")
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.retry_after is not None
        assert 0.01 <= excinfo.value.retry_after <= 5.0
    finally:
        blocker.release.set()
        assert running.result(timeout=5) == "done"
        executor.shutdown()


def test_session_limit_shed_carries_a_retry_after_hint():
    blocker = Blocker()
    executor = ServeExecutor(workers=2, queue_limit=4, session_limit=1)
    try:
        hog = executor.submit(blocker, session="alice")
        assert blocker.entered.wait(timeout=5)
        with pytest.raises(Overloaded) as excinfo:
            executor.submit(lambda: "no", session="alice")
        assert excinfo.value.reason == "session-limit"
        assert excinfo.value.retry_after is not None
        assert 0.01 <= excinfo.value.retry_after <= 5.0
    finally:
        blocker.release.set()
        assert hog.result(timeout=5) == "done"
        executor.shutdown()


def test_report_to_writes_serving_telemetry_to_sink():
    sink = InMemorySink()
    with ServeExecutor(workers=2, name="unit") as executor:
        executor.run(lambda: 1)
        executor.run(lambda: 2)
    executor.report_to(sink, meta={"benchmark": "test"})
    assert len(sink) == 1
    meta, span = sink.records[0]
    assert meta["executor"] == "unit"
    assert meta["workers"] == 2
    assert meta["benchmark"] == "test"
    assert span.name == "serve.latency"


# -- constructor guard rails ---------------------------------------------------


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ServeExecutor(workers=0)
    with pytest.raises(ValueError):
        ServeExecutor(workers=1, queue_limit=-1)
    with pytest.raises(ValueError):
        ServeExecutor(workers=1, session_limit=0)
