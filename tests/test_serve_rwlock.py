"""RWLock: shared readers, exclusive writers, writer preference."""

from __future__ import annotations

import threading
import time

from repro.serve.rwlock import RWLock


def test_readers_overlap():
    lock = RWLock()
    inside = threading.Barrier(2, timeout=5)
    done = []

    def reader():
        with lock.read_locked():
            inside.wait()  # both readers hold the lock at the same time
            done.append(True)

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert done == [True, True]


def test_writer_is_exclusive():
    lock = RWLock()
    counter = {"value": 0}

    def writer():
        for _ in range(500):
            with lock.write_locked():
                seen = counter["value"]
                counter["value"] = seen + 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert counter["value"] == 4 * 500  # no lost updates under contention


def test_writer_blocks_readers():
    lock = RWLock()
    lock.acquire_write()
    observed = []

    def reader():
        with lock.read_locked():
            observed.append("read")

    t = threading.Thread(target=reader)
    t.start()
    time.sleep(0.05)
    assert observed == []  # reader waits while the writer holds the lock
    lock.release_write()
    t.join(timeout=5)
    assert observed == ["read"]


def test_waiting_writer_blocks_new_readers():
    """Writer preference: once a writer queues, fresh readers line up behind it."""
    lock = RWLock()
    lock.acquire_read()
    order = []

    def writer():
        lock.acquire_write()
        order.append("write")
        lock.release_write()

    def late_reader():
        with lock.read_locked():
            order.append("read")

    w = threading.Thread(target=writer)
    w.start()
    time.sleep(0.05)  # writer is now waiting on the held read lock
    r = threading.Thread(target=late_reader)
    r.start()
    time.sleep(0.05)
    assert order == []  # the late reader must not sneak past the waiting writer
    lock.release_read()
    w.join(timeout=5)
    r.join(timeout=5)
    assert order[0] == "write"


def test_read_lock_released_on_exception():
    lock = RWLock()
    try:
        with lock.read_locked():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    lock.acquire_write()  # would deadlock if the read side leaked
    lock.release_write()
