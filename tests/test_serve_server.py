"""PreferenceServer: snapshot isolation, durability, crash recovery."""

from __future__ import annotations

import os
import shutil

import pytest

from repro import Preference, eq
from repro.errors import CatalogError, PreferenceError, ReproError
from repro.serve.server import PreferenceServer, state_digest

from .conftest import build_movie_db


def comedy(name: str = "comedy") -> Preference:
    return Preference(name, "GENRES", eq("genre", "Comedy"), 0.8, 0.9)


def drama(name: str = "drama") -> Preference:
    return Preference(name, "DIRECTORS", eq("d_id", 1), 0.9, 0.8)


NEW_MOVIE = (99, "New Release", 2012, 100, 1)


# -- ephemeral: snapshot isolation -------------------------------------------


def test_snapshot_isolated_from_later_writes():
    server = PreferenceServer(build_movie_db())
    server.add_preference("alice", comedy())
    snap = server.snapshot()
    before_rows = len(snap.db.catalog.table("MOVIES").rows)
    before_digest = snap.digest()

    server.insert("MOVIES", NEW_MOVIE)
    server.add_preference("alice", drama())
    server.add_preference("bob", comedy())

    assert len(snap.db.catalog.table("MOVIES").rows) == before_rows
    assert [p.name for p in snap.store.preferences_of("alice")] == ["comedy"]
    assert snap.store.preferences_of("bob") == []
    assert snap.digest() == before_digest  # the snapshot never moves

    live = server.snapshot()
    assert len(live.db.catalog.table("MOVIES").rows) == before_rows + 1
    assert len(live.store.preferences_of("alice")) == 2
    assert live.db_version > snap.db_version
    assert live.store_version > snap.store_version


def test_snapshot_is_read_only():
    server = PreferenceServer(build_movie_db())
    snap = server.snapshot()
    with pytest.raises(CatalogError):
        snap.db.insert("MOVIES", NEW_MOVIE)
    with pytest.raises(PreferenceError):
        snap.store.add("alice", comedy())


def test_snapshot_sessions_answer_from_the_snapshot():
    server = PreferenceServer(build_movie_db())
    server.add_preference("alice", comedy())
    snap = server.snapshot()
    server.insert("MOVIES", NEW_MOVIE)
    server.insert("GENRES", (99, "Comedy"))

    session = snap.session_for("alice")
    result = session.execute(
        "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING comedy"
    )
    titles = {row[0] for row in result.presented().rows}
    assert "New Release" not in titles  # rows born after the snapshot are invisible

    live_result = server.snapshot().session_for("alice").execute(
        "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING comedy"
    )
    assert "New Release" in {row[0] for row in live_result.presented().rows}


def test_ephemeral_server_cannot_checkpoint():
    server = PreferenceServer(build_movie_db())
    with pytest.raises(ReproError):
        server.checkpoint()


# -- durable: WAL + recovery --------------------------------------------------


def test_recovery_replays_wal_onto_checkpoint(tmp_path):
    directory = str(tmp_path / "state")
    server, replay = PreferenceServer.open(directory, initial=build_movie_db())
    assert replay.records == []  # brand-new directory
    server.add_preference("alice", comedy())
    server.add_preference("alice", drama())
    server.remove_preference("alice", "drama")
    server.add_preference("bob", drama())
    server.insert("MOVIES", NEW_MOVIE)
    digest = server.state_digest()
    lsn = server.wal.lsn
    server.close()  # no checkpoint: recovery must come entirely from the WAL

    recovered, replay = PreferenceServer.open(directory)
    assert replay.clean
    assert replay.last_lsn == lsn
    assert recovered.state_digest() == digest
    assert [p.name for p in recovered.store.preferences_of("alice")] == ["comedy"]
    recovered.close()


def test_checkpoint_resets_wal_and_preserves_state(tmp_path):
    directory = str(tmp_path / "state")
    server, _ = PreferenceServer.open(directory, initial=build_movie_db())
    server.add_preference("alice", comedy())
    server.insert("MOVIES", NEW_MOVIE)
    server.checkpoint()
    assert os.path.getsize(os.path.join(directory, "preferences.wal")) == 0
    digest = server.state_digest()
    server.close()

    recovered, replay = PreferenceServer.open(directory)
    assert replay.records == []  # everything came from the checkpoint
    assert recovered.state_digest() == digest
    recovered.close()


def test_replay_is_idempotent_over_checkpoint(tmp_path):
    """Crash between checkpoint-written and WAL-reset: redo must tolerate
    records whose effects the checkpoint already holds."""
    directory = str(tmp_path / "state")
    server, _ = PreferenceServer.open(directory, initial=build_movie_db())
    server.add_preference("alice", comedy())
    server.insert("MOVIES", NEW_MOVIE)
    wal_path = os.path.join(directory, "preferences.wal")
    saved_wal = wal_path + ".saved"
    shutil.copy(wal_path, saved_wal)
    server.checkpoint()
    digest = server.state_digest()
    server.close()
    shutil.copy(saved_wal, wal_path)  # the crash left the old log behind

    recovered, replay = PreferenceServer.open(directory)
    assert len(replay.records) == 2  # both records replayed...
    assert recovered.state_digest() == digest  # ...with no double effects
    recovered.close()


def test_auto_checkpoint_after_n_appends(tmp_path):
    directory = str(tmp_path / "state")
    server, _ = PreferenceServer.open(
        directory, initial=build_movie_db(), auto_checkpoint=3
    )
    for i in range(3):
        server.add_preference("alice", comedy(f"p{i}"))
    assert os.path.getsize(os.path.join(directory, "preferences.wal")) == 0
    server.close()

    recovered, replay = PreferenceServer.open(directory)
    assert replay.records == []
    assert len(recovered.store.preferences_of("alice")) == 3
    recovered.close()


def test_non_loggable_preference_rejected_before_store_or_log(tmp_path):
    from repro.core.scoring import CallableScore

    directory = str(tmp_path / "state")
    server, _ = PreferenceServer.open(directory, initial=build_movie_db())
    digest = server.state_digest()
    lsn = server.wal.lsn
    bad = Preference(
        "bad", "MOVIES", eq("m_id", 1), CallableScore(lambda y: 1.0, ["year"]), 1.0
    )
    with pytest.raises(PreferenceError):
        server.add_preference("alice", bad)
    assert server.wal.lsn == lsn  # nothing hit the log
    assert server.state_digest() == digest  # nothing hit the store
    server.close()


# -- narrowed replay: corruption must not be mistaken for redo -----------------


def append_wal_record(directory: str, op: str, payload: dict) -> None:
    """Hand-forge one valid WAL record, as a crashed-but-durable append would."""
    from repro.serve.wal import PreferenceWAL, scan_wal

    path = os.path.join(directory, "preferences.wal")
    wal = PreferenceWAL(path, sync=False, start_lsn=scan_wal(path).last_lsn)
    wal.append(op, payload)
    wal.close()


def durable_server_dir(tmp_path) -> str:
    directory = str(tmp_path / "state")
    server, _ = PreferenceServer.open(directory, initial=build_movie_db())
    server.insert("MOVIES", NEW_MOVIE)
    server.checkpoint()
    server.close()
    return directory


def test_replay_skips_identical_duplicate_insert(tmp_path):
    directory = durable_server_dir(tmp_path)
    # The record predates the checkpoint that already holds its row: benign.
    append_wal_record(
        directory, "row.insert", {"table": "MOVIES", "values": list(NEW_MOVIE)}
    )
    recovered, replay = PreferenceServer.open(directory)
    assert len(replay.records) == 1
    rows = recovered.snapshot().db.table("MOVIES").rows
    assert sum(1 for row in rows if row[0] == NEW_MOVIE[0]) == 1
    recovered.close()


def test_replay_rejects_conflicting_row_under_same_key(tmp_path):
    from repro.errors import DataCorruption

    directory = durable_server_dir(tmp_path)
    conflicting = (NEW_MOVIE[0], "Different Title", 1990, 80, 2)
    append_wal_record(
        directory, "row.insert", {"table": "MOVIES", "values": list(conflicting)}
    )
    with pytest.raises(DataCorruption) as excinfo:
        PreferenceServer.open(directory)
    assert "conflicts" in str(excinfo.value)


def test_replay_rejects_schema_violating_record(tmp_path):
    from repro.errors import DataCorruption

    directory = durable_server_dir(tmp_path)
    append_wal_record(
        directory, "row.insert", {"table": "MOVIES", "values": [1, 2]}  # wrong arity
    )
    with pytest.raises(DataCorruption) as excinfo:
        PreferenceServer.open(directory)
    assert "schema" in str(excinfo.value) or "fit" in str(excinfo.value)


def test_replay_rejects_unknown_table(tmp_path):
    from repro.errors import DataCorruption

    directory = durable_server_dir(tmp_path)
    append_wal_record(
        directory, "row.insert", {"table": "NO_SUCH", "values": [1]}
    )
    with pytest.raises(DataCorruption):
        PreferenceServer.open(directory)


# -- the digest itself ---------------------------------------------------------


def test_state_digest_tracks_logical_state():
    db_a, db_b = build_movie_db(), build_movie_db()
    server_a = PreferenceServer(db_a)
    server_b = PreferenceServer(db_b)
    assert server_a.state_digest() == server_b.state_digest()

    server_a.add_preference("alice", comedy())
    assert server_a.state_digest() != server_b.state_digest()
    server_b.add_preference("alice", comedy())
    assert server_a.state_digest() == server_b.state_digest()

    server_a.insert("MOVIES", NEW_MOVIE)
    assert server_a.state_digest() != server_b.state_digest()
    server_b.insert("MOVIES", NEW_MOVIE)
    assert server_a.state_digest() == server_b.state_digest()


def test_state_digest_ignores_emptied_users():
    # A user whose last preference was removed digests like an unknown user:
    # recovery never recreates empty entries, so the digest must not see them.
    server_a = PreferenceServer(build_movie_db())
    server_b = PreferenceServer(build_movie_db())
    server_a.add_preference("alice", comedy())
    server_a.remove_preference("alice", "comedy")
    server_a.add_preference("bob", drama())
    server_a.clear_preferences("bob")
    assert server_a.state_digest() == server_b.state_digest()


def test_state_digest_matches_snapshot_digest():
    server = PreferenceServer(build_movie_db())
    server.add_preference("alice", comedy())
    snap = server.snapshot()
    assert snap.digest() == server.state_digest()
    assert state_digest(snap.db, snap.store) == snap.digest()
