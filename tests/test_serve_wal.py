"""Preference WAL: append/scan round-trips and the crash-recovery discipline.

Torn tails (damage confined to the final record) are tolerated and
truncated; anything earlier — a damaged middle line, an LSN gap — raises a
typed DataCorruption naming the file.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import DataCorruption, DurabilityError, PowerCut, WALPoisoned
from repro.resilience.vfs import FaultyVFS, VfsFault, use_vfs
from repro.serve.wal import PreferenceWAL, WalRecord, scan_wal


def wal_path(tmp_path) -> str:
    return os.path.join(str(tmp_path), "preferences.wal")


def write_clean_log(path: str, count: int = 3) -> list[WalRecord]:
    wal = PreferenceWAL(path, sync=False)
    records = [wal.append("pref.add", {"user": "u", "n": i}) for i in range(count)]
    wal.close()
    return records


def test_append_scan_round_trip(tmp_path):
    path = wal_path(tmp_path)
    written = write_clean_log(path, count=5)
    replay = scan_wal(path)
    assert replay.clean
    assert replay.records == written
    assert [r.lsn for r in replay.records] == [1, 2, 3, 4, 5]
    assert replay.last_lsn == 5


def test_missing_file_is_empty_clean_log(tmp_path):
    replay = scan_wal(wal_path(tmp_path))
    assert replay.clean
    assert replay.records == []
    assert replay.last_lsn == 0


def test_open_continues_lsn_assignment(tmp_path):
    path = wal_path(tmp_path)
    write_clean_log(path, count=3)
    wal, replay = PreferenceWAL.open(path, sync=False)
    assert replay.last_lsn == 3
    record = wal.append("pref.remove", {"user": "u", "name": "p"})
    assert record.lsn == 4
    wal.close()
    assert scan_wal(path).last_lsn == 4


def test_unterminated_final_record_is_torn_tail(tmp_path):
    path = wal_path(tmp_path)
    write_clean_log(path, count=3)
    size = os.path.getsize(path)
    with open(path, "ab") as handle:
        handle.write(b"0123456789abcdef {\"lsn\":4,\"op\":\"pref.cl")  # crash mid-append
    replay = scan_wal(path)
    assert not replay.clean
    assert replay.torn_at == size
    assert len(replay.records) == 3
    assert "unterminated" in replay.torn_tail


def test_checksum_damage_on_final_line_is_torn_tail(tmp_path):
    path = wal_path(tmp_path)
    write_clean_log(path, count=3)
    with open(path, "rb") as handle:
        lines = handle.readlines()
    # Flip one byte inside the final record's body, keeping the newline.
    damaged = bytearray(lines[-1])
    damaged[20] ^= 0xFF
    with open(path, "wb") as handle:
        handle.writelines(lines[:-1] + [bytes(damaged)])
    replay = scan_wal(path)
    assert not replay.clean
    assert len(replay.records) == 2
    assert replay.last_lsn == 2


def test_open_truncates_torn_tail(tmp_path):
    path = wal_path(tmp_path)
    write_clean_log(path, count=3)
    clean_size = os.path.getsize(path)
    with open(path, "ab") as handle:
        handle.write(b"garbage with no newline")
    wal, replay = PreferenceWAL.open(path, sync=False)
    assert replay.torn_at == clean_size
    assert os.path.getsize(path) == clean_size  # tail physically removed
    wal.append("pref.add", {"user": "u", "n": 99})  # continues from lsn 3
    wal.close()
    after = scan_wal(path)
    assert after.clean
    assert [r.lsn for r in after.records] == [1, 2, 3, 4]


def test_mid_file_damage_is_corruption(tmp_path):
    path = wal_path(tmp_path)
    write_clean_log(path, count=3)
    with open(path, "rb") as handle:
        lines = handle.readlines()
    damaged = bytearray(lines[1])
    damaged[25] ^= 0xFF
    with open(path, "wb") as handle:
        handle.writelines([lines[0], bytes(damaged), lines[2]])
    with pytest.raises(DataCorruption) as excinfo:
        scan_wal(path)
    assert "mid-file" in str(excinfo.value)


def test_lsn_gap_is_corruption(tmp_path):
    path = wal_path(tmp_path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(WalRecord(1, "pref.add", {"user": "u"}).encode())
        handle.write(WalRecord(3, "pref.add", {"user": "u"}).encode())
        handle.write(WalRecord(4, "pref.add", {"user": "u"}).encode())
    with pytest.raises(DataCorruption) as excinfo:
        scan_wal(path)
    assert "LSN" in str(excinfo.value)


def test_reset_empties_log_but_lsn_continues(tmp_path):
    path = wal_path(tmp_path)
    wal = PreferenceWAL(path, sync=False)
    wal.append("pref.add", {"user": "u"})
    wal.append("pref.add", {"user": "v"})
    wal.reset()
    assert os.path.getsize(path) == 0
    assert scan_wal(path).records == []
    record = wal.append("pref.clear", {"user": "u"})
    assert record.lsn == 3  # LSNs never reuse, even across a checkpoint reset
    wal.close()


class TestFailStop:
    """A failed write/fsync poisons the log: no retries on dropped pages."""

    def test_failed_fsync_poisons_the_log(self, tmp_path):
        path = wal_path(tmp_path)
        wal = PreferenceWAL(path, sync=True)
        # One append is: write (step 0) then fsync (step 1).
        with use_vfs(FaultyVFS(VfsFault(1, "eio-fsync"))):
            with pytest.raises(DurabilityError):
                wal.append("pref.add", {"user": "u"})
        assert wal.poisoned is not None
        assert wal.lsn == 0  # the failed record was never acknowledged
        with pytest.raises(WALPoisoned):
            wal.append("pref.add", {"user": "v"})
        with pytest.raises(WALPoisoned):
            wal.reset()

    def test_power_cut_mid_append_poisons_the_log(self, tmp_path):
        path = wal_path(tmp_path)
        wal = PreferenceWAL(path, sync=True)
        with use_vfs(FaultyVFS(VfsFault(0, "power-cut"))):
            with pytest.raises(PowerCut):
                wal.append("pref.add", {"user": "u"})
        assert wal.poisoned is not None
        with pytest.raises(WALPoisoned):
            wal.append("pref.add", {"user": "v"})

    def test_recovery_is_a_fresh_open(self, tmp_path):
        path = wal_path(tmp_path)
        write_clean_log(path, count=2)
        wal, _ = PreferenceWAL.open(path, sync=True)
        with use_vfs(FaultyVFS(VfsFault(1, "eio-fsync"))):
            with pytest.raises(DurabilityError):
                wal.append("pref.add", {"user": "u"})
        # The poisoned instance stays dead; a fresh open rescans the file,
        # truncates whatever the failed append left, and continues the LSNs.
        reopened, replay = PreferenceWAL.open(path, sync=False)
        assert replay.last_lsn == 2
        assert reopened.append("pref.add", {"user": "u"}).lsn == 3
        reopened.close()

    def test_reset_crash_removes_its_temp_file(self, tmp_path):
        path = wal_path(tmp_path)
        wal = PreferenceWAL(path, sync=False)
        wal.append("pref.add", {"user": "u"})
        # reset is: write-less temp create + fsync (step 0) + replace + dir
        # fsync; fail the temp fsync and the temp must not survive.
        with use_vfs(FaultyVFS(VfsFault(0, "eio-fsync"))):
            with pytest.raises(DurabilityError):
                wal.reset()
        assert [n for n in os.listdir(tmp_path) if n.endswith(".tmp")] == []


def test_record_encoding_is_checksummed_line(tmp_path):
    record = WalRecord(7, "pref.add", {"user": "alice"})
    line = record.encode()
    assert line.endswith("\n")
    checksum, body = line[:-1].split(" ", 1)
    assert len(checksum) == 16
    assert '"lsn":7' in body and '"op":"pref.add"' in body
