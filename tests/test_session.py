"""Integration tests for the Session facade (end-to-end SQL execution)."""

import pytest

from repro.core.preference import Preference
from repro.engine.expressions import eq
from repro.errors import PreferenceError
from repro.query.session import Session


@pytest.fixture
def session(movie_db, example_preferences):
    s = Session(movie_db)
    s.register_all(example_preferences.values())
    return s


class TestRegistry:
    def test_duplicate_registration_rejected(self, session, example_preferences):
        with pytest.raises(PreferenceError):
            session.register(example_preferences["p1"])

    def test_unregister(self, session):
        session.unregister("p1")
        session.register(Preference("p1", "GENRES", eq("genre", "Drama"), 0.1, 0.1))


class TestExecution:
    def test_rows_helper_appends_pair(self, session):
        rows = session.rows(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES "
            "PREFERRING p1 ORDER BY score"
        )
        assert rows[0][0] in ("Match Point", "Scoop")
        assert rows[0][1] == pytest.approx(0.8)
        assert rows[0][2] == pytest.approx(0.9)

    def test_order_by_ranks_best_first(self, session):
        rows = session.rows(
            "SELECT title FROM MOVIES NATURAL JOIN DIRECTORS "
            "PREFERRING p2 ORDER BY conf"
        )
        confs = [row[-1] for row in rows]
        assert confs == sorted(confs, reverse=True)

    def test_top_k(self, session):
        rows = session.rows(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING p1 TOP 2 BY score"
        )
        assert len(rows) == 2

    def test_strategy_override(self, session):
        sql = "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING p1"
        default = session.rows(sql)
        ftp = session.rows(sql, strategy="ftp")
        assert sorted(default, key=repr) == sorted(ftp, key=repr)

    def test_compiled_query_reuse(self, session):
        q = session.compile("SELECT title FROM MOVIES WHERE year >= 2005")
        first = session.execute(q)
        second = session.execute(q)
        assert first.stats.rows == second.stats.rows == 4

    def test_plan_input(self, session):
        from repro.plan.builder import scan

        result = session.execute(scan("MOVIES").build())
        assert result.stats.rows == 5

    def test_example10_confidence_threshold(self, session):
        """Q2: only 'safe' suggestions reflecting enough preferences."""
        rows = session.rows(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES NATURAL JOIN DIRECTORS "
            "WHERE conf >= 1.5 PREFERRING p1, p2"
        )
        assert rows == []  # no movie matches both p1 and p2 in the example db

    def test_example10_lower_threshold(self, session):
        rows = session.rows(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES NATURAL JOIN DIRECTORS "
            "WHERE conf >= 0.8 PREFERRING p1, p2"
        )
        titles = {r[0] for r in rows}
        # Comedies (p1, conf .9) and Eastwood movies (p2, conf .8).
        assert titles == {"Match Point", "Scoop", "Gran Torino", "Million Dollar Baby"}

    def test_blending_example11_shape(self, session):
        """Q3-style union of personal and social suggestions."""
        sql = (
            "SELECT title, MOVIES.m_id FROM MOVIES NATURAL JOIN DIRECTORS "
            "WHERE conf > 0 PREFERRING p2 "
            "UNION "
            "SELECT title, MOVIES.m_id FROM MOVIES NATURAL JOIN DIRECTORS "
            "WHERE score > 0 PREFERRING p4"
        )
        rows = session.rows(sql)
        titles = {r[0] for r in rows}
        assert "Gran Torino" in titles       # Eastwood (p2)
        assert {"Match Point", "Scoop"} <= titles  # Allen (p4)
