"""Unit tests for the SQL dialect tokenizer."""

import pytest

from repro.errors import ParseError
from repro.query.sql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT from WhErE") == [
            ("keyword", "select"),
            ("keyword", "from"),
            ("keyword", "where"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("MOVIES title_2")[0] == ("name", "MOVIES")
        assert kinds("MOVIES title_2")[1] == ("name", "title_2")

    def test_numbers(self):
        assert kinds("42 3.14 .5") == [
            ("number", "42"),
            ("number", "3.14"),
            ("number", ".5"),
        ]

    def test_qualified_name_not_a_float(self):
        assert kinds("t.a") == [("name", "t"), ("symbol", "."), ("name", "a")]

    def test_strings(self):
        assert kinds("'Comedy'") == [("string", "Comedy")]

    def test_string_with_escaped_quote(self):
        assert kinds("'O''Brien'") == [("string", "O'Brien")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")

    def test_symbols(self):
        assert kinds("<= >= != <> = < >") == [
            ("symbol", "<="),
            ("symbol", ">="),
            ("symbol", "!="),
            ("symbol", "!="),  # <> normalized
            ("symbol", "="),
            ("symbol", "<"),
            ("symbol", ">"),
        ]

    def test_arithmetic_symbols(self):
        assert [k for k, _ in kinds("a + b * c / d - e")] == [
            "name", "symbol", "name", "symbol", "name", "symbol", "name", "symbol", "name",
        ]

    def test_comments_skipped(self):
        assert kinds("SELECT -- a comment\n title") == [
            ("keyword", "select"),
            ("name", "title"),
        ]

    def test_line_and_column_tracked(self):
        tokens = tokenize("select\n  title")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("select @")

    def test_eof_token(self):
        assert tokenize("x")[-1].kind == "eof"
