"""Unit tests for the SQL dialect parser."""

import pytest

from repro.engine.expressions import And, Arithmetic, Attr, Between, Comparison, InList
from repro.errors import ParseError
from repro.query.sql.ast import InlinePreference, SelectBlock, SetStatement
from repro.query.sql.parser import parse


class TestSelectList:
    def test_star(self):
        block = parse("SELECT * FROM MOVIES")
        assert block.attrs == ()

    def test_attrs(self):
        block = parse("SELECT title, MOVIES.year FROM MOVIES")
        assert block.attrs == ("title", "MOVIES.year")


class TestFrom:
    def test_single_table(self):
        block = parse("SELECT * FROM MOVIES")
        assert block.tables[0].name == "MOVIES"

    def test_alias(self):
        block = parse("SELECT * FROM MOVIES AS M")
        assert block.tables[0].alias == "M"

    def test_implicit_alias(self):
        block = parse("SELECT * FROM MOVIES M")
        assert block.tables[0].alias == "M"

    def test_join_on(self):
        block = parse(
            "SELECT * FROM MOVIES JOIN DIRECTORS ON MOVIES.d_id = DIRECTORS.d_id"
        )
        ref = block.tables[1]
        assert ref.name == "DIRECTORS"
        assert isinstance(ref.join_condition, Comparison)

    def test_natural_join(self):
        block = parse("SELECT * FROM MOVIES NATURAL JOIN DIRECTORS")
        assert block.tables[1].natural

    def test_comma_cross(self):
        block = parse("SELECT * FROM MOVIES, DIRECTORS")
        assert block.tables[1].join_condition is None
        assert not block.tables[1].natural


class TestWhere:
    def test_comparison(self):
        block = parse("SELECT * FROM MOVIES WHERE year >= 2005")
        assert isinstance(block.where, Comparison)
        assert block.where.op == ">="

    def test_boolean_precedence(self):
        block = parse("SELECT * FROM MOVIES WHERE a = 1 OR b = 2 AND c = 3")
        from repro.engine.expressions import Or

        assert isinstance(block.where, Or)  # AND binds tighter

    def test_parentheses(self):
        block = parse("SELECT * FROM MOVIES WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(block.where, And)

    def test_in_list(self):
        block = parse("SELECT * FROM G WHERE genre IN ('Comedy', 'Drama')")
        assert isinstance(block.where, InList)
        assert block.where.values == frozenset({"Comedy", "Drama"})

    def test_between(self):
        block = parse("SELECT * FROM M WHERE year BETWEEN 2000 AND 2010")
        assert isinstance(block.where, Between)

    def test_is_null(self):
        block = parse("SELECT * FROM M WHERE d_id IS NULL")
        from repro.engine.expressions import IsNull

        assert isinstance(block.where, IsNull)

    def test_is_not_null(self):
        block = parse("SELECT * FROM M WHERE d_id IS NOT NULL")
        assert block.where.negated

    def test_not(self):
        block = parse("SELECT * FROM M WHERE NOT year = 2005")
        from repro.engine.expressions import Not

        assert isinstance(block.where, Not)

    def test_arithmetic_in_comparison(self):
        block = parse("SELECT * FROM M WHERE year + 1 > 2005")
        assert isinstance(block.where.left, Arithmetic)

    def test_unary_minus(self):
        block = parse("SELECT * FROM M WHERE x > -5")
        assert isinstance(block.where.right, Arithmetic)

    def test_score_pseudo_attribute(self):
        block = parse("SELECT * FROM M WHERE score >= 0.5 AND conf > 0")
        assert block.where.references_score()

    def test_confidence_keyword_maps_to_conf(self):
        block = parse("SELECT * FROM M WHERE confidence > 0.5")
        assert "conf" in block.where.attributes()


class TestPreferring:
    def test_named_preferences(self):
        block = parse("SELECT * FROM M PREFERRING p1, p2")
        assert block.preferring == ("p1", "p2")

    def test_inline_preference(self):
        block = parse(
            "SELECT * FROM G PREFERRING (genre = 'Comedy') SCORE 0.8 CONFIDENCE 0.9 ON GENRES"
        )
        (pref,) = block.preferring
        assert isinstance(pref, InlinePreference)
        assert pref.confidence == 0.9
        assert pref.relations == ("GENRES",)

    def test_inline_score_expression(self):
        block = parse("SELECT * FROM M PREFERRING (year > 2000) SCORE year / 2011")
        (pref,) = block.preferring
        assert isinstance(pref.score_expr, Arithmetic)

    def test_inline_default_confidence(self):
        block = parse("SELECT * FROM M PREFERRING (x = 1) SCORE 0.5")
        assert block.preferring[0].confidence == 1.0

    def test_inline_multi_relation_on(self):
        block = parse(
            "SELECT * FROM M PREFERRING (x = 1) SCORE 0.5 ON MOVIES DIRECTORS, p2"
        )
        assert block.preferring[0].relations == ("MOVIES", "DIRECTORS")
        assert block.preferring[1] == "p2"

    def test_mixed_named_and_inline(self):
        block = parse("SELECT * FROM M PREFERRING p1, (x = 1) SCORE 0.5, p2")
        assert len(block.preferring) == 3


class TestSuffixes:
    def test_top_by_score(self):
        block = parse("SELECT * FROM M TOP 10 BY score")
        assert block.top_k == 10 and block.top_by == "score"

    def test_top_by_conf(self):
        block = parse("SELECT * FROM M TOP 5 BY conf")
        assert block.top_by == "conf"

    def test_top_by_confidence_keyword(self):
        block = parse("SELECT * FROM M TOP 5 BY confidence")
        assert block.top_by == "conf"

    def test_order_by(self):
        block = parse("SELECT * FROM M ORDER BY score DESC")
        assert block.order_by == "score"

    def test_order_by_invalid_attr(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM M ORDER BY title")


class TestSetStatements:
    def test_union(self):
        stmt = parse("SELECT * FROM A UNION SELECT * FROM B")
        assert isinstance(stmt, SetStatement)
        assert stmt.op == "union"

    def test_left_associative_chain(self):
        stmt = parse("SELECT * FROM A UNION SELECT * FROM B EXCEPT SELECT * FROM C")
        assert stmt.op == "except"
        assert isinstance(stmt.left, SetStatement)

    def test_intersect(self):
        stmt = parse("SELECT * FROM A INTERSECT SELECT * FROM B")
        assert stmt.op == "intersect"


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT title")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT * FROM M extra stuff ,")

    def test_bad_preference_entry(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM M PREFERRING 42")

    def test_error_carries_location(self):
        try:
            parse("SELECT *\nFROM")
        except ParseError as err:
            assert err.line == 2
        else:  # pragma: no cover
            raise AssertionError("expected a ParseError")
