"""Unit tests for statistics and selectivity estimation."""

import pytest

from repro.engine.expressions import And, Between, InList, IsNull, Not, Or, cmp, col, eq, lit
from repro.engine.schema import make_schema
from repro.engine.stats import (
    DEFAULT_SELECTIVITY,
    analyze_table,
    estimate_selectivity,
)
from repro.engine.table import Table
from repro.engine.types import DataType


@pytest.fixture
def table() -> Table:
    schema = make_schema(
        "T",
        [("id", DataType.INT), ("v", DataType.INT), ("g", DataType.TEXT)],
        primary_key=["id"],
    )
    t = Table(schema)
    # v is uniform 0..99 over 1000 rows; g is skewed: 'hot' 50%, rest spread.
    rows = []
    for i in range(1000):
        g = "hot" if i % 2 == 0 else f"g{i % 20}"
        rows.append((i, i % 100, g))
    t.insert_many(rows)
    return t


@pytest.fixture
def stats(table):
    return analyze_table(table)


class TestColumnStats:
    def test_row_and_distinct_counts(self, stats):
        assert stats.n_rows == 1000
        assert stats.column("v").n_distinct == 100
        assert stats.column("id").n_distinct == 1000

    def test_min_max(self, stats):
        v = stats.column("v")
        assert v.min_value == 0 and v.max_value == 99

    def test_mcv_catches_skew(self, stats):
        g = stats.column("g")
        assert "hot" in g.mcv
        assert g.mcv["hot"] == pytest.approx(0.5)

    def test_histogram_built_for_numeric(self, stats):
        assert stats.column("v").histogram is not None
        assert stats.column("g").histogram is None

    def test_null_fraction(self):
        schema = make_schema("N", [("x", DataType.INT)])
        t = Table(schema)
        t.insert_many([(1,), (None,), (None,), (4,)])
        s = analyze_table(t)
        assert s.column("x").null_fraction == pytest.approx(0.5)

    def test_missing_column_is_none(self, stats):
        assert stats.column("nope") is None


class TestSelectivity:
    def test_equality_mcv(self, table, stats):
        s = estimate_selectivity(eq("g", "hot"), table.schema, stats)
        assert s == pytest.approx(0.5)

    def test_equality_uniform(self, table, stats):
        s = estimate_selectivity(eq("v", 17), table.schema, stats)
        assert s == pytest.approx(0.01, rel=0.5)

    def test_equality_null_value(self, table, stats):
        assert estimate_selectivity(eq("v", None), table.schema, stats) == 0.0

    def test_range(self, table, stats):
        s = estimate_selectivity(cmp("v", "<", 50), table.schema, stats)
        assert 0.35 <= s <= 0.65

    def test_range_extremes(self, table, stats):
        assert estimate_selectivity(cmp("v", "<", -5), table.schema, stats) == 0.0
        assert estimate_selectivity(cmp("v", ">=", -5), table.schema, stats) == pytest.approx(1.0)

    def test_and_multiplies(self, table, stats):
        single = estimate_selectivity(eq("g", "hot"), table.schema, stats)
        double = estimate_selectivity(
            And(eq("g", "hot"), cmp("v", "<", 50)), table.schema, stats
        )
        assert double < single

    def test_or_inclusion_exclusion(self, table, stats):
        s = estimate_selectivity(
            Or(eq("g", "hot"), eq("g", "hot")), table.schema, stats
        )
        assert s == pytest.approx(0.75)  # independence assumption

    def test_not(self, table, stats):
        s = estimate_selectivity(Not(eq("g", "hot")), table.schema, stats)
        assert s == pytest.approx(0.5)

    def test_in_list_sums(self, table, stats):
        one = estimate_selectivity(eq("v", 1), table.schema, stats)
        three = estimate_selectivity(InList(col("v"), [1, 2, 3]), table.schema, stats)
        assert three == pytest.approx(3 * one, rel=0.01)

    def test_between(self, table, stats):
        s = estimate_selectivity(Between(col("v"), 25, 74), table.schema, stats)
        assert 0.35 <= s <= 0.65

    def test_is_null(self, table, stats):
        assert estimate_selectivity(IsNull(col("v")), table.schema, stats) == 0.0
        assert estimate_selectivity(
            IsNull(col("v"), negated=True), table.schema, stats
        ) == pytest.approx(1.0)

    def test_literal_conditions(self, table, stats):
        assert estimate_selectivity(lit(True), table.schema, stats) == 1.0
        assert estimate_selectivity(lit(False), table.schema, stats) == 0.0

    def test_unknown_attr_defaults(self, table, stats):
        s = estimate_selectivity(eq("nonexistent", 1), table.schema, None)
        assert s == DEFAULT_SELECTIVITY

    def test_without_stats_defaults(self, table):
        s = estimate_selectivity(eq("v", 1), table.schema, None)
        assert s == DEFAULT_SELECTIVITY
