"""Tests for the per-user preference store."""

import pytest

from repro.core.context import ContextualPreference
from repro.core.preference import Preference
from repro.engine.expressions import eq
from repro.errors import PreferenceError
from repro.query.store import PreferenceStore


@pytest.fixture
def store(movie_db, example_preferences):
    s = PreferenceStore(movie_db)
    s.add_all("alice", [example_preferences["p1"], example_preferences["p2"]])
    s.add_all("bob", [example_preferences["p4"], example_preferences["p5"]])
    return s


class TestBookkeeping:
    def test_users(self, store):
        assert store.users() == ["alice", "bob"]

    def test_preferences_of(self, store):
        assert {p.name for p in store.preferences_of("alice")} == {"p1", "p2"}
        assert store.preferences_of("nobody") == []

    def test_duplicate_name_rejected(self, store, example_preferences):
        with pytest.raises(PreferenceError):
            store.add("alice", example_preferences["p1"])

    def test_same_name_for_other_user_ok(self, store, example_preferences):
        store.add("carol", example_preferences["p1"])
        assert len(store.preferences_of("carol")) == 1

    def test_remove(self, store):
        assert store.remove("alice", "P1") is True
        assert {p.name for p in store.preferences_of("alice")} == {"p2"}

    def test_remove_reports_misses(self, store):
        assert store.remove("alice", "no-such-preference") is False
        assert store.remove("nobody", "p1") is False
        assert {p.name for p in store.preferences_of("alice")} == {"p1", "p2"}

    def test_remove_is_idempotent(self, store):
        assert store.remove("alice", "p1") is True
        assert store.remove("alice", "p1") is False

    def test_clear_drops_all_and_counts(self, store):
        assert store.clear("alice") == 2
        assert store.preferences_of("alice") == []
        assert store.users() == ["bob"]

    def test_clear_unknown_user_is_zero(self, store):
        assert store.clear("nobody") == 0

    def test_add_after_clear(self, store, example_preferences):
        store.clear("alice")
        store.add("alice", example_preferences["p1"])
        assert {p.name for p in store.preferences_of("alice")} == {"p1"}


class TestSessions:
    def test_session_for_registers_preferences(self, store):
        session = store.session_for("alice")
        rows = session.rows(
            "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING p1 TOP 2 BY score"
        )
        assert len(rows) == 2

    def test_session_with_context(self, store, movie_db, example_preferences):
        store.add(
            "dave",
            ContextualPreference(
                Preference("night", "GENRES", eq("genre", "Comedy"), 0.9, 0.9),
                {"daytime": "night"},
            ),
        )
        day = store.session_for("dave", context={"daytime": "noon"})
        night = store.session_for("dave", context={"daytime": "night"})
        sql = "SELECT title FROM MOVIES NATURAL JOIN GENRES WHERE conf > 0 PREFERRING night"
        assert day.rows(sql) == []
        assert len(night.rows(sql)) == 2

    def test_blended_session_example11(self, store):
        """Alice's preferences enriched with Bob's (Q3 flavour)."""
        session = store.blended_session(["alice", "bob"])
        assert {"p1", "p2", "p4", "p5"} <= set(session.preferences)
        rows = session.rows(
            "SELECT title FROM MOVIES NATURAL JOIN DIRECTORS "
            "WHERE conf > 0 PREFERRING p2, p4, p5 ORDER BY score"
        )
        titles = [r[0] for r in rows]
        assert "Gran Torino" in titles
        assert {"Match Point", "Scoop"} <= set(titles)

    def test_blending_disambiguates_clashes(self, store, example_preferences):
        store.add("carol", example_preferences["p1"])  # clashes with alice's p1
        session = store.blended_session(["alice", "carol"])
        assert "p1" in session.preferences
        assert "carol.p1" in session.preferences

    def test_blending_renames_contextual_wrappers(self, store, movie_db):
        inner = Preference("cp", "GENRES", eq("genre", "Drama"), 0.5, 0.5)
        store.add("alice", ContextualPreference(inner, {"x": 1}))
        store.add("bob", ContextualPreference(inner, {"x": 2}))
        session = store.blended_session(["alice", "bob"])
        assert "cp" in session.preferences
        assert "bob.cp" in session.preferences
