"""Cross-strategy equivalence: every execution strategy vs the reference oracle.

This is the library's central correctness suite: for a spectrum of plan
shapes (SPJ with prefers anywhere, filters, set operations, membership and
multi-relational preferences) each strategy must return exactly the
p-relation the reference evaluator computes.
"""

import pytest

from repro.core.aggregates import F_MAX
from repro.core.preference import Preference
from repro.core.scoring import rating_score, recency_score
from repro.engine.expressions import TRUE, cmp, eq
from repro.pexec.engine import STRATEGIES, ExecutionEngine
from repro.plan.builder import scan

PHYSICAL = [s for s in STRATEGIES if s != "reference"]


def check_all(db, plan, aggregate=None):
    engine = ExecutionEngine(db) if aggregate is None else ExecutionEngine(db, aggregate)
    reference = engine.run(plan, "reference")
    for strategy in PHYSICAL:
        result = engine.run(plan, strategy)
        assert result.relation.same_contents(reference.relation), (
            f"{strategy} diverges from the reference on {plan!r}"
        )
    return reference


@pytest.fixture
def p(example_preferences):
    return example_preferences


class TestSingleRelation:
    def test_prefer_only(self, movie_db, p):
        check_all(movie_db, scan("GENRES").prefer(p["p1"]).build())

    def test_prefer_after_select(self, movie_db, p):
        plan = scan("GENRES").select(eq("genre", "Comedy")).prefer(p["p1"]).build()
        check_all(movie_db, plan)

    def test_select_after_prefer(self, movie_db, p):
        plan = scan("GENRES").prefer(p["p1"]).select(cmp("m_id", ">", 2)).build()
        check_all(movie_db, plan)

    def test_projection(self, movie_db, p):
        plan = scan("GENRES").prefer(p["p1"]).project(["genre"]).build()
        check_all(movie_db, plan)

    def test_topk_by_score(self, movie_db, p):
        plan = scan("GENRES").prefer(p["p1"]).top(2, by="score").build()
        result = check_all(movie_db, plan)
        assert result.stats.rows == 2

    def test_topk_by_conf(self, movie_db, p):
        plan = scan("GENRES").prefer(p["p1"]).top(3, by="conf").build()
        check_all(movie_db, plan)

    def test_conf_threshold(self, movie_db, p):
        plan = scan("GENRES").prefer(p["p1"]).select(cmp("conf", ">=", 0.5)).build()
        result = check_all(movie_db, plan)
        assert result.stats.rows == 2

    def test_preference_chain(self, movie_db, p):
        chain = [
            p["p1"],
            Preference("drama", "GENRES", eq("genre", "Drama"), 0.3, 0.4),
            Preference("m4", "GENRES", eq("m_id", 4), 1.0, 1.0),
        ]
        plan = scan("GENRES").prefer_all(chain).build()
        check_all(movie_db, plan)

    def test_no_preferences_at_all(self, movie_db):
        plan = scan("MOVIES").select(cmp("year", ">", 2005)).project(["title"]).build()
        result = check_all(movie_db, plan)
        assert result.stats.rows == 3


class TestJoins:
    def test_prefer_below_join(self, movie_db, p):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS").prefer(p["p2"]), movie_db.catalog)
            .build()
        )
        check_all(movie_db, plan)

    def test_prefer_above_join(self, movie_db, p):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), movie_db.catalog)
            .prefer(p["p2"])
            .build()
        )
        check_all(movie_db, plan)

    def test_prefers_on_both_sides(self, movie_db, p):
        pm = Preference("pm", "MOVIES", cmp("year", ">", 2005), recency_score("year", 2011), 0.7)
        plan = (
            scan("MOVIES").prefer(pm)
            .natural_join(scan("DIRECTORS").prefer(p["p2"]), movie_db.catalog)
            .build()
        )
        check_all(movie_db, plan)

    def test_fan_out_join(self, movie_db, p):
        # GENRES fans out movies (movie 4 has two genres).
        plan = (
            scan("MOVIES")
            .natural_join(scan("GENRES").prefer(p["p1"]), movie_db.catalog)
            .build()
        )
        check_all(movie_db, plan)

    def test_three_way_join_q1_shape(self, movie_db, p):
        """The paper's Q1 (Example 9)."""
        plan = (
            scan("MOVIES")
            .select(cmp("year", ">=", 2005))
            .natural_join(scan("GENRES").prefer(p["p1"]), movie_db.catalog)
            .natural_join(scan("DIRECTORS").prefer(p["p2"]), movie_db.catalog)
            .natural_join(scan("CAST"), movie_db.catalog)
            .natural_join(scan("ACTORS").prefer(p["p3"]), movie_db.catalog)
            .project(["title", "director"])
            .top(3, by="score")
            .build()
        )
        check_all(movie_db, plan)

    def test_q2_confidence_threshold(self, movie_db, p):
        """The paper's Q2 (Example 10)."""
        plan = (
            scan("MOVIES")
            .select(cmp("year", ">=", 2005))
            .natural_join(scan("GENRES").prefer(p["p1"]), movie_db.catalog)
            .natural_join(scan("DIRECTORS").prefer(p["p2"]), movie_db.catalog)
            .project(["title", "director"])
            .select(cmp("conf", ">=", 0.8))
            .build()
        )
        check_all(movie_db, plan)

    def test_multi_relational_preference(self, movie_db):
        p6 = Preference(
            "p6", ("MOVIES", "GENRES"), eq("genre", "Drama"), recency_score("year", 2011), 0.8
        )
        plan = (
            scan("MOVIES")
            .natural_join(scan("GENRES"), movie_db.catalog)
            .prefer(p6)
            .build()
        )
        check_all(movie_db, plan)

    def test_membership_preference(self, movie_db):
        from repro.engine.expressions import Attr, Comparison

        p7 = Preference.membership(("MOVIES", "AWARDS"), 1.0, 0.9, name="p7")
        plan = (
            scan("MOVIES")
            .join(
                scan("AWARDS"),
                on=Comparison("=", Attr("MOVIES.m_id"), Attr("AWARDS.m_id")),
            )
            .prefer(p7)
            .build()
        )
        check_all(movie_db, plan)


class TestSetOperations:
    def _recent(self, db, p):
        return (
            scan("MOVIES")
            .select(cmp("year", ">=", 2005))
            .prefer(p)
            .project(["title", "MOVIES.m_id"])
        )

    def _long(self, db, p):
        return (
            scan("MOVIES")
            .select(cmp("duration", ">=", 120))
            .prefer(p)
            .project(["title", "MOVIES.m_id"])
        )

    @pytest.fixture
    def pm(self):
        return Preference("pm", "MOVIES", cmp("year", ">", 2006), 0.9, 0.6)

    @pytest.fixture
    def pd(self):
        return Preference("pd", "MOVIES", cmp("duration", ">", 125), 0.4, 0.8)

    def test_union_of_preferred_branches(self, movie_db, pm, pd):
        plan = self._recent(movie_db, pm).union(self._long(movie_db, pd)).build()
        check_all(movie_db, plan)

    def test_intersect(self, movie_db, pm, pd):
        plan = self._recent(movie_db, pm).intersect(self._long(movie_db, pd)).build()
        check_all(movie_db, plan)

    def test_difference(self, movie_db, pm, pd):
        plan = self._recent(movie_db, pm).difference(self._long(movie_db, pd)).build()
        check_all(movie_db, plan)

    def test_q3_shape_blending(self, movie_db, pm, pd):
        """The paper's Q3 (Example 11): filters between set-op branches."""
        left = self._recent(movie_db, pm).select(cmp("conf", ">", 0.0))
        right = self._long(movie_db, pd).select(cmp("score", ">", 0.0))
        plan = left.union(right).top(4, by="score").build()
        check_all(movie_db, plan)

    def test_prefer_above_union(self, movie_db, pm):
        pt = Preference("pt", "MOVIES", cmp("m_id", "<=", 3), 0.5, 0.5)
        left = self._recent(movie_db, pm)
        right = self._long(movie_db, pm)
        plan = left.union(right).prefer(pt).build()
        check_all(movie_db, plan)


class TestAggregates:
    def test_f_max_everywhere(self, movie_db, p):
        plan = (
            scan("MOVIES")
            .natural_join(scan("GENRES").prefer(p["p1"]), movie_db.catalog)
            .natural_join(scan("DIRECTORS").prefer(p["p2"]), movie_db.catalog)
            .build()
        )
        check_all(movie_db, plan, aggregate=F_MAX)


class TestOnSyntheticData:
    """Workload queries over the synthetic generators (larger, skewed data)."""

    @pytest.mark.parametrize("index", range(3))
    def test_imdb_queries(self, imdb_tiny, index):
        from repro.workloads import imdb_queries

        q = imdb_queries()[index]
        session = q.session(imdb_tiny)
        reference = session.execute(q.sql, strategy="reference")
        for strategy in PHYSICAL:
            result = session.execute(q.sql, strategy=strategy)
            assert result.relation.same_contents(reference.relation), (
                f"{q.name}/{strategy} diverges"
            )

    @pytest.mark.parametrize("index", range(3))
    def test_dblp_queries(self, dblp_tiny, index):
        from repro.workloads import dblp_queries

        q = dblp_queries()[index]
        session = q.session(dblp_tiny)
        reference = session.execute(q.sql, strategy="reference")
        for strategy in PHYSICAL:
            result = session.execute(q.sql, strategy=strategy)
            assert result.relation.same_contents(reference.relation), (
                f"{q.name}/{strategy} diverges"
            )


class TestEngineBehaviour:
    def test_unknown_strategy_rejected(self, movie_db):
        from repro.errors import ExecutionError

        engine = ExecutionEngine(movie_db)
        with pytest.raises(ExecutionError, match="unknown strategy"):
            engine.run(scan("MOVIES").build(), "magic")

    def test_presented_trims_carried_attributes(self, movie_db, p):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS").prefer(p["p2"]), movie_db.catalog)
            .project(["title"])
            .build()
        )
        engine = ExecutionEngine(movie_db)
        result = engine.run(plan, "gbu")
        assert len(result.relation.schema) > 1  # carries keys + pref attrs
        presented = result.presented()
        assert presented.schema.attribute_names == ("MOVIES.title",)
        assert len(presented) == len(result.relation)

    def test_stats_populated(self, movie_db, p):
        engine = ExecutionEngine(movie_db)
        result = engine.run(scan("GENRES").prefer(p["p1"]).build(), "gbu")
        assert result.stats.rows == 6
        assert result.stats.wall_time > 0
        assert result.stats.cost["total_io"] > 0
        assert "gbu" in result.stats.summary()

    def test_result_column_order_matches_plan(self, movie_db, p):
        plan = (
            scan("MOVIES")
            .natural_join(scan("DIRECTORS"), movie_db.catalog)
            .prefer(p["p2"])
            .build()
        )
        engine = ExecutionEngine(movie_db)
        gbu = engine.run(plan, "gbu")
        ref = engine.run(plan, "reference")
        assert gbu.relation.schema.attribute_names == ref.relation.schema.attribute_names
