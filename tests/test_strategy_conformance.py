"""Cross-strategy conformance: every physical strategy equals the oracle.

Three query sources, ≥50 generated queries total:

* the six Table II workload queries over the tiny synthetic IMDB/DBLP sets;
* 50 deterministically generated random plans over the example movie
  database (random join chains, selections, prefer placements, filtering
  suffixes — the same space the Hypothesis fuzzer samples, but with a fixed
  seed corpus so CI failures reproduce bit-for-bit);
* prefgen-manufactured preferences of controlled selectivity over the
  synthetic IMDB set.

On divergence the failing strategy is re-run under a collecting tracer and
the assertion message carries its full per-operator trace.
"""

from __future__ import annotations

import random

import pytest

from repro import Tracer
from repro.core.preference import Preference
from repro.core.scoring import ConstantScore, around_score, rating_score, recency_score
from repro.engine.expressions import TRUE, cmp, eq
from repro.obs import render_trace
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import natural_join_condition
from repro.plan.nodes import Join, LeftJoin, Prefer, Relation, Select, TopK
from repro.workloads.prefgen import (
    equality_preference,
    preference_pool,
    range_preference,
)
from repro.workloads.queries import all_queries

from tests.conformance import canonical_multiset, diff_report
from tests.conftest import build_movie_db

PHYSICAL = ("gbu", "bu", "ftp", "plugin-rma", "plugin-shared")

MOVIE_DB = build_movie_db()
MOVIE_ENGINE = ExecutionEngine(MOVIE_DB)


def _trace_of(run, strategy) -> str:
    """Re-run the divergent strategy under a tracer and render its trace."""
    tracer = Tracer()
    try:
        run(strategy, tracer)
    except Exception as err:  # trace collection must never mask the diff
        return f"(re-run under tracer failed: {err})"
    return render_trace(tracer.root)


def _assert_conformant(run, plan_repr: str) -> None:
    """``run(strategy, tracer=None)`` must match the reference for all strategies."""
    reference = run("reference", None)
    baseline = canonical_multiset(reference)
    for strategy in PHYSICAL:
        result = run(strategy, None)
        candidate = canonical_multiset(result)
        if baseline != candidate:
            trace = _trace_of(run, strategy)
            raise AssertionError(
                f"{strategy} diverged from reference on {plan_repr}\n"
                + diff_report(baseline, candidate, ("reference", strategy))
                + f"\ntrace of divergent run:\n{trace}"
            )


# ---------------------------------------------------------------------------
# Workload queries (Table II) over the tiny synthetic data sets
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload_query", all_queries(), ids=lambda q: q.name)
def test_workload_queries_conform(workload_query, imdb_tiny, dblp_tiny):
    db = imdb_tiny if workload_query.dataset == "imdb" else dblp_tiny
    session = workload_query.session(db)
    compiled = session.compile(workload_query.sql)

    def run(strategy, tracer):
        return session.execute(compiled, strategy=strategy, tracer=tracer)

    _assert_conformant(run, workload_query.name)


# ---------------------------------------------------------------------------
# Deterministic random plans (the fixed seed corpus)
# ---------------------------------------------------------------------------

CHAIN = ("MOVIES", "GENRES", "DIRECTORS", "RATINGS")

CONDITIONS = {
    "MOVIES": [
        cmp("MOVIES.year", ">=", 2005),
        cmp("MOVIES.duration", "<", 125),
        eq("MOVIES.m_id", 3),
        TRUE,
    ],
    "GENRES": [eq("GENRES.genre", "Comedy"), eq("GENRES.genre", "Drama"), TRUE],
    "DIRECTORS": [eq("DIRECTORS.d_id", 1), TRUE],
    "RATINGS": [cmp("RATINGS.votes", ">", 100), cmp("RATINGS.rating", ">=", 7.0), TRUE],
}

SCORINGS = {
    "MOVIES": [recency_score("MOVIES.year", 2011), around_score("MOVIES.duration", 120)],
    "GENRES": [ConstantScore(0.8), ConstantScore(0.3)],
    "DIRECTORS": [ConstantScore(0.9)],
    "RATINGS": [rating_score("RATINGS.rating"), ConstantScore(0.6)],
}


def generated_plan(seed: int):
    """One deterministic random plan in the fuzzer's sample space."""
    rng = random.Random(seed)
    names = CHAIN[: rng.randint(1, len(CHAIN))]
    plan = Relation(names[0])
    for name in names[1:]:
        right = Relation(name)
        condition = natural_join_condition(MOVIE_DB.catalog, plan, right)
        join_cls = Join if rng.random() < 0.7 else LeftJoin
        plan = join_cls(plan, right, condition)
    if rng.random() < 0.5:
        relation = rng.choice(names)
        plan = Select(plan, rng.choice(CONDITIONS[relation]))
    for number in range(rng.randint(0, 3)):
        relation = rng.choice(names)
        preference = Preference(
            f"gen{seed}.{number}[{relation}]",
            relation,
            rng.choice(CONDITIONS[relation]),
            rng.choice(SCORINGS[relation]),
            round(rng.uniform(0.1, 1.0), 3),
        )
        plan = Prefer(plan, preference)
    suffix = rng.choice(["none", "topk", "conf", "score-topk"])
    if suffix in ("conf", "score-topk"):
        plan = Select(plan, cmp("conf", ">=", rng.choice([0.2, 0.5, 0.9])))
    if suffix in ("topk", "score-topk"):
        plan = TopK(plan, rng.randint(1, 6), rng.choice(["score", "conf"]))
    return plan


@pytest.mark.parametrize("seed", range(50))
def test_generated_plans_conform(seed):
    plan = generated_plan(seed)

    def run(strategy, tracer):
        return MOVIE_ENGINE.run(plan, strategy, tracer=tracer)

    _assert_conformant(run, repr(plan))


# ---------------------------------------------------------------------------
# prefgen preferences of controlled selectivity over synthetic IMDB
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("selectivity", [0.05, 0.2, 0.5])
def test_prefgen_selectivity_queries_conform(imdb_tiny, selectivity):
    engine = ExecutionEngine(imdb_tiny)
    genre = equality_preference(imdb_tiny, "GENRES", "genre", selectivity)
    years = range_preference(imdb_tiny, "MOVIES", "year", selectivity)
    movies = Relation("MOVIES")
    genres = Relation("GENRES")
    plan = Join(
        movies, genres, natural_join_condition(imdb_tiny.catalog, movies, genres)
    )
    plan = TopK(Prefer(Prefer(plan, genre), years), 10, "score")

    def run(strategy, tracer):
        return engine.run(plan, strategy, tracer=tracer)

    _assert_conformant(run, f"prefgen selectivity={selectivity}")


@pytest.mark.parametrize("count", [2, 4, 6])
def test_prefgen_pool_queries_conform(imdb_tiny, count):
    engine = ExecutionEngine(imdb_tiny)
    pool = preference_pool(imdb_tiny, count, selectivity=0.1)
    movies = Relation("MOVIES")
    genres = Relation("GENRES")
    plan = Join(
        movies, genres, natural_join_condition(imdb_tiny.catalog, movies, genres)
    )
    for preference in pool:
        if set(preference.relations) <= {"MOVIES", "GENRES"}:
            plan = Prefer(plan, preference)
    plan = TopK(plan, 10, "score")

    def run(strategy, tracer):
        return engine.run(plan, strategy, tracer=tracer)

    _assert_conformant(run, f"prefgen pool |λ|={count}")
