"""Randomized plan fuzzing: every strategy must agree with the oracle.

Hypothesis builds random extended query plans over the example movie
database — random join subsets, selections, prefer operators at random
positions, optional filtering suffixes — and checks that all physical
strategies return exactly the reference evaluator's p-relation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import build_movie_db

from repro.core.preference import Preference
from repro.core.scoring import ConstantScore, around_score, rating_score, recency_score
from repro.engine.expressions import TRUE, cmp, eq
from repro.pexec.engine import ExecutionEngine
from repro.plan.builder import natural_join_condition
from repro.plan.nodes import Join, LeftJoin, Prefer, Relation, Select, TopK

DB = build_movie_db()
ENGINE = ExecutionEngine(DB)
PHYSICAL = ("gbu", "bu", "ftp", "plugin-rma", "plugin-shared")

#: Join chain (each next relation naturally joins the accumulated prefix).
CHAIN = ("MOVIES", "GENRES", "DIRECTORS", "RATINGS")

CONDITIONS = {
    "MOVIES": [
        cmp("MOVIES.year", ">=", 2005),
        cmp("MOVIES.duration", "<", 125),
        eq("MOVIES.m_id", 3),
        TRUE,
    ],
    "GENRES": [eq("GENRES.genre", "Comedy"), eq("GENRES.genre", "Drama"), TRUE],
    "DIRECTORS": [eq("DIRECTORS.d_id", 1), TRUE],
    "RATINGS": [cmp("RATINGS.votes", ">", 100), cmp("RATINGS.rating", ">=", 7.0), TRUE],
}

SCORINGS = {
    "MOVIES": [recency_score("MOVIES.year", 2011), around_score("MOVIES.duration", 120)],
    "GENRES": [ConstantScore(0.8), ConstantScore(0.3)],
    "DIRECTORS": [ConstantScore(0.9)],
    "RATINGS": [rating_score("RATINGS.rating"), ConstantScore(0.6)],
}


@st.composite
def preferences(draw, relation: str):
    condition = draw(st.sampled_from(CONDITIONS[relation]))
    scoring = draw(st.sampled_from(SCORINGS[relation]))
    confidence = draw(
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False).map(
            lambda v: round(v, 3)
        )
    )
    return Preference(f"fz[{relation}]", relation, condition, scoring, confidence)


@st.composite
def plans(draw):
    num_relations = draw(st.integers(min_value=1, max_value=4))
    names = CHAIN[:num_relations]
    plan = Relation(names[0])
    for name in names[1:]:
        right = Relation(name)
        condition = natural_join_condition(DB.catalog, plan, right)
        if draw(st.booleans()):
            plan = Join(plan, right, condition)
        else:
            plan = LeftJoin(plan, right, condition)
    # Random selection somewhere below the prefers.
    if draw(st.booleans()):
        relation = draw(st.sampled_from(names))
        plan = Select(plan, draw(st.sampled_from(CONDITIONS[relation])))
    # 0..3 prefer operators over random relations of the query.
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        relation = draw(st.sampled_from(names))
        plan = Prefer(plan, draw(preferences(relation)))
    # Optional filtering suffix.
    suffix = draw(st.sampled_from(["none", "topk", "conf", "score-topk"]))
    if suffix in ("conf", "score-topk"):
        plan = Select(plan, cmp("conf", ">=", draw(st.sampled_from([0.2, 0.5, 0.9]))))
    if suffix in ("topk", "score-topk"):
        plan = TopK(plan, draw(st.integers(min_value=1, max_value=6)), draw(st.sampled_from(["score", "conf"])))
    return plan


def _divergence_trace(plan, strategy) -> str:
    """Re-run the divergent strategy under a tracer for the failure report."""
    from repro import Tracer
    from repro.obs import render_trace

    tracer = Tracer()
    try:
        ENGINE.run(plan, strategy, tracer=tracer)
    except Exception as err:  # tracing must never mask the divergence itself
        return f"(re-run under tracer failed: {err})"
    return render_trace(tracer.root)


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plans())
def test_all_strategies_match_reference(plan):
    """Fuzzing companion to the fixed seed corpus in test_strategy_conformance."""
    reference = ENGINE.run(plan, "reference")
    for strategy in PHYSICAL:
        result = ENGINE.run(plan, strategy)
        assert result.relation.same_contents(reference.relation), (
            f"{strategy} diverged on plan {plan!r}\n"
            f"trace of divergent run:\n{_divergence_trace(plan, strategy)}"
        )


@settings(max_examples=40, deadline=None)
@given(plans())
def test_optimizer_preserves_random_plans(plan):
    """The full optimizer pipeline is semantics-preserving on random plans."""
    from repro.optimizer import optimize
    from repro.pexec.conform import conform
    from repro.pexec.reference import evaluate_reference
    from repro.plan.analysis import qualify_preferences

    qualified = qualify_preferences(plan, DB.catalog)
    optimized = optimize(qualified, DB.catalog)
    before = evaluate_reference(qualified, DB.catalog)
    after = conform(
        evaluate_reference(optimized, DB.catalog), qualified.schema(DB.catalog)
    )
    assert before.same_contents(after)
