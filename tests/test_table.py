"""Unit tests for heap tables."""

import pytest

from repro.engine.schema import make_schema
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import CatalogError, SchemaError, TypeError_


@pytest.fixture
def table() -> Table:
    schema = make_schema(
        "T",
        [("id", DataType.INT), ("name", DataType.TEXT), ("v", DataType.FLOAT)],
        primary_key=["id"],
    )
    return Table(schema)


class TestInsert:
    def test_positional(self, table):
        row = table.insert((1, "a", 1.5))
        assert row == (1, "a", 1.5)
        assert len(table) == 1

    def test_mapping(self, table):
        row = table.insert({"id": 2, "name": "b", "v": 0.5})
        assert row == (2, "b", 0.5)

    def test_mapping_missing_columns_become_null(self, table):
        row = table.insert({"id": 3, "name": "c"})
        assert row == (3, "c", None)

    def test_mapping_unknown_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"id": 4, "oops": 1})

    def test_arity_checked(self, table):
        with pytest.raises(SchemaError):
            table.insert((1, "a"))

    def test_types_validated(self, table):
        with pytest.raises(TypeError_):
            table.insert(("x", "a", 1.0))

    def test_int_widens_to_float_column(self, table):
        row = table.insert((1, "a", 2))
        assert row[2] == 2.0 and isinstance(row[2], float)

    def test_duplicate_pk_rejected(self, table):
        table.insert((1, "a", 0.0))
        with pytest.raises(CatalogError):
            table.insert((1, "b", 0.0))

    def test_null_pk_rejected(self, table):
        with pytest.raises(TypeError_):
            table.insert((None, "a", 0.0))

    def test_insert_many_counts(self, table):
        n = table.insert_many([(i, f"r{i}", 0.0) for i in range(5)])
        assert n == 5
        assert len(table) == 5


class TestAccess:
    def test_scan_order(self, table):
        table.insert_many([(2, "b", 0.0), (1, "a", 0.0)])
        assert [r[0] for r in table.scan()] == [2, 1]

    def test_point_lookup(self, table):
        table.insert_many([(1, "a", 0.0), (2, "b", 0.0)])
        assert table.get((2,)) == (2, "b", 0.0)
        assert table.get((9,)) is None

    def test_primary_key_of(self, table):
        row = table.insert((7, "x", 0.0))
        assert table.primary_key_of(row) == (7,)

    def test_lookup_without_pk_raises(self):
        schema = make_schema("NOPK", [("a", DataType.INT)])
        t = Table(schema)
        with pytest.raises(CatalogError):
            t.get((1,))

    def test_anonymous_schema_rejected(self):
        from repro.engine.schema import Column, TableSchema

        schema = TableSchema(None, [Column("a", DataType.INT)])
        with pytest.raises(SchemaError):
            Table(schema)
