"""The observability layer: span trees, counters, and engine integration.

Covers the tentpole contracts: spans nest correctly, counters match the
QueryResult cardinalities, the default no-op tracer allocates nothing, and
every strategy (plus the optimizer) reports a per-operator trace.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro import Session, Tracer, cmp, current_tracer, eq, use_tracer
from repro.core.preference import Preference
from repro.obs import NULL_SPAN, NULL_TRACER, traced_rows
from repro.pexec.engine import STRATEGIES, ExecutionEngine
from repro.plan.builder import scan

PHYSICAL = ("gbu", "bu", "ftp", "plugin-rma", "plugin-shared")


# ---------------------------------------------------------------------------
# Span / Tracer mechanics
# ---------------------------------------------------------------------------


def test_spans_nest_under_context_managers():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
        with tracer.span("middle"):
            pass
    tracer.finish()

    assert [child.name for child in tracer.root.children] == ["outer"]
    assert [child.name for child in outer.children] == ["middle", "middle"]
    assert outer.children[0].children[0].name == "inner"
    assert outer.children[1].children == []
    assert outer.find("inner") is outer.children[0].children[0]
    assert len(tracer.root.find_all("middle")) == 2


def test_span_times_are_inclusive_and_finish_is_idempotent():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            sum(range(10_000))
    first = outer.wall_time
    outer.finish()  # second finish must not restamp
    assert outer.wall_time == first
    assert outer.wall_time >= inner.wall_time >= 0.0


def test_tracer_count_credits_global_and_innermost_span():
    tracer = Tracer()
    with tracer.span("a") as a:
        tracer.count("rows_out", 3)
        with tracer.span("b") as b:
            tracer.count("rows_out", 2)
            tracer.count("scores")
    assert tracer.counters == {"rows_out": 5, "scores": 1}
    assert a.counters == {"rows_out": 3}
    assert b.counters == {"rows_out": 2, "scores": 1}
    assert a.total("rows_out") == 5  # subtree aggregation


def test_detached_push_pop_tolerates_out_of_order_exits():
    tracer = Tracer()
    a = tracer.span("a")
    tracer.push(a)
    b = tracer.span("b")
    tracer.push(b)
    # Generator teardown can pop the outer span first.
    tracer.pop(a)
    assert tracer.current() is tracer.root
    tracer.pop(b)  # no longer on the stack: must be a no-op
    assert tracer.current() is tracer.root
    assert a.children == [b]


def test_traced_rows_counts_and_finishes_on_exhaustion():
    tracer = Tracer()
    span = tracer.span("op")
    wrapped = traced_rows(iter([1, 2, 3]), span)
    assert span.counters.get("rows_out") is None  # nothing until iteration
    assert list(wrapped) == [1, 2, 3]
    assert span.counters["rows_out"] == 3
    assert span.wall_time > 0.0 or not span._open


def test_traced_rows_finishes_on_early_close():
    tracer = Tracer()
    span = tracer.span("op")
    wrapped = traced_rows(iter(range(100)), span)
    next(wrapped)
    next(wrapped)
    wrapped.close()
    assert span.counters["rows_out"] == 2


# ---------------------------------------------------------------------------
# No-op default
# ---------------------------------------------------------------------------


def test_default_tracer_is_the_noop_singleton():
    assert current_tracer() is NULL_TRACER
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.span("anything") is NULL_SPAN
    assert NULL_TRACER.current() is NULL_SPAN
    assert NULL_TRACER.finish() is NULL_SPAN


def test_noop_tracer_allocates_nothing():
    """Every no-op call returns the module singleton: zero allocations."""
    tracer = NULL_TRACER
    # Warm up any lazy caches before measuring.
    with tracer.span("warm") as span:
        span.add("rows_out", 1)
        tracer.count("rows_out", 1)
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            with tracer.span("op", label="x") as span:
                span.add("rows_out", 1)
                span.set("k", "v")
                tracer.count("rows_out", 1)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    tracer_file = tracemalloc.Filter(True, "*repro/obs/tracer.py")
    stats = after.filter_traces([tracer_file]).compare_to(
        before.filter_traces([tracer_file]), "lineno"
    )
    grown = [s for s in stats if s.size_diff > 0]
    assert not grown, f"no-op tracer allocated: {grown}"
    assert NULL_SPAN.counters == {} and NULL_SPAN.attrs == {}


def test_use_tracer_restores_previous_tracer():
    tracer = Tracer()
    with use_tracer(tracer):
        assert current_tracer() is tracer
        inner = Tracer()
        with use_tracer(inner):
            assert current_tracer() is inner
        assert current_tracer() is tracer
    assert current_tracer() is NULL_TRACER


# ---------------------------------------------------------------------------
# Engine integration: per-strategy traces and counter accuracy
# ---------------------------------------------------------------------------


def _example_plan(db, example_preferences):
    return (
        scan("MOVIES")
        .natural_join(scan("GENRES"), db.catalog)
        .select(cmp("year", ">=", 2005))
        .prefer(example_preferences["p1"])
        .top(5, by="score")
        .build()
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_strategy_produces_a_trace(movie_db, example_preferences, strategy):
    engine = ExecutionEngine(movie_db)
    tracer = Tracer()
    result = engine.run(_example_plan(movie_db, example_preferences), strategy, tracer=tracer)

    root = result.stats.trace
    assert root is not None and root.name == "query"
    assert root.attrs["strategy"] == strategy
    phases = [child.name for child in root.children]
    assert "prepare" in phases and "conform" in phases
    assert f"execute:{strategy}" in phases

    execute = root.find(f"execute:{strategy}")
    # Counter accuracy: the execute phase's rows_out is the result cardinality.
    assert execute.counters["rows_out"] == result.stats.rows == len(result.relation)
    if strategy != "reference":
        # Physical strategies report per-operator spans below the phase.
        assert execute.children, f"{strategy} produced no operator spans"


def test_untraced_run_has_no_trace(movie_db, example_preferences):
    engine = ExecutionEngine(movie_db)
    result = engine.run(_example_plan(movie_db, example_preferences), "gbu")
    assert result.stats.trace is None


def test_trace_counters_match_result_cardinalities(movie_db, example_preferences):
    engine = ExecutionEngine(movie_db)
    tracer = Tracer()
    result = engine.run(_example_plan(movie_db, example_preferences), "gbu", tracer=tracer)
    root = result.stats.trace
    # The root's own rows_out is the final cardinality; tracer-global totals
    # include it too (count() feeds both).
    assert root.counters["rows_out"] == len(result.relation)
    prefer_spans = [s for s in root.walk() if s.name == "gbu.prefer"]
    assert prefer_spans, "prefer operator left no span"
    # Score relation sizes are reported on the prefer spans.
    assert all("scores" in s.counters for s in prefer_spans)


def test_optimizer_reports_rule_spans(movie_db, example_preferences):
    engine = ExecutionEngine(movie_db)
    tracer = Tracer()
    engine.run(_example_plan(movie_db, example_preferences), "gbu", tracer=tracer)
    optimize = tracer.root.find("optimize")
    assert optimize is not None
    rules = optimize.find_all("optimize.rule")
    assert rules, "optimizer reported no rule spans"
    assert all("fired" in rule.attrs for rule in rules)
    fired = [rule for rule in rules if rule.attrs["fired"]]
    assert fired, "no optimizer rule fired on a prefer+select+join plan"
    for rule in fired:
        assert "cost_before" in rule.attrs and "cost_after" in rule.attrs
        delta = rule.attrs["cost_after"] - rule.attrs["cost_before"]
        assert abs(delta - rule.attrs["cost_delta"]) < 1e-6
    assert tracer.counters.get("optimizer.rule_fired", 0) == len(fired)


def test_aggregate_apply_counts_reported(movie_db, example_preferences):
    """Overlapping preferences must report aggregate combine applications."""
    from repro.engine.expressions import TRUE

    everything = Preference("all", "MOVIES", TRUE, 0.5, 1.0)
    plan = (
        scan("MOVIES")
        .natural_join(scan("GENRES"), movie_db.catalog)
        .prefer(example_preferences["p1"])
        .prefer(everything)
        .build()
    )
    for strategy in PHYSICAL:
        tracer = Tracer()
        ExecutionEngine(movie_db).run(plan, strategy, tracer=tracer)
        assert tracer.root.total("aggregate.combine") > 0, strategy


def test_session_explain_analyze_renders_trace(movie_db, example_preferences):
    session = Session(movie_db)
    session.register_all(example_preferences.values())
    text = session.explain_analyze(
        "SELECT title FROM MOVIES NATURAL JOIN GENRES PREFERRING p1 TOP 3 BY score",
        strategy="ftp",
    )
    assert "executed plan:" in text
    assert "execution trace:" in text
    assert "execute:ftp" in text
    assert "ms]" in text


def test_ambient_tracer_reaches_nested_engine(movie_db, example_preferences):
    """Strategies pick up the ContextVar tracer without explicit plumbing."""
    engine = ExecutionEngine(movie_db)
    tracer = Tracer()
    with use_tracer(tracer):
        result = engine.run(_example_plan(movie_db, example_preferences), "ftp")
    assert result.stats.trace is not None
    assert tracer.root.find("ftp.prefer") is not None
