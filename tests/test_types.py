"""Unit tests for engine data types."""

import pytest

from repro.engine.types import DataType, infer_type
from repro.errors import TypeError_


class TestValidate:
    def test_int_accepts_int(self):
        assert DataType.INT.validate(7) == 7

    def test_int_rejects_bool(self):
        with pytest.raises(TypeError_):
            DataType.INT.validate(True)

    def test_int_rejects_float(self):
        with pytest.raises(TypeError_):
            DataType.INT.validate(1.5)

    def test_float_widens_int(self):
        value = DataType.FLOAT.validate(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeError_):
            DataType.FLOAT.validate(False)

    def test_text_accepts_str(self):
        assert DataType.TEXT.validate("abc") == "abc"

    def test_text_rejects_number(self):
        with pytest.raises(TypeError_):
            DataType.TEXT.validate(5)

    def test_bool_accepts_bool(self):
        assert DataType.BOOL.validate(True) is True

    def test_bool_rejects_int(self):
        with pytest.raises(TypeError_):
            DataType.BOOL.validate(1)

    @pytest.mark.parametrize("dtype", list(DataType))
    def test_null_is_accepted_everywhere(self, dtype):
        assert dtype.validate(None) is None


class TestProperties:
    def test_numeric_flags(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.TEXT.is_numeric
        assert not DataType.BOOL.is_numeric

    def test_python_types(self):
        assert DataType.INT.python_type is int
        assert DataType.TEXT.python_type is str


class TestInfer:
    def test_bool_before_int(self):
        assert infer_type(True) is DataType.BOOL

    def test_int(self):
        assert infer_type(3) is DataType.INT

    def test_float(self):
        assert infer_type(3.5) is DataType.FLOAT

    def test_text(self):
        assert infer_type("x") is DataType.TEXT

    def test_unknown_raises(self):
        with pytest.raises(TypeError_):
            infer_type(object())
