"""Tests for the USING <aggregate> clause of the SQL dialect."""

import pytest

from repro.errors import ParseError, PreferenceError
from repro.query.session import Session
from repro.query.sql.parser import parse


@pytest.fixture
def session(movie_db, example_preferences):
    s = Session(movie_db)
    s.register_all(example_preferences.values())
    return s


class TestParsing:
    def test_using_parsed(self):
        block = parse("SELECT * FROM M PREFERRING p1 USING F_max TOP 3 BY score")
        assert block.aggregate == "F_max"

    def test_default_is_none(self):
        block = parse("SELECT * FROM M PREFERRING p1")
        assert block.aggregate is None

    def test_using_before_order_by(self):
        block = parse("SELECT * FROM M PREFERRING p1 USING f_min ORDER BY conf")
        assert block.aggregate == "f_min"
        assert block.order_by == "conf"


class TestExecution:
    SQL = (
        "SELECT title FROM MOVIES NATURAL JOIN GENRES NATURAL JOIN DIRECTORS "
        "PREFERRING p1, p2, (genre = 'Drama') SCORE 0.4 CONFIDENCE 0.5 ON GENRES "
        "{using} ORDER BY score"
    )

    def test_f_max_changes_pairs(self, session):
        default = session.rows(self.SQL.format(using=""))
        f_max = session.rows(self.SQL.format(using="USING F_max"))
        # F_S sums confidences across the join (p-relations pass pairs on),
        # so some rows exceed 1 under the default; F_max never does.
        assert any(row[2] > 1.0 for row in default)
        assert all(row[2] <= 1.0 for row in f_max)

    def test_matches_engine_level_aggregate(self, session, movie_db, example_preferences):
        from repro.core.aggregates import F_MAX
        from repro.pexec.engine import ExecutionEngine

        compiled = session.compile(self.SQL.format(using="USING F_max"))
        via_sql = session.execute(compiled)
        engine = ExecutionEngine(movie_db, F_MAX)
        via_engine = engine.run(compiled.plan, "gbu")
        assert via_sql.relation.same_contents(via_engine.relation)

    def test_unknown_aggregate_rejected(self, session):
        with pytest.raises(PreferenceError):
            session.execute("SELECT title FROM MOVIES PREFERRING p1 USING median")

    def test_union_blocks_must_agree(self, session):
        sql = (
            "SELECT title FROM MOVIES PREFERRING p5 USING F_max "
            "UNION SELECT title FROM MOVIES PREFERRING p5"
        )
        with pytest.raises(ParseError, match="USING"):
            session.execute(sql)

    def test_union_blocks_agreeing_ok(self, session):
        sql = (
            "SELECT title FROM MOVIES PREFERRING p5 USING F_max "
            "UNION SELECT title FROM MOVIES PREFERRING p5 USING F_max"
        )
        result = session.execute(sql)
        assert result.stats.rows == 5
