"""The durability VFS: fault injection semantics and the power-cut model.

Each fault kind gets a minimal scenario asserting both the *failure* (the
right exception at the right step) and the *aftermath* (what a power cut
then leaves on disk — the contract recovery is tested against).
"""

from __future__ import annotations

import errno
import os

import pytest

from repro.errors import PowerCut
from repro.resilience.vfs import (
    FAULT_KINDS,
    KINDS_BY_OP,
    REAL_VFS,
    FaultyVFS,
    RealVFS,
    VfsFault,
    current_vfs,
    use_vfs,
)


def write_file(vfs, path: str, data: bytes) -> None:
    with vfs.open(path, "wb") as handle:
        handle.write(data)


def read_file(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


class TestAmbient:
    def test_default_is_the_real_vfs(self):
        assert current_vfs() is REAL_VFS
        assert isinstance(REAL_VFS, RealVFS)
        assert not REAL_VFS.faulty

    def test_use_vfs_installs_and_restores(self):
        vfs = FaultyVFS()
        with use_vfs(vfs):
            assert current_vfs() is vfs
        assert current_vfs() is REAL_VFS

    def test_use_vfs_none_means_real(self):
        with use_vfs(None):
            assert current_vfs() is REAL_VFS

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            VfsFault(0, "meteor-strike")

    def test_kinds_by_op_only_names_known_kinds(self):
        for kinds in KINDS_BY_OP.values():
            assert set(kinds) <= set(FAULT_KINDS)


class TestProbeMode:
    def test_records_every_faultable_op_without_failing(self, tmp_path):
        vfs = FaultyVFS()
        path = str(tmp_path / "a.txt")
        with vfs.open(path, "w", encoding="utf-8") as handle:
            handle.write("hello")
            vfs.fsync(handle)
        vfs.replace(path, str(tmp_path / "b.txt"))
        vfs.fsync_dir(str(tmp_path))
        assert [op for op, _ in vfs.ops] == ["write", "fsync", "replace", "fsync_dir"]
        assert not vfs.fired
        assert read_file(str(tmp_path / "b.txt")) == b"hello"

    def test_read_opens_are_not_faultable_steps(self, tmp_path):
        path = str(tmp_path / "a.txt")
        write_file(REAL_VFS, path, b"x")
        vfs = FaultyVFS()
        with vfs.open(path, "rb") as handle:
            assert handle.read() == b"x"
        assert vfs.ops == []


class TestWriteFaults:
    def test_eio_write_lands_nothing(self, tmp_path):
        vfs = FaultyVFS(VfsFault(0, "eio-write"))
        path = str(tmp_path / "a.txt")
        with pytest.raises(OSError) as excinfo:
            write_file(vfs, path, b"payload")
        assert excinfo.value.errno == errno.EIO
        assert vfs.fired
        assert read_file(path) == b""

    def test_enospc_is_disk_full(self, tmp_path):
        vfs = FaultyVFS(VfsFault(0, "enospc"))
        with pytest.raises(OSError) as excinfo:
            write_file(vfs, str(tmp_path / "a.txt"), b"payload")
        assert excinfo.value.errno == errno.ENOSPC

    def test_short_write_lands_half_then_fails(self, tmp_path):
        vfs = FaultyVFS(VfsFault(0, "short-write"))
        path = str(tmp_path / "a.txt")
        with pytest.raises(OSError):
            write_file(vfs, path, b"12345678")
        assert read_file(path) == b"1234"

    def test_power_cut_at_write(self, tmp_path):
        vfs = FaultyVFS(VfsFault(0, "power-cut"))
        with pytest.raises(PowerCut):
            write_file(vfs, str(tmp_path / "a.txt"), b"payload")


class TestPowerCutModel:
    def test_unsynced_write_vanishes(self, tmp_path):
        path = str(tmp_path / "a.txt")
        vfs = FaultyVFS()
        write_file(vfs, path, b"never synced")
        assert path in [os.path.abspath(p) for p in vfs.unsynced_paths()]
        vfs.power_cut()
        assert not os.path.exists(path)

    def test_fsync_makes_content_durable(self, tmp_path):
        path = str(tmp_path / "a.txt")
        vfs = FaultyVFS()
        with vfs.open(path, "wb") as handle:
            handle.write(b"synced")
            vfs.fsync(handle)
        assert vfs.unsynced_paths() == []
        vfs.power_cut()
        assert read_file(path) == b"synced"

    def test_unsynced_overwrite_reverts_to_old_content(self, tmp_path):
        path = str(tmp_path / "a.txt")
        write_file(REAL_VFS, path, b"old durable")
        vfs = FaultyVFS()
        write_file(vfs, path, b"new unsynced")
        vfs.power_cut()
        assert read_file(path) == b"old durable"

    def test_eio_fsync_drops_the_dirty_pages(self, tmp_path):
        # fsyncgate: after a failed fsync the pages it was asked to persist
        # are gone — the caller must fail-stop, not retry.
        path = str(tmp_path / "a.txt")
        write_file(REAL_VFS, path, b"durable")
        vfs = FaultyVFS(VfsFault(1, "eio-fsync"))  # step 0 = write, 1 = fsync
        with vfs.open(path, "wb") as handle:
            handle.write(b"doomed")
            with pytest.raises(OSError) as excinfo:
                vfs.fsync(handle)
        assert excinfo.value.errno == errno.EIO
        assert read_file(path) == b"durable"

    def test_rename_pending_until_directory_fsync(self, tmp_path):
        src = str(tmp_path / "x.tmp")
        dst = str(tmp_path / "x.txt")
        write_file(REAL_VFS, dst, b"old")
        vfs = FaultyVFS()
        with vfs.open(src, "wb") as handle:
            handle.write(b"new")
            vfs.fsync(handle)
        vfs.replace(src, dst)
        assert read_file(dst) == b"new"  # live namespace shows the rename...
        vfs.power_cut()
        assert read_file(dst) == b"old"  # ...but it was never durable
        assert read_file(src) == b"new"  # and the source resurrects

    def test_directory_fsync_commits_the_rename(self, tmp_path):
        src = str(tmp_path / "x.tmp")
        dst = str(tmp_path / "x.txt")
        vfs = FaultyVFS()
        with vfs.open(src, "wb") as handle:
            handle.write(b"new")
            vfs.fsync(handle)
        vfs.replace(src, dst)
        vfs.fsync_dir(str(tmp_path))
        vfs.power_cut()
        assert read_file(dst) == b"new"
        assert not os.path.exists(src)

    def test_torn_rename_lands_live_but_not_durable(self, tmp_path):
        src = str(tmp_path / "x.tmp")
        dst = str(tmp_path / "x.txt")
        write_file(REAL_VFS, dst, b"old")
        vfs = FaultyVFS(VfsFault(2, "torn-rename"))  # write, fsync, replace
        with vfs.open(src, "wb") as handle:
            handle.write(b"new")
            vfs.fsync(handle)
        with pytest.raises(PowerCut):
            vfs.replace(src, dst)
        assert read_file(dst) == b"new"
        vfs.power_cut()
        assert read_file(dst) == b"old"

    def test_unsynced_unlink_resurrects_the_file(self, tmp_path):
        path = str(tmp_path / "a.txt")
        write_file(REAL_VFS, path, b"keep me")
        vfs = FaultyVFS()
        vfs.remove(path)
        assert not os.path.exists(path)
        vfs.power_cut()
        assert read_file(path) == b"keep me"
