"""Tests for the qualitative winnow operator and preference relations."""

import pytest

from repro.core.prelation import PRelation
from repro.engine.schema import make_schema
from repro.engine.types import DataType
from repro.errors import PreferenceError
from repro.filtering import PreferenceRelation, winnow

SCHEMA = make_schema(
    "CARS",
    [("id", DataType.INT), ("make", DataType.TEXT), ("color", DataType.TEXT)],
    primary_key=["id"],
)


def cars(rows):
    return PRelation(SCHEMA, rows)


class TestPreferenceRelation:
    def test_direct_preference(self):
        order = PreferenceRelation("make", [("BMW", "Ford")])
        assert order.prefers("BMW", "Ford")
        assert not order.prefers("Ford", "BMW")
        assert not order.prefers("BMW", "BMW")

    def test_transitive_closure(self):
        order = PreferenceRelation("make", [("BMW", "Audi"), ("Audi", "Ford")])
        assert order.prefers("BMW", "Ford")

    def test_closure_through_later_additions(self):
        order = PreferenceRelation("make")
        order.add("Audi", "Ford")
        order.add("BMW", "Audi")
        assert order.prefers("BMW", "Ford")

    def test_cycle_rejected(self):
        order = PreferenceRelation("make", [("BMW", "Audi")])
        with pytest.raises(PreferenceError, match="cycle"):
            order.add("Audi", "BMW")

    def test_self_preference_rejected(self):
        with pytest.raises(PreferenceError):
            PreferenceRelation("make", [("BMW", "BMW")])

    def test_unmentioned_values_incomparable(self):
        order = PreferenceRelation("make", [("BMW", "Ford")])
        assert not order.prefers("BMW", "Tesla")
        assert not order.prefers("Tesla", "Ford")


class TestWinnow:
    MAKE = PreferenceRelation("make", [("BMW", "Ford"), ("Audi", "Ford")])
    COLOR = PreferenceRelation("color", [("red", "blue")])

    def test_single_order(self):
        data = cars([(1, "BMW", "red"), (2, "Ford", "red"), (3, "Tesla", "blue")])
        out = winnow(data, self.MAKE)
        # Ford is dominated by the BMW; Tesla is incomparable and survives.
        assert {r[0] for r in out.rows} == {1, 3}

    def test_pareto_composition(self):
        data = cars(
            [
                (1, "BMW", "red"),
                (2, "BMW", "blue"),   # dominated: same make, worse color
                (3, "Ford", "red"),   # dominated on make, equal color
                (4, "Ford", "blue"),  # dominated on both
            ]
        )
        out = winnow(data, [self.MAKE, self.COLOR])
        assert {r[0] for r in out.rows} == {1}

    def test_pareto_incomparable_mix_survives(self):
        data = cars([(1, "BMW", "blue"), (2, "Ford", "red")])
        # 1 better on make but worse on color; 2 vice versa: both stay.
        out = winnow(data, [self.MAKE, self.COLOR])
        assert len(out) == 2

    def test_prioritized_composition(self):
        data = cars([(1, "BMW", "blue"), (2, "Ford", "red")])
        out = winnow(data, [self.MAKE, self.COLOR], prioritized=True)
        assert {r[0] for r in out.rows} == {1}  # make outranks color

    def test_prioritized_ties_fall_through(self):
        data = cars([(1, "BMW", "blue"), (2, "BMW", "red")])
        out = winnow(data, [self.MAKE, self.COLOR], prioritized=True)
        assert {r[0] for r in out.rows} == {2}

    def test_null_values_incomparable(self):
        data = cars([(1, "BMW", "red"), (2, None, "red")])
        out = winnow(data, self.MAKE)
        assert len(out) == 2

    def test_pairs_preserved(self):
        from repro.core.scorepair import ScorePair

        data = PRelation(
            SCHEMA,
            [(1, "BMW", "red"), (2, "Ford", "red")],
            [ScorePair(0.9, 0.9), ScorePair(0.1, 0.1)],
        )
        out = winnow(data, self.MAKE)
        assert out.pairs == [ScorePair(0.9, 0.9)]

    def test_requires_orders(self):
        with pytest.raises(PreferenceError):
            winnow(cars([]), [])
