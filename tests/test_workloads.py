"""Tests for the synthetic data generators and the experiment workload."""

import pytest

from repro.workloads import (
    DblpConfig,
    ImdbConfig,
    all_queries,
    dblp_queries,
    generate_dblp,
    generate_imdb,
    imdb_queries,
)
from repro.workloads.dblp import TABLE1_SIZES as DBLP_SIZES
from repro.workloads.imdb import TABLE1_SIZES as IMDB_SIZES


class TestImdbGenerator:
    def test_table1_ratios(self, imdb_tiny):
        """Row counts scale with the Table I ratios."""
        scale = 0.0005
        for table in ("MOVIES", "DIRECTORS", "GENRES", "CAST", "RATINGS"):
            expected = int(IMDB_SIZES[table] * scale)
            actual = len(imdb_tiny.table(table))
            assert actual == pytest.approx(expected, rel=0.02), table

    def test_deterministic(self):
        a = generate_imdb(scale=0.0002, seed=5, build_indexes=False, analyze=False)
        b = generate_imdb(scale=0.0002, seed=5, build_indexes=False, analyze=False)
        assert a.table("MOVIES").rows == b.table("MOVIES").rows
        assert a.table("GENRES").rows == b.table("GENRES").rows

    def test_seed_changes_data(self):
        a = generate_imdb(scale=0.0002, seed=5, build_indexes=False, analyze=False)
        b = generate_imdb(scale=0.0002, seed=6, build_indexes=False, analyze=False)
        assert a.table("MOVIES").rows != b.table("MOVIES").rows

    def test_referential_integrity(self, imdb_tiny):
        movies = {r[0] for r in imdb_tiny.table("MOVIES").rows}
        directors = {r[0] for r in imdb_tiny.table("DIRECTORS").rows}
        actors = {r[0] for r in imdb_tiny.table("ACTORS").rows}
        assert all(r[4] in directors for r in imdb_tiny.table("MOVIES").rows)
        assert all(r[0] in movies for r in imdb_tiny.table("GENRES").rows)
        assert all(
            r[0] in movies and r[1] in actors for r in imdb_tiny.table("CAST").rows
        )
        assert all(r[0] in movies for r in imdb_tiny.table("RATINGS").rows)

    def test_year_range(self, imdb_tiny):
        years = [r[2] for r in imdb_tiny.table("MOVIES").rows]
        assert min(years) >= 1920 and max(years) <= 2011

    def test_genre_skew(self, imdb_tiny):
        from collections import Counter

        counts = Counter(r[1] for r in imdb_tiny.table("GENRES").rows)
        ranked = [c for _, c in counts.most_common()]
        assert ranked[0] > 2 * ranked[-1]  # zipf-ish skew

    def test_indexes_and_stats_present(self, imdb_tiny):
        assert imdb_tiny.catalog.find_index("GENRES", "genre") is not None
        assert imdb_tiny.catalog.stats("MOVIES") is not None


class TestDblpGenerator:
    def test_table1_ratios(self, dblp_tiny):
        scale = 0.0005
        for table in ("PUBLICATIONS", "AUTHORS", "PUB_AUTHORS", "CONFERENCES", "JOURNALS"):
            expected = int(DBLP_SIZES[table] * scale)
            assert len(dblp_tiny.table(table)) == pytest.approx(expected, rel=0.02), table

    def test_conferences_and_journals_partition(self, dblp_tiny):
        pubs = dblp_tiny.table("PUBLICATIONS")
        conf_ids = {r[0] for r in dblp_tiny.table("CONFERENCES").rows}
        jour_ids = {r[0] for r in dblp_tiny.table("JOURNALS").rows}
        assert not conf_ids & jour_ids
        type_by_id = {r[0]: r[2] for r in pubs.rows}
        assert all(type_by_id[p] == "conference" for p in conf_ids)
        assert all(type_by_id[p] == "journal" for p in jour_ids)

    def test_citations_have_no_self_loops(self, dblp_tiny):
        assert all(r[0] != r[1] for r in dblp_tiny.table("CITATIONS").rows)

    def test_deterministic(self):
        a = generate_dblp(scale=0.0002, seed=3, build_indexes=False, analyze=False)
        b = generate_dblp(scale=0.0002, seed=3, build_indexes=False, analyze=False)
        assert a.table("PUBLICATIONS").rows == b.table("PUBLICATIONS").rows


class TestWorkloadQueries:
    def test_six_queries(self):
        queries = all_queries()
        assert len(queries) == 6
        assert [q.dataset for q in queries] == ["imdb"] * 3 + ["dblp"] * 3

    def test_names_unique(self):
        names = [q.name for q in all_queries()]
        assert len(set(names)) == 6

    @pytest.mark.parametrize("query", imdb_queries(), ids=lambda q: q.name)
    def test_imdb_queries_compile(self, imdb_tiny, query):
        session = query.session(imdb_tiny)
        compiled = session.compile(query.sql)
        assert compiled.plan.contains_prefer()

    @pytest.mark.parametrize("query", dblp_queries(), ids=lambda q: q.name)
    def test_dblp_queries_run(self, dblp_tiny, query):
        session = query.session(dblp_tiny)
        result = session.execute(query.sql)
        assert result.stats.rows >= 0

    def test_queries_produce_nonempty_results(self, imdb_tiny, dblp_tiny):
        dbs = {"imdb": imdb_tiny, "dblp": dblp_tiny}
        nonempty = 0
        for q in all_queries():
            session = q.session(dbs[q.dataset])
            if session.execute(q.sql).stats.rows > 0:
                nonempty += 1
        assert nonempty >= 4  # the workload is not vacuous at tiny scale
